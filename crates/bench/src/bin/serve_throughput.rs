//! Serving throughput: queries/second of the concurrent query service at
//! 1, 2, 4, and 8 worker threads over one shared on-disk database with the
//! structural pool capped at 256 frames (the `nokd` default).
//!
//! ```text
//! cargo run -p nok-bench --release --bin serve_throughput -- \
//!     [--dataset dblp] [--scale 0.05] [--duration-ms 5000] [--warmup-ms 500] \
//!     [--threads 1,2,4,8] [--pipeline 8] [--write-rate 50] \
//!     [--out BENCH_serve.json]
//! ```
//!
//! Each thread count is measured three ways, and every run records its
//! `protocol` and `pipeline_depth` in the JSON:
//!
//! * **inproc** — clients call `QueryService::query` directly (no wire).
//!   This isolates the service scaling itself and is the baseline the
//!   mixed read/write section compares against.
//! * **json** — clients speak the newline-JSON protocol over loopback
//!   TCP, one request per round-trip (the classic `nokq` shape).
//! * **binary** — clients speak the pipelined binary protocol over
//!   loopback TCP with `--pipeline` requests in flight per connection.
//!
//! Every run gets a warmup phase first (one full workload pass to prime
//! the plan cache and buffer pool, then `--warmup-ms` of untimed driving),
//! and latencies are measured client-side per request, so the reported
//! p50/p99 include the wire for the wire protocols.
//!
//! **Scaling gate**: with the per-worker page cache and batched admission,
//! read-only qps on the binary pipelined protocol should scale ≥3× from 1
//! to 8 threads, with p99 at 8 threads no worse than at 1 thread. The gate
//! is only *enforced* when the host actually has ≥8 cores
//! (`available_parallelism`) — on smaller hosts a single thread is already
//! CPU-saturated and no server design can scale; the JSON records the
//! ratio and the core count either way, so the gate is auditable wherever
//! the bench ran. (Same guarded-skip pattern ci.sh uses for TSan/Miri.)
//!
//! After the read-only sweep, a **mixed** run repeats the highest thread
//! count (inproc) with one writer thread committing update transactions at
//! a fixed rate (`--write-rate`, commits/second) while the readers serve
//! from pinned MVCC snapshots; with lock-free pinning the qps ratio to the
//! read-only inproc run should stay near 1.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nok_bench::Args;
use nok_core::{Dewey, XmlDb};
use nok_datagen::dataset_by_name;
use nok_pager::FileStorage;
use nok_serve::binproto::{BinClient, BinResponse};
use nok_serve::conn::serve_connection;
use nok_serve::proto::{parse_query_response, read_frame, write_frame, Request};
use nok_serve::{Json, QueryService, ServiceConfig, SERVE_POOL_FRAMES};

fn main() {
    if let Err(e) = run() {
        eprintln!("serve_throughput: {e}");
        std::process::exit(1);
    }
}

/// One measured run: merged client-side latencies, wall-clock qps.
struct RunResult {
    qps: f64,
    served: u64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn finish(latencies: Vec<Vec<u64>>, elapsed: f64) -> RunResult {
    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    RunResult {
        qps: all.len() as f64 / elapsed,
        served: all.len() as u64,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let dataset = args.get("dataset").unwrap_or("dblp").to_string();
    let scale = args.scale();
    let duration = Duration::from_millis(
        args.get("duration-ms")
            .and_then(|s| s.parse().ok())
            .unwrap_or(5000),
    );
    let warmup = Duration::from_millis(
        args.get("warmup-ms")
            .and_then(|s| s.parse().ok())
            .unwrap_or(500),
    );
    let pipeline_depth: usize = args
        .get("pipeline")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let out_path = args.get("out").unwrap_or("BENCH_serve.json").to_string();
    let write_rate: u64 = args
        .get("write-rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let thread_counts: Vec<usize> = args
        .get("threads")
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad thread count {s}"))
        })
        .collect::<Result<_, _>>()?;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let ds =
        dataset_by_name(&dataset, scale).ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
    let dir = std::env::temp_dir().join(format!("nok-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    XmlDb::create_on_disk(&dir, &ds.xml)
        .map_err(|e| format!("build: {e}"))?
        .flush()
        .map_err(|e| format!("flush: {e}"))?;

    let paths: Vec<String> = nok_datagen::workload(ds.kind)
        .into_iter()
        .filter_map(|(_, spec)| spec)
        .flat_map(|s| {
            if s.descendant_variant == s.path {
                vec![s.path]
            } else {
                vec![s.path, s.descendant_variant]
            }
        })
        .collect();

    println!(
        "serve_throughput: dataset={dataset} scale={scale} records={} pool_frames={} \
         queries={} duration={}ms warmup={}ms pipeline={pipeline_depth} cores={cores}",
        ds.records,
        SERVE_POOL_FRAMES,
        paths.len(),
        duration.as_millis(),
        warmup.as_millis(),
    );
    println!(
        "{:>8} {:>8} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "threads", "proto", "pipe", "qps", "p50_us", "p99_us", "served"
    );

    let mut runs = Vec::new();
    // (threads, protocol) -> (qps, p99) for gates and the mixed baseline.
    let mut by_key: HashMap<(usize, &'static str), (f64, u64)> = HashMap::new();
    for &workers in &thread_counts {
        for protocol in ["inproc", "json", "binary"] {
            // Fresh service (and pool) per run so runs are independent.
            let db = Arc::new(
                XmlDb::open_dir_with_capacity(&dir, SERVE_POOL_FRAMES)
                    .map_err(|e| format!("open: {e}"))?,
            );
            let svc = Arc::new(QueryService::start(
                Arc::clone(&db),
                ServiceConfig {
                    workers,
                    queue_cap: 1024,
                    default_timeout: Duration::from_secs(60),
                    ..ServiceConfig::default()
                },
            ));
            // Warmup 1: a full workload pass primes plan cache and pool.
            for p in &paths {
                svc.query(p).map_err(|e| format!("warm-up {p}: {e}"))?;
            }
            let depth = if protocol == "binary" {
                pipeline_depth
            } else {
                1
            };
            let (server, stop_srv) = if protocol == "inproc" {
                (None, None)
            } else {
                let (addr, stop) = spawn_server(Arc::clone(&svc));
                (Some(addr), Some(stop))
            };
            // Warmup 2: untimed driving in the run's own shape.
            if !warmup.is_zero() {
                let _ = drive(protocol, &svc, server, &paths, workers, depth, warmup)?;
            }
            let started = Instant::now();
            let latencies = drive(protocol, &svc, server, &paths, workers, depth, duration)?;
            let r = finish(latencies, started.elapsed().as_secs_f64());
            if let Some(stop) = stop_srv {
                stop.store(true, Ordering::Release);
                if let Some(addr) = server {
                    let _ = TcpStream::connect(addr);
                }
            }
            println!(
                "{workers:>8} {protocol:>8} {depth:>6} {:>12.1} {:>10} {:>10} {:>10}",
                r.qps, r.p50_us, r.p99_us, r.served
            );
            by_key.insert((workers, protocol), (r.qps, r.p99_us));
            runs.push(Json::obj(vec![
                ("threads", Json::Num(workers as f64)),
                ("protocol", Json::Str(protocol.into())),
                ("pipeline_depth", Json::Num(depth as f64)),
                ("qps", Json::Num((r.qps * 10.0).round() / 10.0)),
                ("p50_us", Json::Num(r.p50_us as f64)),
                ("p99_us", Json::Num(r.p99_us as f64)),
                ("served", Json::Num(r.served as f64)),
            ]));
        }
    }

    // Scaling gate: binary pipelined qps at the max thread count vs 1
    // thread, enforced only where the host has the cores to show it.
    let lo_t = thread_counts.iter().copied().min().unwrap_or(1);
    let hi_t = thread_counts.iter().copied().max().unwrap_or(1);
    let (lo_qps, lo_p99) = by_key.get(&(lo_t, "binary")).copied().unwrap_or((0.0, 0));
    let (hi_qps, hi_p99) = by_key.get(&(hi_t, "binary")).copied().unwrap_or((0.0, 0));
    let ratio = if lo_qps > 0.0 { hi_qps / lo_qps } else { 0.0 };
    let enforced = cores >= hi_t && hi_t > lo_t;
    // p99 "no worse" with 2x slack for bucket noise at CI durations.
    let p99_ok = hi_p99 <= lo_p99.saturating_mul(2).max(1);
    let scaling_ok = ratio >= 3.0 && p99_ok;
    let mut gates_passed = !enforced || scaling_ok;
    let mut gate_failures: Vec<String> = Vec::new();
    if enforced && !scaling_ok {
        gate_failures.push(format!(
            "scaling gate failed: binary {lo_t}t->{hi_t}t ratio {ratio:.2} (need 3.0) \
             p99 {lo_p99}us->{hi_p99}us on a {cores}-core host"
        ));
    }
    println!(
        "scaling: binary {lo_t}t -> {hi_t}t = {ratio:.2}x (p99 {lo_p99}us -> {hi_p99}us), \
         cores={cores}, gate {}",
        if !enforced {
            "not enforced (host has fewer cores than the top thread count)"
        } else if scaling_ok {
            "PASSED"
        } else {
            "FAILED"
        }
    );

    // Mixed read/write: the highest thread count again (inproc), with one
    // writer thread committing update transactions at `--write-rate` while
    // the readers serve from pinned MVCC snapshots. The writer owns the
    // database exclusively (`&mut`); the service reads through a detached
    // `SnapshotSource`, so reader pinning takes no lock the writer holds.
    let readers = hi_t;
    let baseline = by_key
        .get(&(readers, "inproc"))
        .map(|(q, _)| *q)
        .unwrap_or(0.0);
    let mut db = XmlDb::open_dir_with_capacity(&dir, SERVE_POOL_FRAMES)
        .map_err(|e| format!("open (mixed): {e}"))?;
    let svc = Arc::new(QueryService::start_from_source(
        db.snapshot_source(),
        ServiceConfig {
            workers: readers,
            queue_cap: 1024,
            default_timeout: Duration::from_secs(60),
            ..ServiceConfig::default()
        },
    ));
    for p in &paths {
        svc.query(p)
            .map_err(|e| format!("warm-up (mixed) {p}: {e}"))?;
    }
    let stop_writer = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));
    let writer = {
        let stop = Arc::clone(&stop_writer);
        let commits = Arc::clone(&commits);
        std::thread::spawn(move || -> Result<(), String> {
            let root = Dewey::root();
            let interval = Duration::from_secs_f64(1.0 / write_rate.max(1) as f64);
            while !stop.load(Ordering::Relaxed) {
                // One insert commit, one delete commit: the document is
                // back to its original shape after every pair, so the run
                // length does not change what the readers measure.
                let d = db
                    .insert_last_child(&root, "<benchnote>mixed</benchnote>")
                    .map_err(|e| format!("writer insert: {e}"))?;
                commits.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(interval);
                db.delete_subtree(&d)
                    .map_err(|e| format!("writer delete: {e}"))?;
                commits.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(interval);
            }
            Ok(())
        })
    };
    let started = Instant::now();
    let mixed_lat = drive("inproc", &svc, None, &paths, readers, 1, duration)?;
    let mixed_r = finish(mixed_lat, started.elapsed().as_secs_f64());
    stop_writer.store(true, Ordering::Relaxed);
    writer
        .join()
        .map_err(|_| "writer thread panicked".to_string())??;
    let writes = commits.load(Ordering::Relaxed);
    let ratio_mixed = if baseline > 0.0 {
        mixed_r.qps / baseline
    } else {
        0.0
    };
    // Mixed gate: with per-entry plan-cache invalidation and lock-free
    // snapshot pinning, a background writer should cost the readers under
    // 20% of read-only throughput. Enforced only where the host has a core
    // for the writer on top of the readers — on smaller hosts the writer
    // steals reader CPU outright and the ratio measures the scheduler, not
    // the storage scheme.
    const MIXED_RATIO_FLOOR: f64 = 0.8;
    let mixed_enforced = cores > readers;
    let mixed_ok = ratio_mixed >= MIXED_RATIO_FLOOR;
    if mixed_enforced && !mixed_ok {
        gates_passed = false;
        gate_failures.push(format!(
            "mixed gate failed: qps ratio {ratio_mixed:.3} < {MIXED_RATIO_FLOOR} \
             ({} mixed vs {} read-only qps) on a {cores}-core host",
            mixed_r.qps.round(),
            baseline.round()
        ));
    }
    println!(
        "mixed: qps ratio {ratio_mixed:.3} (floor {MIXED_RATIO_FLOOR}), gate {}",
        if !mixed_enforced {
            "not enforced (host has no spare core for the writer)"
        } else if mixed_ok {
            "PASSED"
        } else {
            "FAILED"
        }
    );
    println!(
        "{:>8} {:>8} {:>6} {:>12.1} {:>10} {:>10} {:>10}  \
         (mixed: +1 writer, {writes} commits, {:.0}% of read-only)",
        format!("{readers}+1w"),
        "inproc",
        1,
        mixed_r.qps,
        mixed_r.p50_us,
        mixed_r.p99_us,
        mixed_r.served,
        ratio_mixed * 100.0
    );
    let mixed = Json::obj(vec![
        ("threads", Json::Num(readers as f64)),
        ("write_rate", Json::Num(write_rate as f64)),
        ("writes_committed", Json::Num(writes as f64)),
        ("qps", Json::Num((mixed_r.qps * 10.0).round() / 10.0)),
        ("p50_us", Json::Num(mixed_r.p50_us as f64)),
        ("p99_us", Json::Num(mixed_r.p99_us as f64)),
        ("served", Json::Num(mixed_r.served as f64)),
        ("read_only_qps", Json::Num((baseline * 10.0).round() / 10.0)),
        (
            "qps_ratio",
            Json::Num((ratio_mixed * 1000.0).round() / 1000.0),
        ),
        (
            "plan_stale",
            Json::Num(svc.metrics().plan_stale.load(Ordering::Relaxed) as f64),
        ),
        (
            "generations_retired",
            Json::Num(svc.generation_stats().retired_generations() as f64),
        ),
        ("required_ratio", Json::Num(MIXED_RATIO_FLOOR)),
        ("enforced", Json::Bool(mixed_enforced)),
        ("passed", Json::Bool(mixed_ok)),
    ]);

    let report = Json::obj(vec![
        ("bench", Json::Str("serve_throughput".into())),
        ("dataset", Json::Str(dataset.clone())),
        ("scale", Json::Num(scale)),
        ("records", Json::Num(ds.records as f64)),
        ("pool_frames", Json::Num(SERVE_POOL_FRAMES as f64)),
        ("duration_ms", Json::Num(duration.as_millis() as f64)),
        ("warmup_ms", Json::Num(warmup.as_millis() as f64)),
        ("cores", Json::Num(cores as f64)),
        ("runs", Json::Arr(runs)),
        (
            "scaling",
            Json::obj(vec![
                ("protocol", Json::Str("binary".into())),
                ("pipeline_depth", Json::Num(pipeline_depth as f64)),
                ("threads_lo", Json::Num(lo_t as f64)),
                ("threads_hi", Json::Num(hi_t as f64)),
                ("qps_lo", Json::Num((lo_qps * 10.0).round() / 10.0)),
                ("qps_hi", Json::Num((hi_qps * 10.0).round() / 10.0)),
                ("ratio", Json::Num((ratio * 100.0).round() / 100.0)),
                ("p99_us_lo", Json::Num(lo_p99 as f64)),
                ("p99_us_hi", Json::Num(hi_p99 as f64)),
                ("required_ratio", Json::Num(3.0)),
                ("enforced", Json::Bool(enforced)),
                ("passed", Json::Bool(scaling_ok)),
            ]),
        ),
        ("gates_passed", Json::Bool(gates_passed)),
        ("mixed", mixed),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    std::fs::remove_dir_all(&dir).ok();
    if !gates_passed {
        return Err(gate_failures.join("; "));
    }
    Ok(())
}

/// Start the same TCP acceptor loop `nokd` runs (protocol auto-detect per
/// connection) over `svc`; returns the bound address and a stop flag.
fn spawn_server(svc: Arc<QueryService<FileStorage>>) -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let local = listener.local_addr().expect("local_addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop2.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { break };
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop2);
            std::thread::spawn(move || {
                let _ = serve_connection(&stream, &svc, &stop, local);
            });
        }
    });
    (local, stop)
}

/// Drive `readers` client threads in the given protocol shape for
/// `duration`; returns each client's per-request latencies (µs).
fn drive(
    protocol: &str,
    svc: &Arc<QueryService<FileStorage>>,
    addr: Option<SocketAddr>,
    paths: &[String],
    readers: usize,
    depth: usize,
    duration: Duration,
) -> Result<Vec<Vec<u64>>, String> {
    let readers = readers.max(1);
    let end = Instant::now() + duration;
    let clients: Vec<_> = (0..readers)
        .map(|c| {
            let svc = Arc::clone(svc);
            let paths = paths.to_vec();
            let protocol = protocol.to_string();
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                match protocol.as_str() {
                    "inproc" => drive_inproc(&svc, &paths, c, end),
                    "json" => drive_json(addr.expect("json needs a server"), &paths, c, end),
                    "binary" => {
                        drive_binary(addr.expect("binary needs a server"), &paths, c, depth, end)
                    }
                    other => Err(format!("unknown protocol {other}")),
                }
            })
        })
        .collect();
    let mut all = Vec::with_capacity(readers);
    for c in clients {
        all.push(c.join().map_err(|_| "client thread panicked")??);
    }
    Ok(all)
}

fn drive_inproc(
    svc: &QueryService<FileStorage>,
    paths: &[String],
    seed: usize,
    end: Instant,
) -> Result<Vec<u64>, String> {
    let mut lat = Vec::new();
    let mut i = seed;
    while Instant::now() < end {
        let p = &paths[i % paths.len()];
        let t0 = Instant::now();
        if svc.query(p).is_ok() {
            lat.push(t0.elapsed().as_micros() as u64);
        }
        i += 1;
    }
    Ok(lat)
}

fn drive_json(
    addr: SocketAddr,
    paths: &[String],
    seed: usize,
    end: Instant,
) -> Result<Vec<u64>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut w = BufWriter::new(stream);
    let mut lat = Vec::new();
    let mut i = seed;
    let mut id = 0u64;
    while Instant::now() < end {
        let p = &paths[i % paths.len()];
        id += 1;
        let t0 = Instant::now();
        let req = Request::Query {
            id,
            path: p.clone(),
            timeout_ms: None,
        };
        write_frame(&mut w, &req.to_json().to_string_compact()).map_err(|e| e.to_string())?;
        let payload = read_frame(&mut r)
            .map_err(|e| e.to_string())?
            .ok_or("server closed connection")?;
        let v = Json::parse(&payload)?;
        if parse_query_response(&v).is_ok() {
            lat.push(t0.elapsed().as_micros() as u64);
        }
        i += 1;
    }
    Ok(lat)
}

fn drive_binary(
    addr: SocketAddr,
    paths: &[String],
    seed: usize,
    depth: usize,
    end: Instant,
) -> Result<Vec<u64>, String> {
    let mut client = BinClient::new(TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?)
        .map_err(|e| e.to_string())?;
    let mut lat = Vec::new();
    let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(depth);
    let mut i = seed;
    let mut id = 0u64;
    loop {
        let stop = Instant::now() >= end;
        if !stop {
            while sent_at.len() < depth {
                let p = &paths[i % paths.len()];
                id += 1;
                client
                    .send(&Request::Query {
                        id,
                        path: p.clone(),
                        timeout_ms: None,
                    })
                    .map_err(|e| e.to_string())?;
                sent_at.insert(id, Instant::now());
                i += 1;
            }
            client.flush().map_err(|e| e.to_string())?;
        }
        if sent_at.is_empty() {
            break;
        }
        let resp = client
            .recv()
            .map_err(|e| e.to_string())?
            .ok_or("server closed connection")?;
        match resp {
            BinResponse::QueryOk { id, .. } => {
                if let Some(t0) = sent_at.remove(&id) {
                    lat.push(t0.elapsed().as_micros() as u64);
                }
            }
            BinResponse::Error { id, .. } => {
                sent_at.remove(&id);
            }
            other => return Err(format!("unexpected response {other:?}")),
        }
    }
    Ok(lat)
}
