//! Serving throughput: queries/second of the concurrent query service at
//! 1, 2, 4, and 8 worker threads over one shared on-disk database with the
//! structural pool capped at 256 frames (the `nokd` default).
//!
//! ```text
//! cargo run -p nok-bench --release --bin serve_throughput -- \
//!     [--dataset dblp] [--scale 0.05] [--duration-ms 2000] \
//!     [--threads 1,2,4,8] [--out BENCH_serve.json]
//! ```
//!
//! Emits a machine-readable summary (deterministic key order) to the
//! `--out` file and a human-readable table to stdout. The interesting
//! number is the qps scaling 1→4 threads: with a single global pool lock
//! it would be flat; with the sharded pool it should exceed 1×.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nok_bench::Args;
use nok_core::XmlDb;
use nok_datagen::dataset_by_name;
use nok_serve::{Json, QueryService, ServiceConfig, SERVE_POOL_FRAMES};

fn main() {
    if let Err(e) = run() {
        eprintln!("serve_throughput: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let dataset = args.get("dataset").unwrap_or("dblp").to_string();
    let scale = args.scale();
    let duration = Duration::from_millis(
        args.get("duration-ms")
            .and_then(|s| s.parse().ok())
            .unwrap_or(2000),
    );
    let out_path = args.get("out").unwrap_or("BENCH_serve.json").to_string();
    let thread_counts: Vec<usize> = args
        .get("threads")
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad thread count {s}"))
        })
        .collect::<Result<_, _>>()?;

    let ds =
        dataset_by_name(&dataset, scale).ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
    let dir = std::env::temp_dir().join(format!("nok-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    XmlDb::create_on_disk(&dir, &ds.xml)
        .map_err(|e| format!("build: {e}"))?
        .flush()
        .map_err(|e| format!("flush: {e}"))?;

    let paths: Vec<String> = nok_datagen::workload(ds.kind)
        .into_iter()
        .filter_map(|(_, spec)| spec)
        .flat_map(|s| {
            if s.descendant_variant == s.path {
                vec![s.path]
            } else {
                vec![s.path, s.descendant_variant]
            }
        })
        .collect();

    println!(
        "serve_throughput: dataset={dataset} scale={scale} records={} pool_frames={} \
         queries={} duration={}ms",
        ds.records,
        SERVE_POOL_FRAMES,
        paths.len(),
        duration.as_millis()
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10}",
        "threads", "qps", "p50_us", "p99_us", "served"
    );

    let mut runs = Vec::new();
    for &workers in &thread_counts {
        // Fresh handle per run so pool stats and latency start cold-free
        // but comparable (warm-up below primes the pool).
        let db = Arc::new(
            XmlDb::open_dir_with_capacity(&dir, SERVE_POOL_FRAMES)
                .map_err(|e| format!("open: {e}"))?,
        );
        let svc = Arc::new(QueryService::start(
            Arc::clone(&db),
            ServiceConfig {
                workers,
                queue_cap: 1024,
                default_timeout: Duration::from_secs(60),
                ..ServiceConfig::default()
            },
        ));
        // Warm-up: one pass over the workload.
        for p in &paths {
            svc.query(p).map_err(|e| format!("warm-up {p}: {e}"))?;
        }

        let stop = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let clients: Vec<_> = (0..workers)
            .map(|c| {
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                let completed = Arc::clone(&completed);
                let paths = paths.clone();
                std::thread::spawn(move || {
                    let mut i = c;
                    while !stop.load(Ordering::Relaxed) {
                        let p = &paths[i % paths.len()];
                        if svc.query(p).is_ok() {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for c in clients {
            let _ = c.join();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let served = completed.load(Ordering::Relaxed);
        let qps = served as f64 / elapsed;
        let p50 = svc.metrics().latency.quantile_micros(0.50);
        let p99 = svc.metrics().latency.quantile_micros(0.99);
        println!("{workers:>8} {qps:>12.1} {p50:>10} {p99:>10} {served:>10}");
        runs.push(Json::obj(vec![
            ("threads", Json::Num(workers as f64)),
            ("qps", Json::Num((qps * 10.0).round() / 10.0)),
            ("p50_us", Json::Num(p50 as f64)),
            ("p99_us", Json::Num(p99 as f64)),
            ("served", Json::Num(served as f64)),
        ]));
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("serve_throughput".into())),
        ("dataset", Json::Str(dataset.clone())),
        ("scale", Json::Num(scale)),
        ("records", Json::Num(ds.records as f64)),
        ("pool_frames", Json::Num(SERVE_POOL_FRAMES as f64)),
        ("duration_ms", Json::Num(duration.as_millis() as f64)),
        ("runs", Json::Arr(runs)),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
