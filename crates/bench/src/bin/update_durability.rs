//! Durability-overhead benchmark: what does the write-ahead log cost per
//! committed update transaction?
//!
//! ```text
//! cargo run -p nok-bench --release --bin update_durability -- \
//!     [--ops 200] [--reps 3] [--out BENCH_wal.json] [--dir PATH] [--keep]
//! ```
//!
//! Runs the same scripted insert/delete workload twice against an on-disk
//! database: once with the log active (every commit is crash-durable) and
//! once with it disabled via [`XmlDb::disable_wal`] (commits are atomic in
//! memory but not crash-safe). Both modes fsync `values.dat` appends, so
//! the ratio isolates the log's own cost: the commit-record fsync, the
//! checkpoint, and dictionary persistence. The acceptance gate requires
//! durable commits to stay within 2× of non-durable ones.
//!
//! With `--crash-at-io K` the run instead opens the database behind a
//! fault-injection plan that kills the process's I/O at the K-th mutating
//! operation, leaving a torn directory behind for the recovery walkthrough:
//!
//! ```text
//! cargo run -p nok-bench --release --bin update_durability -- \
//!     --crash-at-io 40 --dir /tmp/nok-crash-demo --keep
//! nokfsck --strict /tmp/nok-crash-demo/crash   # recovers, then verifies
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use nok_bench::Args;
use nok_core::{Dewey, XmlDb};
use nok_pager::{FailPlan, FailpointStorage, FileStorage};
use nok_serve::Json;

fn main() {
    if let Err(e) = run() {
        eprintln!("update_durability: {e}");
        std::process::exit(1);
    }
}

/// Initial document: enough items that early deletes never drain it.
fn initial_doc(items: usize) -> String {
    let mut s = String::from("<list>");
    for i in 0..items {
        s.push_str(&format!("<item><name>n{i}</name><val>v{i}</val></item>"));
    }
    s.push_str("</list>");
    s
}

/// One scripted update op: every third op deletes the first item, the rest
/// append a fresh one. Identical across modes and reps.
fn apply_op<S: nok_pager::Storage>(db: &mut XmlDb<S>, i: usize) -> Result<(), String> {
    if i % 3 == 2 {
        db.delete_subtree(&Dewey::from_components(vec![0, 0]))
            .map_err(|e| format!("op {i} (delete): {e}"))?;
    } else {
        db.insert_last_child(
            &Dewey::root(),
            &format!(
                "<item><name>n{}</name><val>v{}</val></item>",
                1000 + i,
                1000 + i
            ),
        )
        .map_err(|e| format!("op {i} (insert): {e}"))?;
    }
    Ok(())
}

/// Wall time for `ops` committed transactions, durable or not. The
/// database directory is created fresh for each measurement.
fn measure(dir: &Path, ops: usize, durable: bool) -> Result<f64, String> {
    std::fs::remove_dir_all(dir).ok();
    let mut db =
        XmlDb::create_on_disk(dir, &initial_doc(ops)).map_err(|e| format!("create: {e}"))?;
    if !durable {
        db.disable_wal();
    }
    let t0 = Instant::now();
    for i in 0..ops {
        apply_op(&mut db, i)?;
    }
    let elapsed = t0.elapsed();
    Ok(elapsed.as_nanos() as f64 / ops as f64)
}

/// Simulated crash for the recovery walkthrough: run the workload with
/// every mutating I/O counted, dying at the `k`-th.
fn crash_at(dir: &Path, ops: usize, k: u64) -> Result<(), String> {
    std::fs::remove_dir_all(dir).ok();
    {
        let db =
            XmlDb::create_on_disk(dir, &initial_doc(ops)).map_err(|e| format!("create: {e}"))?;
        drop(db);
    }
    let plan = FailPlan::at(k);
    let wrap_plan = Arc::clone(&plan);
    let mut db = XmlDb::<FailpointStorage<FileStorage>>::open_dir_with(dir, 256, move |s| {
        FailpointStorage::new(s, Arc::clone(&wrap_plan))
    })
    .map_err(|e| format!("open: {e}"))?;
    db.set_failpoint(Arc::clone(&plan));
    for i in 0..ops {
        if let Err(e) = apply_op(&mut db, i) {
            println!(
                "simulated crash at mutating I/O #{k} during op {i}: {e}\n\
                 torn database left at {} — reopen (nokfsck, nokd, or \
                 XmlDb::open_dir) to recover",
                dir.display()
            );
            return Ok(());
        }
    }
    Err(format!(
        "failpoint {k} never tripped: the workload issued only {} mutating I/Os",
        plan.count()
    ))
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let ops: usize = args
        .get("ops")
        .map(|s| {
            s.parse()
                .map_err(|_| "--ops must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(200);
    let reps = args.reps() as usize;
    let out_path = args.get("out").unwrap_or("BENCH_wal.json").to_string();
    let base: PathBuf = match args.get("dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("nok-wal-bench-{}", std::process::id())),
    };
    std::fs::create_dir_all(&base).map_err(|e| format!("create {}: {e}", base.display()))?;

    if let Some(k) = args.get("crash-at-io") {
        let k: u64 = k
            .parse()
            .map_err(|_| "--crash-at-io must be an integer".to_string())?;
        let result = crash_at(&base.join("crash"), ops, k);
        if !args.has("keep") && result.is_err() {
            std::fs::remove_dir_all(&base).ok();
        }
        return result;
    }

    // Best-of-reps for each mode; interleaving would let the page cache
    // warm asymmetrically.
    let mut durable_ns = f64::INFINITY;
    let mut nondurable_ns = f64::INFINITY;
    for _ in 0..reps {
        nondurable_ns = nondurable_ns.min(measure(&base.join("plain"), ops, false)?);
    }
    for _ in 0..reps {
        durable_ns = durable_ns.min(measure(&base.join("wal"), ops, true)?);
    }
    let ratio = durable_ns / nondurable_ns;

    println!("{:<24} {:>12}", "mode", "ns/commit");
    println!("{:<24} {:>12.0}", "non-durable", nondurable_ns);
    println!("{:<24} {:>12.0}", "durable (WAL)", durable_ns);
    println!("overhead ratio: {ratio:.2}x (gate: <= 2.0x)");

    let gates_passed = ratio <= 2.0;
    let report = Json::obj(vec![
        ("bench", Json::Str("wal".into())),
        ("ops", Json::Num(ops as f64)),
        ("reps", Json::Num(reps as f64)),
        ("nondurable_ns_per_commit", Json::Num(nondurable_ns)),
        ("durable_ns_per_commit", Json::Num(durable_ns)),
        ("overhead_ratio", Json::Num(ratio)),
        ("gates_passed", Json::Bool(gates_passed)),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    if !args.has("keep") {
        std::fs::remove_dir_all(&base).ok();
    }
    if !gates_passed {
        return Err(format!(
            "durability gate failed: {ratio:.2}x > 2.0x WAL overhead"
        ));
    }
    Ok(())
}
