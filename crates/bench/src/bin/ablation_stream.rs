//! Ablation **A3**: streaming NoK matching (§4.2/§5 — the string
//! representation *is* the SAX stream, so the matcher runs over streaming
//! XML). Measures single-pass throughput of the streaming matcher against
//! build-then-query on the stored engine.
//!
//! ```text
//! cargo run -p nok-bench --release --bin ablation_stream -- [--scale 0.05]
//! ```

use std::time::Instant;

use nok_bench::Args;
use nok_core::{StreamMatcher, XmlDb};
use nok_datagen::{generate, workload, DatasetKind};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    println!("A3: streaming NoK vs stored NoK");
    println!(
        "{:<9} {:<4} {:>9} {:>12} {:>12} {:>10}",
        "file", "q", "hits", "stream (s)", "stored (s)", "MB/s strm"
    );
    for kind in [
        DatasetKind::Address,
        DatasetKind::Dblp,
        DatasetKind::Treebank,
    ] {
        let ds = generate(kind, scale);
        let mb = ds.xml.len() as f64 / 1e6;
        // Stored engine build once (amortizable, unlike per-pass streaming).
        let db = XmlDb::build_in_memory(&ds.xml).expect("build");
        for (i, spec) in workload(kind) {
            let Some(spec) = spec else { continue };
            // Streaming supports single-fragment patterns: Q with / paths.
            let path = &spec.path;
            let t = Instant::now();
            let hits = match StreamMatcher::run_str(path, &ds.xml) {
                Ok(h) => h,
                Err(_) => continue, // pattern needs joins: not streamable
            };
            let stream_time = t.elapsed();
            let t = Instant::now();
            let stored = db.query(path).expect("query");
            let stored_time = t.elapsed();
            assert_eq!(
                hits.len(),
                stored.len(),
                "stream/stored disagree on {} Q{i}",
                kind.name()
            );
            println!(
                "{:<9} Q{:<3} {:>9} {:>12.4} {:>12.4} {:>10.1}",
                kind.name(),
                i,
                hits.len(),
                stream_time.as_secs_f64(),
                stored_time.as_secs_f64(),
                mb / stream_time.as_secs_f64()
            );
        }
        println!();
    }
}
