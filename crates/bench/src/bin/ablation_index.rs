//! Ablation **A1**: the paper's three starting-point strategies (§3) —
//! sequential scan, tag-name index, value index — compared on queries of
//! each selectivity class. Reproduces the §6.2 observations: "sometimes
//! value index is more effective than tag-name index ... and sometimes
//! tag-name index is more effective".
//!
//! ```text
//! cargo run -p nok-bench --release --bin ablation_index -- [--scale 0.05]
//! ```

use std::time::Instant;

use nok_bench::{filter_datasets, fmt_secs, Args, NokEngine};
use nok_core::{QueryOptions, StartStrategy};
use nok_datagen::{all_datasets, workload};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let reps = args.reps();
    println!("A1: NoK starting-point strategies (seconds, avg of {reps})");
    println!(
        "{:<9} {:<4} {:<5} {:>10} {:>10} {:>10} {:>10}",
        "file", "q", "cat", "auto", "scan", "tag-index", "value-idx"
    );
    for ds in filter_datasets(all_datasets(scale), &args.dataset_filter()) {
        let engine = NokEngine::new(&ds.xml).expect("build");
        for (i, spec) in workload(ds.kind) {
            let Some(spec) = spec else { continue };
            // Value strategies matter only for 'y' categories; still run all
            // so the table shows the fallback costs.
            print!(
                "{:<9} Q{:<3} {:<5}",
                ds.kind.name(),
                i,
                spec.category.code()
            );
            for strat in [
                StartStrategy::Auto,
                StartStrategy::Scan,
                StartStrategy::TagIndex,
                StartStrategy::ValueIndex,
            ] {
                let opts = QueryOptions { strategy: strat };
                let start = Instant::now();
                let mut ok = true;
                for _ in 0..reps {
                    if engine.db().query_with(&spec.path, opts).is_err() {
                        ok = false;
                        break;
                    }
                }
                let cell = if ok {
                    fmt_secs(start.elapsed() / reps)
                } else {
                    "ERR".to_string()
                };
                print!(" {cell:>10}");
            }
            println!();
        }
        println!();
    }
}
