//! Regenerates **Table 3** of the paper: running time (seconds) of DI,
//! NavDOM (the X-Hive substitute), TwigStack and NoK for the Q1–Q12
//! workload on every dataset.
//!
//! ```text
//! cargo run -p nok-bench --release --bin table3 -- \
//!     [--scale 0.05] [--reps 3] [--datasets author,dblp] \
//!     [--descendant]   # use the // query variants
//!     [--verify]       # cross-check all engines return identical results
//! ```
//!
//! Cells: `NA` — category not applicable to the dataset (same layout as the
//! paper); `NI` — the engine does not implement the query (e.g. TwigStack
//! with ordered axes).

use nok_baselines::Engine;
use nok_bench::{filter_datasets, fmt_secs, time_query, Args, EngineSet};
use nok_datagen::{all_datasets, workload};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let reps = args.reps();
    let verify = args.has("verify");
    let descendant = args.has("descendant");

    println!(
        "Table 3: running time (s) for DI, NavDOM(X-Hive sub.), TwigStack, NoK \
         (scale={scale}, avg of {reps} runs{})",
        if descendant { ", // variants" } else { "" }
    );
    let datasets = filter_datasets(all_datasets(scale), &args.dataset_filter());
    let mut verify_failures = 0u32;
    for ds in datasets {
        let build_start = std::time::Instant::now();
        let set = match EngineSet::build(&ds.xml) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: build failed: {e}", ds.kind.name());
                std::process::exit(1);
            }
        };
        eprintln!(
            "# built {} ({} records, {:.1} MB) in {:.1}s",
            ds.kind.name(),
            ds.records,
            ds.xml.len() as f64 / 1e6,
            build_start.elapsed().as_secs_f64()
        );
        let specs = workload(ds.kind);
        // Header row.
        print!("{:<9} {:<10}", "file", "system");
        for (i, _) in &specs {
            print!(" {:>8}", format!("Q{i}"));
        }
        println!();
        for engine in set.all() {
            print!("{:<9} {:<10}", ds.kind.name(), engine.name());
            for (_, spec) in &specs {
                let cell = match spec {
                    None => "NA".to_string(),
                    Some(spec) => {
                        let path = if descendant {
                            &spec.descendant_variant
                        } else {
                            &spec.path
                        };
                        match time_query(engine, path, reps) {
                            Some(d) => fmt_secs(d),
                            None => "NI".to_string(),
                        }
                    }
                };
                print!(" {cell:>8}");
            }
            println!();
        }
        if verify {
            for (i, spec) in &specs {
                let Some(spec) = spec else { continue };
                let path = if descendant {
                    &spec.descendant_variant
                } else {
                    &spec.path
                };
                let reference: Option<Vec<String>> = set
                    .nok
                    .eval(path)
                    .ok()
                    .map(|v| v.iter().map(|d| d.to_string()).collect());
                for engine in set.all() {
                    if let Ok(res) = engine.eval(path) {
                        let got: Vec<String> = res.iter().map(|d| d.to_string()).collect();
                        if Some(&got) != reference.as_ref() {
                            eprintln!(
                                "VERIFY FAIL: {} Q{i} {}: {} vs NoK",
                                ds.kind.name(),
                                path,
                                engine.name()
                            );
                            verify_failures += 1;
                        }
                    }
                }
            }
        }
        println!();
    }
    if verify {
        if verify_failures > 0 {
            eprintln!("{verify_failures} verification failures");
            std::process::exit(1);
        }
        println!("verification: all engines agree on every supported cell");
    }
}
