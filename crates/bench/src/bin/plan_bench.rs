//! plan_bench — the cost-based planner versus fixed-order evaluation, and
//! the serve-layer plan cache's hit path.
//!
//! ```text
//! cargo run -p nok-bench --release --bin plan_bench -- \
//!     [--reps 5] [--out BENCH_plan.json]
//! ```
//!
//! The pessimal query is `//a[.//nosuch]//filler` over a document with
//! thousands of `filler` nodes and **zero** `nosuch` nodes. Its two cut
//! fragments are siblings, so fragment order is the planner's to choose:
//! the legacy fixed order (highest fragment index first) evaluates the
//! unselective `filler` fragment with a full document scan before
//! discovering `nosuch` is empty, while the cost-ordered plan evaluates
//! the zero-cost `nosuch` fragment first and proves the query empty
//! without touching the fillers.
//!
//! Gates (the process exits nonzero when any fails):
//!
//! * On every measured query the planned order examines no more index
//!   entries than the fixed order, and on the pessimal query strictly
//!   fewer.
//! * Both orders return identical results.
//! * The plan-cache hit path allocates no plan: over many lookups of one
//!   query, exactly one miss plans, and every hit returns the same
//!   allocation (`Arc::ptr_eq`).

use std::sync::Arc;
use std::time::Instant;

use nok_bench::Args;
use nok_core::{PlanConfig, PlannedQuery, QueryOptions, QueryScratch, XmlDb};
use nok_pager::MemStorage;
use nok_serve::{normalize_query, Json, PlanCache};

const PESSIMAL: &str = "//a[.//nosuch]//filler";

fn main() {
    if let Err(e) = run() {
        eprintln!("plan_bench: {e}");
        std::process::exit(1);
    }
}

/// One subtree of mostly-`filler` content; no `nosuch` anywhere.
fn pessimal_xml(sections: usize, fillers_per_section: usize) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..sections {
        xml.push_str("<a><meta>x</meta>");
        for _ in 0..fillers_per_section {
            xml.push_str("<filler/>");
        }
        xml.push_str("</a>");
    }
    xml.push_str("</r>");
    xml
}

struct Measure {
    ns: f64,
    entries: u64,
    dir_entries: u64,
    matches: u64,
    deweys: Vec<String>,
}

/// Execute a prepared plan `reps` times; best wall time, last-pass stats.
fn measure(db: &XmlDb<MemStorage>, planned: &PlannedQuery, reps: usize) -> Result<Measure, String> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        db.store().invalidate_decoded(None);
        db.store()
            .pool()
            .clear_cache()
            .map_err(|e| format!("clear: {e}"))?;
        let t = Instant::now();
        db.execute_plan(planned, &mut scratch, &mut out)
            .map_err(|e| format!("execute: {e}"))?;
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    let stats = scratch.stats();
    Ok(Measure {
        ns: best,
        entries: stats.entries_examined,
        dir_entries: stats.dir_entries_examined,
        matches: out.len() as u64,
        deweys: out.iter().map(|m| m.dewey.to_string()).collect(),
    })
}

struct QueryResult {
    query: String,
    planned: Measure,
    fixed: Measure,
}

impl QueryResult {
    fn to_json(&self) -> Json {
        let side = |m: &Measure| {
            Json::obj(vec![
                ("ns", Json::Num(m.ns)),
                ("entries_examined", Json::Num(m.entries as f64)),
                ("dir_entries_examined", Json::Num(m.dir_entries as f64)),
                ("matches", Json::Num(m.matches as f64)),
            ])
        };
        Json::obj(vec![
            ("query", Json::Str(self.query.clone())),
            ("planned", side(&self.planned)),
            ("fixed", side(&self.fixed)),
        ])
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let reps = args.reps() as usize;
    let out_path = args.get("out").unwrap_or("BENCH_plan.json").to_string();

    let db = XmlDb::build_in_memory(&pessimal_xml(40, 400)).map_err(|e| format!("build: {e}"))?;

    let queries = [PESSIMAL, "//a//filler", "//a[.//meta]//filler", "//nosuch"];
    let mut results = Vec::new();
    for q in queries {
        let planned = db
            .plan_query(q, QueryOptions::default())
            .map_err(|e| format!("plan {q}: {e}"))?;
        let fixed = db
            .plan_query_with(
                q,
                QueryOptions::default(),
                PlanConfig {
                    cost_ordered: false,
                },
            )
            .map_err(|e| format!("plan {q}: {e}"))?;
        results.push(QueryResult {
            query: q.to_string(),
            planned: measure(&db, &planned, reps)?,
            fixed: measure(&db, &fixed, reps)?,
        });
    }

    // ---- Plan-cache hit path: one miss plans, every hit reuses the same
    // allocation.
    let cache = PlanCache::new(8);
    let key = normalize_query(PESSIMAL);
    let generation = db.commit_generation();
    let lookups = 1000usize;
    let mut misses = 0usize;
    let mut reused_allocation = true;
    let mut cached: Option<Arc<PlannedQuery>> = None;
    let t = Instant::now();
    for _ in 0..lookups {
        match cache.lookup(&key, generation).plan {
            Some(p) => {
                if let Some(first) = &cached {
                    reused_allocation &= Arc::ptr_eq(first, &p);
                }
            }
            None => {
                misses += 1;
                let p = Arc::new(
                    db.plan_query(PESSIMAL, QueryOptions::default())
                        .map_err(|e| format!("plan: {e}"))?,
                );
                cache.insert(key.clone(), generation, Arc::clone(&p));
                cached = Some(p);
            }
        }
    }
    let cache_ns_per_lookup = t.elapsed().as_nanos() as f64 / lookups as f64;

    println!(
        "{:<28} {:>14} {:>14} {:>12} {:>12}",
        "query", "planned entr", "fixed entr", "planned ms", "fixed ms"
    );
    for r in &results {
        println!(
            "{:<28} {:>14} {:>14} {:>12.3} {:>12.3}",
            r.query,
            r.planned.entries,
            r.fixed.entries,
            r.planned.ns / 1e6,
            r.fixed.ns / 1e6,
        );
    }
    println!(
        "plan cache: {lookups} lookups, {misses} miss(es), \
         {cache_ns_per_lookup:.0} ns/lookup, reused_allocation={reused_allocation}"
    );

    // ---- Gates.
    let mut failures = Vec::new();
    for r in &results {
        if r.planned.entries > r.fixed.entries {
            failures.push(format!(
                "{}: planned order examined more entries ({} > {})",
                r.query, r.planned.entries, r.fixed.entries
            ));
        }
        if r.planned.deweys != r.fixed.deweys {
            failures.push(format!("{}: planned and fixed orders disagree", r.query));
        }
    }
    if let Some(r) = results.iter().find(|r| r.query == PESSIMAL) {
        if r.planned.entries >= r.fixed.entries {
            failures.push(format!(
                "pessimal query: planned order must examine strictly fewer entries \
                 (planned={} fixed={})",
                r.planned.entries, r.fixed.entries
            ));
        }
    }
    if misses != 1 {
        failures.push(format!("plan cache: expected exactly 1 miss, saw {misses}"));
    }
    if !reused_allocation {
        failures.push("plan cache: a hit returned a different allocation".into());
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("plan".into())),
        ("reps", Json::Num(reps as f64)),
        ("node_count", Json::Num(db.node_count() as f64)),
        (
            "queries",
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "plan_cache",
            Json::obj(vec![
                ("lookups", Json::Num(lookups as f64)),
                ("misses", Json::Num(misses as f64)),
                ("ns_per_lookup", Json::Num(cache_ns_per_lookup.round())),
                ("reused_allocation", Json::Bool(reused_allocation)),
            ]),
        ),
        ("gates_passed", Json::Bool(failures.is_empty())),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}
