//! plan_bench — the cost-based, path-aware planner versus the legacy
//! fixed-order tag-only planner, and the serve-layer plan cache's hit path.
//!
//! ```text
//! cargo run -p nok-bench --release --bin plan_bench -- \
//!     [--reps 5] [--out BENCH_plan.json]
//! ```
//!
//! Two workload sections, one baseline: the "fixed" side of every pair is
//! the full legacy planner (`cost_ordered: false, path_aware: false`), so
//! the deltas measure everything the planner refactors bought.
//!
//! **Ordering section** (the pessimal corpus): `//a[.//nosuch]//filler`
//! over thousands of `filler` nodes and zero `nosuch` nodes. The legacy
//! fixed order evaluates the unselective `filler` fragment with a full
//! document scan before discovering `nosuch` is empty; the planned side
//! proves the query empty up front.
//!
//! **Path section** (synopsis path summary at work):
//!
//! * `//filler//meta` has zero *path* support — both tags exist, but no
//!   `meta` descends from a `filler` — so the tag-only planner must run
//!   both fragments and semijoin them to nothing, while the path-aware
//!   planner proves the query empty from the summary alone: zero entries
//!   examined, zero physical page reads.
//! * `/site/item/special/name` on a corpus where every one of a thousand
//!   items matches the prefix but only three route through `special`.
//!   Tag-only planning sees only the unselective `name` member and falls
//!   back to whole-document navigation that visits every item; path-aware
//!   planning elevates to the `special` spine pivot: three postings plus
//!   a nine-node matched subtree.
//! * `/dblp/phdthesis/school` on the scaled dblp dataset: a deep selective
//!   path on generated data, gated not-worse-than-fixed.
//!
//! Gates (the process exits nonzero when any fails):
//!
//! * On every measured query the planned side examines no more index
//!   entries than the fixed side, and on the pessimal query strictly
//!   fewer.
//! * Both sides return identical results.
//! * The zero-path-support query completes with **0 entries examined and
//!   0 physical page reads** on the planned side.
//! * The deep selective path examines **≥10× fewer entries** planned than
//!   fixed.
//! * The plan-cache hit path allocates no plan: over many lookups of one
//!   query, exactly one miss plans, and every hit returns the same
//!   allocation (`Arc::ptr_eq`).

use std::sync::Arc;
use std::time::Instant;

use nok_bench::Args;
use nok_core::{PlanConfig, PlannedQuery, QueryOptions, QueryScratch, XmlDb};
use nok_datagen::{generate, DatasetKind};
use nok_pager::MemStorage;
use nok_serve::{normalize_query, Json, PlanCache};

const PESSIMAL: &str = "//a[.//nosuch]//filler";
const ZERO_SUPPORT: &str = "//filler//meta";
const DEEP_SELECTIVE: &str = "/site/item/special/name";
const DBLP_DEEP: &str = "/dblp/phdthesis/school";

fn main() {
    if let Err(e) = run() {
        eprintln!("plan_bench: {e}");
        std::process::exit(1);
    }
}

/// One subtree of mostly-`filler` content; no `nosuch` anywhere, and no
/// `meta` below a `filler` (so `//filler//meta` has zero path support while
/// both tags are plentiful).
fn pessimal_xml(sections: usize, fillers_per_section: usize) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..sections {
        xml.push_str("<a><meta>x</meta>");
        for _ in 0..fillers_per_section {
            xml.push_str("<filler/>");
        }
        xml.push_str("</a>");
    }
    xml.push_str("</r>");
    xml
}

/// A deep selective corpus: every `item` matches the query's prefix, but
/// only `rare` of them route through `special` to a `name`. Document
/// navigation must visit every item's child list before pruning, and the
/// only member tag at the pattern's hot node (`name`) is as common as the
/// items — so tag-only planning has no cheap seed, while the path summary
/// prices the rare `special` spine ancestor at a handful of postings plus
/// nine navigated nodes.
fn deep_selective_xml(rare: usize, common: usize) -> String {
    let mut xml = String::from("<site>");
    for _ in 0..common {
        xml.push_str("<item><sub><name>n</name></sub></item>");
    }
    for _ in 0..rare {
        xml.push_str("<item><special><name>n</name></special></item>");
    }
    xml.push_str("</site>");
    xml
}

struct Measure {
    ns: f64,
    entries: u64,
    dir_entries: u64,
    reads: u64,
    matches: u64,
    deweys: Vec<String>,
}

/// Execute a prepared plan `reps` times; best wall time, last-pass stats.
/// Caches are cleared before every pass, so the physical-read delta counts
/// every page the pass touched.
fn measure(db: &XmlDb<MemStorage>, planned: &PlannedQuery, reps: usize) -> Result<Measure, String> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    let mut reads = 0u64;
    for _ in 0..reps.max(1) {
        db.store().invalidate_decoded(None);
        db.store()
            .pool()
            .clear_cache()
            .map_err(|e| format!("clear: {e}"))?;
        let reads0 = db.store().pool().stats().physical_reads();
        let t = Instant::now();
        db.execute_plan(planned, &mut scratch, &mut out)
            .map_err(|e| format!("execute: {e}"))?;
        best = best.min(t.elapsed().as_nanos() as f64);
        reads = db
            .store()
            .pool()
            .stats()
            .physical_reads()
            .saturating_sub(reads0);
    }
    let stats = scratch.stats();
    Ok(Measure {
        ns: best,
        entries: stats.entries_examined,
        dir_entries: stats.dir_entries_examined,
        reads,
        matches: out.len() as u64,
        deweys: out.iter().map(|m| m.dewey.to_string()).collect(),
    })
}

struct QueryResult {
    query: String,
    planned: Measure,
    fixed: Measure,
}

impl QueryResult {
    fn to_json(&self) -> Json {
        let side = |m: &Measure| {
            Json::obj(vec![
                ("ns", Json::Num(m.ns)),
                ("entries_examined", Json::Num(m.entries as f64)),
                ("dir_entries_examined", Json::Num(m.dir_entries as f64)),
                ("physical_reads", Json::Num(m.reads as f64)),
                ("matches", Json::Num(m.matches as f64)),
            ])
        };
        Json::obj(vec![
            ("query", Json::Str(self.query.clone())),
            ("planned", side(&self.planned)),
            ("fixed", side(&self.fixed)),
        ])
    }
}

/// Measure one query both ways: the full planner (cost-ordered and
/// path-aware) versus the full legacy baseline (fixed order, tag-only).
fn run_pair(db: &XmlDb<MemStorage>, q: &str, reps: usize) -> Result<QueryResult, String> {
    let planned = db
        .plan_query(q, QueryOptions::default())
        .map_err(|e| format!("plan {q}: {e}"))?;
    let fixed = db
        .plan_query_with(
            q,
            QueryOptions::default(),
            PlanConfig {
                cost_ordered: false,
                path_aware: false,
            },
        )
        .map_err(|e| format!("plan {q}: {e}"))?;
    Ok(QueryResult {
        query: q.to_string(),
        planned: measure(db, &planned, reps)?,
        fixed: measure(db, &fixed, reps)?,
    })
}

fn print_table(title: &str, results: &[QueryResult]) {
    println!(
        "{title}\n{:<32} {:>13} {:>13} {:>8} {:>8} {:>10} {:>10}",
        "query", "planned entr", "fixed entr", "p reads", "f reads", "planned ms", "fixed ms"
    );
    for r in results {
        println!(
            "{:<32} {:>13} {:>13} {:>8} {:>8} {:>10.3} {:>10.3}",
            r.query,
            r.planned.entries,
            r.fixed.entries,
            r.planned.reads,
            r.fixed.reads,
            r.planned.ns / 1e6,
            r.fixed.ns / 1e6,
        );
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let reps = args.reps() as usize;
    let out_path = args.get("out").unwrap_or("BENCH_plan.json").to_string();

    let db = XmlDb::build_in_memory(&pessimal_xml(40, 400)).map_err(|e| format!("build: {e}"))?;

    let queries = [PESSIMAL, "//a//filler", "//a[.//meta]//filler", "//nosuch"];
    let mut results = Vec::new();
    for q in queries {
        results.push(run_pair(&db, q, reps)?);
    }

    // ---- Path-summary section: the zero-support proof on the pessimal
    // corpus, the spine-pivot elevation on the skewed-regions corpus, and a
    // deep selective path on generated dblp.
    let deep_db = XmlDb::build_in_memory(&deep_selective_xml(3, 1000))
        .map_err(|e| format!("build deep: {e}"))?;
    let dblp = generate(DatasetKind::Dblp, 0.01);
    let dblp_db = XmlDb::build_in_memory(&dblp.xml).map_err(|e| format!("build dblp: {e}"))?;
    let path_results = vec![
        run_pair(&db, ZERO_SUPPORT, reps)?,
        run_pair(&deep_db, DEEP_SELECTIVE, reps)?,
        run_pair(&dblp_db, DBLP_DEEP, reps)?,
    ];

    // ---- Plan-cache hit path: one miss plans, every hit reuses the same
    // allocation.
    let cache = PlanCache::new(8);
    let key = normalize_query(PESSIMAL);
    let generation = db.commit_generation();
    let lookups = 1000usize;
    let mut misses = 0usize;
    let mut reused_allocation = true;
    let mut cached: Option<Arc<PlannedQuery>> = None;
    let t = Instant::now();
    for _ in 0..lookups {
        match cache.lookup(&key, generation).plan {
            Some(p) => {
                if let Some(first) = &cached {
                    reused_allocation &= Arc::ptr_eq(first, &p);
                }
            }
            None => {
                misses += 1;
                let p = Arc::new(
                    db.plan_query(PESSIMAL, QueryOptions::default())
                        .map_err(|e| format!("plan: {e}"))?,
                );
                cache.insert(key.clone(), generation, Arc::clone(&p));
                cached = Some(p);
            }
        }
    }
    let cache_ns_per_lookup = t.elapsed().as_nanos() as f64 / lookups as f64;

    print_table("fragment ordering (pessimal corpus)", &results);
    print_table(
        "path summary (zero-support / deep selective)",
        &path_results,
    );
    println!(
        "plan cache: {lookups} lookups, {misses} miss(es), \
         {cache_ns_per_lookup:.0} ns/lookup, reused_allocation={reused_allocation}"
    );

    // ---- Gates.
    let mut failures = Vec::new();
    for r in results.iter().chain(path_results.iter()) {
        if r.planned.entries > r.fixed.entries {
            failures.push(format!(
                "{}: planned side examined more entries ({} > {})",
                r.query, r.planned.entries, r.fixed.entries
            ));
        }
        if r.planned.deweys != r.fixed.deweys {
            failures.push(format!("{}: planned and fixed sides disagree", r.query));
        }
    }
    if let Some(r) = results.iter().find(|r| r.query == PESSIMAL) {
        if r.planned.entries >= r.fixed.entries {
            failures.push(format!(
                "pessimal query: planned order must examine strictly fewer entries \
                 (planned={} fixed={})",
                r.planned.entries, r.fixed.entries
            ));
        }
    }
    let mut path_failures = Vec::new();
    if let Some(r) = path_results.iter().find(|r| r.query == ZERO_SUPPORT) {
        if r.planned.entries != 0 || r.planned.reads != 0 {
            path_failures.push(format!(
                "zero-support query: planned side must touch nothing \
                 (entries={} physical_reads={})",
                r.planned.entries, r.planned.reads
            ));
        }
        if r.planned.matches != 0 {
            path_failures.push("zero-support query returned matches".to_string());
        }
        if r.fixed.entries == 0 {
            path_failures
                .push("zero-support query: tag-only baseline did no work to refute".to_string());
        }
    }
    if let Some(r) = path_results.iter().find(|r| r.query == DEEP_SELECTIVE) {
        if r.fixed.entries < 10 * r.planned.entries.max(1) {
            path_failures.push(format!(
                "deep selective path: planned side must examine >=10x fewer entries \
                 (planned={} fixed={})",
                r.planned.entries, r.fixed.entries
            ));
        }
        if r.planned.matches != 3 {
            path_failures.push(format!(
                "deep selective path: expected 3 matches, got {}",
                r.planned.matches
            ));
        }
    }
    if misses != 1 {
        failures.push(format!("plan cache: expected exactly 1 miss, saw {misses}"));
    }
    if !reused_allocation {
        failures.push("plan cache: a hit returned a different allocation".into());
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("plan".into())),
        ("reps", Json::Num(reps as f64)),
        ("node_count", Json::Num(db.node_count() as f64)),
        (
            "queries",
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "path_queries",
            Json::Arr(path_results.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "plan_cache",
            Json::obj(vec![
                ("lookups", Json::Num(lookups as f64)),
                ("misses", Json::Num(misses as f64)),
                ("ns_per_lookup", Json::Num(cache_ns_per_lookup.round())),
                ("reused_allocation", Json::Bool(reused_allocation)),
            ]),
        ),
        ("gates_passed", Json::Bool(failures.is_empty())),
        ("path_gates_passed", Json::Bool(path_failures.is_empty())),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    failures.extend(path_failures);
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}
