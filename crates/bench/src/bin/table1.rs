//! Regenerates **Table 1** of the paper: statistics of the five datasets
//! and the sizes of the string representation and the three B+ tree
//! indexes.
//!
//! ```text
//! cargo run -p nok-bench --release --bin table1 -- [--scale 0.05] [--datasets author,dblp]
//! ```

use nok_bench::{filter_datasets, Args};
use nok_core::{DocStats, XmlDb};
use nok_datagen::all_datasets;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    println!("Table 1: dataset statistics (synthetic mirrors, scale={scale})");
    println!("{}", DocStats::header());
    let datasets = filter_datasets(all_datasets(scale), &args.dataset_filter());
    for ds in datasets {
        let db = match XmlDb::build_in_memory(&ds.xml) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("{}: build failed: {e}", ds.kind.name());
                std::process::exit(1);
            }
        };
        let stats = match db.stats(ds.xml.len() as u64) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: stats failed: {e}", ds.kind.name());
                std::process::exit(1);
            }
        };
        println!("{}", stats.row(ds.kind.name()));
    }
    println!();
    println!(
        "(|tree| is the succinct string representation — 3 bytes per node; \
         compare its column against size for the paper's 1/20–1/100 claim.)"
    );
}
