//! Navigation-kernel benchmark: indexed cursor primitives (block summaries
//! + directory skip index) versus the retained `linear_*` oracles.
//!
//! ```text
//! cargo run -p nok-bench --release --bin nav_bench -- \
//!     [--scale 0.05] [--reps 3] [--out BENCH_nav.json]
//! ```
//!
//! Workloads:
//!
//! * `deepwide_*` — a synthetic document of many top-level siblings each
//!   carrying a deep single-child chain, built at a small page size so both
//!   layers of the navigation index matter. This is the workload the
//!   acceptance gate runs on: the sibling chain must examine ≥ 5× fewer
//!   entries through the indexed path, and no workload may load more pages
//!   than the linear oracle.
//! * one sibling-chain / subtree-close / descendant-scan triple per datagen
//!   dataset (reported, not gated — real corpora are mostly shallow).
//!
//! Both variants are measured identically: caches and counters are reset
//! before every repetition, the best wall time is kept, and the counters of
//! the final (cold) pass are reported.

use std::time::Instant;

use nok_bench::Args;
use nok_core::cursor::{
    descendants, first_child, following_sibling, linear_descendants, linear_following_sibling,
    linear_subtree_close, subtree_close,
};
use nok_core::{BuildOptions, CoreResult, NodeAddr, StructStore, TagDict};
use nok_datagen::all_datasets;
use nok_pager::{BufferPool, MemStorage};
use nok_serve::Json;
use nok_xml::Reader;
use std::sync::Arc;

type Store = StructStore<MemStorage>;
type SibFn = fn(&Store, NodeAddr) -> CoreResult<Option<NodeAddr>>;
type CloseFn = fn(&Store, NodeAddr) -> CoreResult<NodeAddr>;

/// Page size for every store in this bench: small enough that deep corpora
/// span many pages, so directory behavior is visible.
const PAGE_SIZE: usize = 256;

fn main() {
    if let Err(e) = run() {
        eprintln!("nav_bench: {e}");
        std::process::exit(1);
    }
}

fn build_store(xml: &str) -> Result<Store, String> {
    let pool = Arc::new(BufferPool::new(MemStorage::with_page_size(PAGE_SIZE)));
    let mut dict = TagDict::new();
    StructStore::build(
        pool,
        Reader::content_only(xml),
        &mut dict,
        BuildOptions::default(),
        &mut (),
    )
    .map_err(|e| format!("build: {e}"))
}

/// The deep/wide gate corpus: `siblings` top-level chains, each `depth`
/// nodes deep, so every sibling hop crosses several mostly-deep pages.
fn deepwide_xml(siblings: usize, depth: usize) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..siblings {
        xml.push_str("<s>");
        for _ in 0..depth {
            xml.push_str("<d>");
        }
        for _ in 0..depth {
            xml.push_str("</d>");
        }
        xml.push_str("</s>");
    }
    xml.push_str("</r>");
    xml
}

struct Measure {
    ns_per_op: f64,
    ops: u64,
    entries: u64,
    dir_entries: u64,
    reads: u64,
}

/// Run `work` `reps` times from a cold cache, keeping the best wall time
/// and the per-pass counters.
fn measure(
    store: &Store,
    reps: usize,
    work: &dyn Fn(&Store) -> Result<u64, String>,
) -> Result<Measure, String> {
    let mut best = f64::INFINITY;
    let mut ops = 0u64;
    for _ in 0..reps.max(1) {
        store.invalidate_decoded(None);
        store
            .pool()
            .clear_cache()
            .map_err(|e| format!("clear: {e}"))?;
        store.pool().stats().reset();
        let t = Instant::now();
        ops = work(store)?;
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    let st = store.pool().stats();
    Ok(Measure {
        ns_per_op: if ops == 0 { 0.0 } else { best / ops as f64 },
        ops,
        entries: st.entries_examined(),
        dir_entries: st.dir_entries_examined(),
        reads: st.physical_reads(),
    })
}

fn root_of(store: &Store) -> Result<NodeAddr, String> {
    store.root().ok_or_else(|| "empty store".into())
}

/// Walk the whole top-level sibling chain; ops = hops.
fn sibling_chain(store: &Store, sib: SibFn) -> Result<u64, String> {
    let root = root_of(store)?;
    let mut cur = first_child(store, root)
        .map_err(|e| format!("first_child: {e}"))?
        .ok_or("root has no children")?;
    let mut hops = 0u64;
    while let Some(next) = sib(store, cur).map_err(|e| format!("sibling: {e}"))? {
        cur = next;
        hops += 1;
    }
    Ok(hops)
}

/// Close every top-level record's subtree; ops = records closed.
fn close_records(store: &Store, close: CloseFn, cap: usize) -> Result<u64, String> {
    let root = root_of(store)?;
    let mut cur = first_child(store, root)
        .map_err(|e| format!("first_child: {e}"))?
        .ok_or("root has no children")?;
    let mut ops = 0u64;
    loop {
        close(store, cur).map_err(|e| format!("close: {e}"))?;
        ops += 1;
        if ops as usize >= cap {
            break;
        }
        match following_sibling(store, cur).map_err(|e| format!("sibling: {e}"))? {
            Some(next) => cur = next,
            None => break,
        }
    }
    Ok(ops)
}

/// `//*`-style scan: enumerate every descendant of the root; ops = nodes.
fn descendant_scan(store: &Store, linear: bool) -> Result<u64, String> {
    let root = root_of(store)?;
    let mut n = 0u64;
    if linear {
        for item in linear_descendants(store, root).map_err(|e| format!("descendants: {e}"))? {
            item.map_err(|e| format!("descendants: {e}"))?;
            n += 1;
        }
    } else {
        for item in descendants(store, root).map_err(|e| format!("descendants: {e}"))? {
            item.map_err(|e| format!("descendants: {e}"))?;
            n += 1;
        }
    }
    Ok(n)
}

struct WorkloadResult {
    name: String,
    linear: Measure,
    indexed: Measure,
}

impl WorkloadResult {
    fn entries_ratio(&self) -> f64 {
        if self.indexed.entries == 0 {
            f64::INFINITY
        } else {
            self.linear.entries as f64 / self.indexed.entries as f64
        }
    }

    fn to_json(&self) -> Json {
        let side = |m: &Measure| {
            Json::obj(vec![
                ("ns_per_op", Json::Num((m.ns_per_op * 10.0).round() / 10.0)),
                ("ops", Json::Num(m.ops as f64)),
                ("entries_examined", Json::Num(m.entries as f64)),
                ("dir_entries_examined", Json::Num(m.dir_entries as f64)),
                ("physical_reads", Json::Num(m.reads as f64)),
            ])
        };
        let ratio = self.entries_ratio();
        Json::obj(vec![
            ("workload", Json::Str(self.name.clone())),
            ("linear", side(&self.linear)),
            ("indexed", side(&self.indexed)),
            (
                "entries_ratio",
                Json::Num(if ratio.is_finite() {
                    (ratio * 100.0).round() / 100.0
                } else {
                    -1.0
                }),
            ),
        ])
    }
}

fn run_triple(
    store: &Store,
    label: &str,
    reps: usize,
    close_cap: usize,
    out: &mut Vec<WorkloadResult>,
) -> Result<(), String> {
    out.push(WorkloadResult {
        name: format!("{label}_sibling_chain"),
        linear: measure(store, reps, &|s| sibling_chain(s, linear_following_sibling))?,
        indexed: measure(store, reps, &|s| sibling_chain(s, following_sibling))?,
    });
    out.push(WorkloadResult {
        name: format!("{label}_subtree_close"),
        linear: measure(store, reps, &|s| {
            close_records(s, linear_subtree_close, close_cap)
        })?,
        indexed: measure(store, reps, &|s| close_records(s, subtree_close, close_cap))?,
    });
    out.push(WorkloadResult {
        name: format!("{label}_descendant_scan"),
        linear: measure(store, reps, &|s| descendant_scan(s, true))?,
        indexed: measure(store, reps, &|s| descendant_scan(s, false))?,
    });
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let scale = args.scale();
    let reps = args.reps() as usize;
    let out_path = args.get("out").unwrap_or("BENCH_nav.json").to_string();

    let mut results: Vec<WorkloadResult> = Vec::new();

    // Gate corpus.
    let deepwide = build_store(&deepwide_xml(300, 100))?;
    run_triple(&deepwide, "deepwide", reps, usize::MAX, &mut results)?;

    // The five paper datasets (reported, not gated).
    for ds in all_datasets(scale) {
        let store = build_store(&ds.xml)?;
        run_triple(&store, ds.kind.name(), reps, 500, &mut results)?;
    }

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12} {:>7} {:>6} {:>6}",
        "workload",
        "lin ns/op",
        "idx ns/op",
        "lin entries",
        "idx entries",
        "ratio",
        "lin rd",
        "idx rd"
    );
    for r in &results {
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>12} {:>12} {:>7.1} {:>6} {:>6}",
            r.name,
            r.linear.ns_per_op,
            r.indexed.ns_per_op,
            r.linear.entries,
            r.indexed.entries,
            r.entries_ratio(),
            r.linear.reads,
            r.indexed.reads,
        );
    }

    // ---- Acceptance gates.
    let mut failures = Vec::new();
    for r in &results {
        if r.indexed.reads > r.linear.reads {
            failures.push(format!(
                "{}: indexed path loaded more pages ({} > {})",
                r.name, r.indexed.reads, r.linear.reads
            ));
        }
    }
    if let Some(r) = results.iter().find(|r| r.name == "deepwide_sibling_chain") {
        if r.entries_ratio() < 5.0 {
            failures.push(format!(
                "deepwide_sibling_chain: entries ratio {:.2} < 5.0 (linear={} indexed={})",
                r.entries_ratio(),
                r.linear.entries,
                r.indexed.entries
            ));
        }
    } else {
        failures.push("deepwide_sibling_chain workload missing".into());
    }

    let report = Json::obj(vec![
        ("bench", Json::Str("nav".into())),
        ("scale", Json::Num(scale)),
        ("reps", Json::Num(reps as f64)),
        ("page_size", Json::Num(PAGE_SIZE as f64)),
        (
            "workloads",
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        ),
        ("gates_passed", Json::Bool(failures.is_empty())),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}
