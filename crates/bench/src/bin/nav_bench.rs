//! Navigation-kernel benchmark: indexed cursor primitives (block summaries
//! + directory skip index) versus the retained `linear_*` oracles.
//!
//! ```text
//! cargo run -p nok-bench --release --bin nav_bench -- \
//!     [--scale 0.05] [--reps 3] [--out BENCH_nav.json]
//! ```
//!
//! Workloads:
//!
//! * `deepwide_*` — a synthetic document of many top-level siblings each
//!   carrying a deep single-child chain, built at a small page size so both
//!   layers of the navigation index matter. This is the workload the
//!   wall-clock acceptance gates run on: the sibling chain must examine
//!   ≥ 5× fewer entries through the indexed path, the indexed path must not
//!   be slower than the linear oracle beyond `NS_TOL`, and the succinct
//!   backend must keep up with classic.
//! * one sibling-chain / subtree-close / descendant-scan triple per datagen
//!   dataset. Deterministic gates (no workload may load more pages than the
//!   linear oracle) apply here too, but wall-clock comparisons are recorded
//!   as warnings only: real corpora are mostly shallow, and the passes are
//!   microseconds long — a single scheduler preemption outweighs `NS_TOL`.
//!
//! Both variants are measured identically: caches and counters are reset
//! before every repetition, the best wall time is kept, and the counters of
//! the final (cold) pass are reported.

use std::time::Instant;

use nok_bench::Args;
use nok_core::cursor::{
    descendants, first_child, following_sibling, linear_descendants, linear_following_sibling,
    linear_subtree_close, subtree_close,
};
use nok_core::{BackendKind, BuildOptions, CoreResult, NodeAddr, StructStore, TagDict};
use nok_datagen::all_datasets;
use nok_pager::{BufferPool, MemStorage};
use nok_serve::Json;
use nok_xml::Reader;
use std::sync::Arc;

type Store = StructStore<MemStorage>;
type SibFn = fn(&Store, NodeAddr) -> CoreResult<Option<NodeAddr>>;
type CloseFn = fn(&Store, NodeAddr) -> CoreResult<NodeAddr>;

/// Page size for every store in this bench: small enough that deep corpora
/// span many pages, so directory behavior is visible.
const PAGE_SIZE: usize = 256;

/// Noise tolerance for wall-clock gates: best-of-reps timings still jitter,
/// so "not slower" means "within 40%". Shared CI boxes (including
/// single-core ones, where the runner itself competes for the CPU) swing
/// best-of-reps ratios by ±25% between runs; the wall gate exists to catch
/// gross pathologies — an indexed walk that loses outright to the linear
/// scan — while the deterministic gates (entries ratio, page reads,
/// structure bytes) carry the fine-grained regression checks.
const NS_TOL: f64 = 1.4;

fn main() {
    if let Err(e) = run() {
        eprintln!("nav_bench: {e}");
        std::process::exit(1);
    }
}

fn build_store(xml: &str, backend: BackendKind) -> Result<Store, String> {
    let pool = Arc::new(BufferPool::new(MemStorage::with_page_size(PAGE_SIZE)));
    let mut dict = TagDict::new();
    StructStore::build(
        pool,
        Reader::content_only(xml),
        &mut dict,
        BuildOptions::with_backend(backend),
        &mut (),
    )
    .map_err(|e| format!("build: {e}"))
}

/// The deep/wide gate corpus: `siblings` top-level chains, each `depth`
/// nodes deep, so every sibling hop crosses several mostly-deep pages.
fn deepwide_xml(siblings: usize, depth: usize) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..siblings {
        xml.push_str("<s>");
        for _ in 0..depth {
            xml.push_str("<d>");
        }
        for _ in 0..depth {
            xml.push_str("</d>");
        }
        xml.push_str("</s>");
    }
    xml.push_str("</r>");
    xml
}

#[derive(Clone, Copy, Default)]
struct Measure {
    ns_per_op: f64,
    ops: u64,
    entries: u64,
    dir_entries: u64,
    reads: u64,
}

/// One cold pass of `work`: caches and counters reset, wall time and the
/// pass's counters returned.
fn cold_pass(
    store: &Store,
    work: &dyn Fn(&Store) -> Result<u64, String>,
) -> Result<(f64, Measure), String> {
    store.invalidate_decoded(None);
    store
        .pool()
        .clear_cache()
        .map_err(|e| format!("clear: {e}"))?;
    store.pool().stats().reset();
    let t = Instant::now();
    let ops = work(store)?;
    let ns = t.elapsed().as_nanos() as f64;
    let st = store.pool().stats();
    Ok((
        ns,
        Measure {
            ns_per_op: 0.0,
            ops,
            entries: st.entries_examined(),
            dir_entries: st.dir_entries_examined(),
            reads: st.physical_reads(),
        },
    ))
}

/// Measure the linear and indexed variants of one workload on both backend
/// stores, *interleaved*: every rep runs all four passes back to back, so a
/// machine-load drift hits every variant equally instead of biasing
/// whichever side was measured later. Best wall time per variant is kept;
/// counters come from the (deterministic) final pass.
fn measure_quad(
    stores: &[Store; 2],
    reps: usize,
    lin: &dyn Fn(&Store) -> Result<u64, String>,
    idx: &dyn Fn(&Store) -> Result<u64, String>,
) -> Result<[(Measure, Measure); 2], String> {
    let mut best = [[f64::INFINITY; 2]; 2];
    let mut meas = [[Measure::default(); 2]; 2];
    for _ in 0..reps.max(1) {
        for (s, store) in stores.iter().enumerate() {
            for (v, work) in [lin, idx].into_iter().enumerate() {
                let (ns, m) = cold_pass(store, work)?;
                best[s][v] = best[s][v].min(ns);
                meas[s][v] = m;
            }
        }
    }
    let finish = |m: &mut Measure, ns: f64| {
        m.ns_per_op = if m.ops == 0 { 0.0 } else { ns / m.ops as f64 };
    };
    for s in 0..2 {
        for v in 0..2 {
            finish(&mut meas[s][v], best[s][v]);
        }
    }
    Ok([(meas[0][0], meas[0][1]), (meas[1][0], meas[1][1])])
}

fn root_of(store: &Store) -> Result<NodeAddr, String> {
    store.root().ok_or_else(|| "empty store".into())
}

/// Walk the whole top-level sibling chain; ops = hops.
fn sibling_chain(store: &Store, sib: SibFn) -> Result<u64, String> {
    let root = root_of(store)?;
    let mut cur = first_child(store, root)
        .map_err(|e| format!("first_child: {e}"))?
        .ok_or("root has no children")?;
    let mut hops = 0u64;
    while let Some(next) = sib(store, cur).map_err(|e| format!("sibling: {e}"))? {
        cur = next;
        hops += 1;
    }
    Ok(hops)
}

/// Close every top-level record's subtree; ops = records closed.
fn close_records(store: &Store, close: CloseFn, cap: usize) -> Result<u64, String> {
    let root = root_of(store)?;
    let mut cur = first_child(store, root)
        .map_err(|e| format!("first_child: {e}"))?
        .ok_or("root has no children")?;
    let mut ops = 0u64;
    loop {
        close(store, cur).map_err(|e| format!("close: {e}"))?;
        ops += 1;
        if ops as usize >= cap {
            break;
        }
        match following_sibling(store, cur).map_err(|e| format!("sibling: {e}"))? {
            Some(next) => cur = next,
            None => break,
        }
    }
    Ok(ops)
}

/// `//*`-style scan: enumerate every descendant of the root; ops = nodes.
fn descendant_scan(store: &Store, linear: bool) -> Result<u64, String> {
    let root = root_of(store)?;
    let mut n = 0u64;
    if linear {
        for item in linear_descendants(store, root).map_err(|e| format!("descendants: {e}"))? {
            item.map_err(|e| format!("descendants: {e}"))?;
            n += 1;
        }
    } else {
        for item in descendants(store, root).map_err(|e| format!("descendants: {e}"))? {
            item.map_err(|e| format!("descendants: {e}"))?;
            n += 1;
        }
    }
    Ok(n)
}

struct WorkloadResult {
    name: String,
    linear: Measure,
    indexed: Measure,
}

impl WorkloadResult {
    fn entries_ratio(&self) -> f64 {
        if self.indexed.entries == 0 {
            f64::INFINITY
        } else {
            self.linear.entries as f64 / self.indexed.entries as f64
        }
    }

    fn to_json(&self) -> Json {
        let side = |m: &Measure| {
            Json::obj(vec![
                ("ns_per_op", Json::Num((m.ns_per_op * 10.0).round() / 10.0)),
                ("ops", Json::Num(m.ops as f64)),
                ("entries_examined", Json::Num(m.entries as f64)),
                ("dir_entries_examined", Json::Num(m.dir_entries as f64)),
                ("physical_reads", Json::Num(m.reads as f64)),
            ])
        };
        let ratio = self.entries_ratio();
        Json::obj(vec![
            ("workload", Json::Str(self.name.clone())),
            ("linear", side(&self.linear)),
            ("indexed", side(&self.indexed)),
            (
                "entries_ratio",
                Json::Num(if ratio.is_finite() {
                    (ratio * 100.0).round() / 100.0
                } else {
                    -1.0
                }),
            ),
        ])
    }
}

/// Run the three workload kinds on both backend stores of one corpus,
/// appending per-backend results.
fn run_triple(
    stores: &[Store; 2],
    label: &str,
    reps: usize,
    close_cap: usize,
    out: &mut [Vec<WorkloadResult>; 2],
) -> Result<(), String> {
    let triples: [(
        &str,
        Box<dyn Fn(&Store) -> Result<u64, String>>,
        Box<dyn Fn(&Store) -> Result<u64, String>>,
    ); 3] = [
        (
            "sibling_chain",
            Box::new(|s: &Store| sibling_chain(s, linear_following_sibling)),
            Box::new(|s: &Store| sibling_chain(s, following_sibling)),
        ),
        (
            "subtree_close",
            Box::new(move |s: &Store| close_records(s, linear_subtree_close, close_cap)),
            Box::new(move |s: &Store| close_records(s, subtree_close, close_cap)),
        ),
        (
            "descendant_scan",
            Box::new(|s: &Store| descendant_scan(s, true)),
            Box::new(|s: &Store| descendant_scan(s, false)),
        ),
    ];
    for (suffix, lin, idx) in &triples {
        let sides = measure_quad(stores, reps, lin.as_ref(), idx.as_ref())?;
        for (b, (linear, indexed)) in sides.into_iter().enumerate() {
            out[b].push(WorkloadResult {
                name: format!("{label}_{suffix}"),
                linear,
                indexed,
            });
        }
    }
    Ok(())
}

struct BackendRun {
    kind: BackendKind,
    /// Header + content bytes across the deepwide gate corpus's chain.
    deepwide_bytes: u64,
    /// Same, summed over the five paper datasets.
    dataset_bytes: u64,
    results: Vec<WorkloadResult>,
}

const BACKENDS: [BackendKind; 2] = [BackendKind::Classic, BackendKind::Succinct];

fn run_all(scale: f64, reps: usize) -> Result<[BackendRun; 2], String> {
    let mut results: [Vec<WorkloadResult>; 2] = [Vec::new(), Vec::new()];
    let sbytes = |s: &Store| {
        s.structure_bytes()
            .map_err(|e| format!("structure_bytes: {e}"))
    };

    // Gate corpus.
    let xml = deepwide_xml(300, 100);
    let deepwide = [
        build_store(&xml, BACKENDS[0])?,
        build_store(&xml, BACKENDS[1])?,
    ];
    let deepwide_bytes = [sbytes(&deepwide[0])?, sbytes(&deepwide[1])?];
    run_triple(&deepwide, "deepwide", reps, usize::MAX, &mut results)?;
    drop(deepwide);

    // The five paper datasets (reported; gated only on reads and ns/op).
    let mut dataset_bytes = [0u64; 2];
    for ds in all_datasets(scale) {
        let stores = [
            build_store(&ds.xml, BACKENDS[0])?,
            build_store(&ds.xml, BACKENDS[1])?,
        ];
        dataset_bytes[0] += sbytes(&stores[0])?;
        dataset_bytes[1] += sbytes(&stores[1])?;
        run_triple(&stores, ds.kind.name(), reps, 500, &mut results)?;
    }

    let [classic_results, succinct_results] = results;
    Ok([
        BackendRun {
            kind: BACKENDS[0],
            deepwide_bytes: deepwide_bytes[0],
            dataset_bytes: dataset_bytes[0],
            results: classic_results,
        },
        BackendRun {
            kind: BACKENDS[1],
            deepwide_bytes: deepwide_bytes[1],
            dataset_bytes: dataset_bytes[1],
            results: succinct_results,
        },
    ])
}

fn run() -> Result<(), String> {
    let args = Args::parse();
    let scale = args.scale();
    let reps = args.reps() as usize;
    let out_path = args.get("out").unwrap_or("BENCH_nav.json").to_string();

    let runs = run_all(scale, reps)?;

    for run in &runs {
        println!(
            "== backend {} (deepwide {} B, datasets {} B) ==",
            run.kind.name(),
            run.deepwide_bytes,
            run.dataset_bytes
        );
        println!(
            "{:<28} {:>10} {:>10} {:>12} {:>12} {:>7} {:>6} {:>6}",
            "workload",
            "lin ns/op",
            "idx ns/op",
            "lin entries",
            "idx entries",
            "ratio",
            "lin rd",
            "idx rd"
        );
        for r in &run.results {
            println!(
                "{:<28} {:>10.1} {:>10.1} {:>12} {:>12} {:>7.1} {:>6} {:>6}",
                r.name,
                r.linear.ns_per_op,
                r.indexed.ns_per_op,
                r.linear.entries,
                r.indexed.entries,
                r.entries_ratio(),
                r.linear.reads,
                r.indexed.reads,
            );
        }
    }

    // ---- Acceptance gates. Deterministic counters (pages read, entries
    // examined, structure bytes) gate on every workload; wall-clock gates
    // only on the deepwide corpus, whose passes run long enough (tens of
    // milliseconds) to clear scheduler noise. The per-dataset triples time
    // microsecond passes where a single preemption outweighs NS_TOL, so
    // there the same wall-clock checks are recorded as warnings instead.
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    for run in &runs {
        let b = run.kind.name();
        for r in &run.results {
            if r.indexed.reads > r.linear.reads {
                failures.push(format!(
                    "{b}/{}: indexed path loaded more pages ({} > {})",
                    r.name, r.indexed.reads, r.linear.reads
                ));
            }
            // The regression this bench previously let through: an indexed
            // walk that wins on entries examined but loses wall-clock.
            if r.indexed.ns_per_op > r.linear.ns_per_op * NS_TOL {
                let msg = format!(
                    "{b}/{}: indexed slower than linear ({:.1} > {:.1} ns/op)",
                    r.name, r.indexed.ns_per_op, r.linear.ns_per_op
                );
                if r.name.starts_with("deepwide") {
                    failures.push(msg);
                } else {
                    warnings.push(msg);
                }
            }
        }
        match run
            .results
            .iter()
            .find(|r| r.name == "deepwide_sibling_chain")
        {
            Some(r) if r.entries_ratio() < 5.0 => failures.push(format!(
                "{b}/deepwide_sibling_chain: entries ratio {:.2} < 5.0 (linear={} indexed={})",
                r.entries_ratio(),
                r.linear.entries,
                r.indexed.entries
            )),
            Some(_) => {}
            None => failures.push(format!("{b}/deepwide_sibling_chain workload missing")),
        }
    }
    let [classic, succinct] = &runs;
    if succinct.deepwide_bytes * 2 > classic.deepwide_bytes {
        failures.push(format!(
            "succinct structure not >= 2x smaller on deepwide ({} vs {} bytes)",
            succinct.deepwide_bytes, classic.deepwide_bytes
        ));
    }
    // The succinct backend must not lose to classic: gated on the deepwide
    // corpus, warned on the microsecond-scale dataset triples.
    for (c, s) in classic.results.iter().zip(&succinct.results) {
        if s.indexed.ns_per_op > c.indexed.ns_per_op * NS_TOL {
            let msg = format!(
                "{}: succinct indexed slower than classic ({:.1} > {:.1} ns/op)",
                s.name, s.indexed.ns_per_op, c.indexed.ns_per_op
            );
            if s.name.starts_with("deepwide") {
                failures.push(msg);
            } else {
                warnings.push(msg);
            }
        }
    }

    let backend_json = |run: &BackendRun| {
        Json::obj(vec![
            ("backend", Json::Str(run.kind.name().into())),
            ("structure_bytes", Json::Num(run.deepwide_bytes as f64)),
            (
                "dataset_structure_bytes",
                Json::Num(run.dataset_bytes as f64),
            ),
            (
                "workloads",
                Json::Arr(run.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    };
    let report = Json::obj(vec![
        ("bench", Json::Str("nav".into())),
        ("scale", Json::Num(scale)),
        ("reps", Json::Num(reps as f64)),
        ("page_size", Json::Num(PAGE_SIZE as f64)),
        (
            "backends",
            Json::Arr(runs.iter().map(backend_json).collect()),
        ),
        (
            "structure_bytes_ratio",
            Json::Num(
                (classic.deepwide_bytes as f64 / succinct.deepwide_bytes.max(1) as f64 * 100.0)
                    .round()
                    / 100.0,
            ),
        ),
        (
            "wall_warnings",
            Json::Arr(warnings.iter().map(|w| Json::Str(w.clone())).collect()),
        ),
        ("gates_passed", Json::Bool(failures.is_empty())),
    ]);
    std::fs::write(&out_path, format!("{}\n", report.to_string_compact()))
        .map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    for w in &warnings {
        println!("nav_bench warning (not gated): {w}");
    }

    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}
