//! Ablation **A2**: update cost. The paper argues (§4.2) that the paged
//! string representation is "more amenable to update" than interval
//! encoding, where an insertion renumbers every element to its right. We
//! measure:
//!
//! * NoK `insert_last_child` / `delete_subtree` — incremental, page-local
//!   structure edits plus index maintenance;
//! * the interval-encoding equivalent — a full re-encode of the document
//!   (what DI-style interval labels force in the worst case).
//!
//! ```text
//! cargo run -p nok-bench --release --bin ablation_update -- [--scale 0.05] [--ops 50]
//! ```

use std::time::Instant;

use nok_baselines::encode::IntervalDoc;
use nok_bench::Args;
use nok_core::{Dewey, XmlDb};
use nok_datagen::{generate, DatasetKind};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let ops: usize = args.get("ops").and_then(|s| s.parse().ok()).unwrap_or(50);

    let ds = generate(DatasetKind::Dblp, scale);
    println!(
        "A2: update cost on {} ({} records, {:.1} MB), {ops} operations",
        ds.kind.name(),
        ds.records,
        ds.xml.len() as f64 / 1e6
    );

    // --- NoK incremental updates.
    let mut db = XmlDb::build_in_memory(&ds.xml).expect("build");
    let fragment = r#"<article mdate="2004-01-01" key="article/new"><author>New Author</author><title>inserted record</title><year>2004</year></article>"#;
    let t = Instant::now();
    let mut inserted: Vec<Dewey> = Vec::new();
    for _ in 0..ops {
        inserted.push(
            db.insert_last_child(&Dewey::root(), fragment)
                .expect("insert"),
        );
    }
    let insert_time = t.elapsed();
    let t = Instant::now();
    for d in inserted.iter().rev() {
        db.delete_subtree(d).expect("delete");
    }
    let delete_time = t.elapsed();
    println!(
        "NoK:      insert {:.2} ms/op, delete {:.2} ms/op (page-local + index upkeep)",
        insert_time.as_secs_f64() * 1e3 / ops as f64,
        delete_time.as_secs_f64() * 1e3 / ops as f64
    );

    // --- Interval encoding: one insert forces a full re-encode (global
    // renumbering). Measure a single rebuild and report it per op.
    let t = Instant::now();
    let rebuilt = IntervalDoc::parse(&ds.xml).expect("encode");
    let rebuild_time = t.elapsed();
    println!(
        "Interval: re-encode {:.2} ms/op ({} elements renumbered per update)",
        rebuild_time.as_secs_f64() * 1e3,
        rebuilt.len()
    );
    let speedup = rebuild_time.as_secs_f64() / (insert_time.as_secs_f64() / ops as f64).max(1e-9);
    println!("NoK insert vs interval re-encode: {speedup:.0}x");

    // Sanity: the store still answers queries correctly after the churn.
    let n = db.query("/dblp/article/title").expect("query").len();
    println!("(post-churn query check: {n} article titles)");
}
