//! Regenerates the §4.2 measured claims:
//!
//! * **C1** — "the string representation of the tree structure is only
//!   about 1/20 to 1/100 of the size of the XML document";
//! * **C2** — the page-capacity formula `C = (B(1−r) − V − I) / (S + P)`
//!   gives ≈1000–3000 nodes per page for reasonable parameters.
//!
//! ```text
//! cargo run -p nok-bench --release --bin compression -- [--scale 0.05]
//! ```

use nok_bench::{filter_datasets, Args};
use nok_core::page;
use nok_core::XmlDb;
use nok_datagen::all_datasets;

fn main() {
    let args = Args::parse();
    let scale = args.scale();

    println!("C1: structure compression ratio (document bytes per string byte)");
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "data set", "xml bytes", "|tree| bytes", "ratio"
    );
    for ds in filter_datasets(all_datasets(scale), &args.dataset_filter()) {
        let db = XmlDb::build_in_memory(&ds.xml).expect("build");
        let stats = db.stats(ds.xml.len() as u64).expect("stats");
        println!(
            "{:<10} {:>12} {:>12} {:>7.1}x",
            ds.kind.name(),
            stats.xml_bytes,
            stats.tree_bytes,
            stats.structure_ratio()
        );
    }

    println!();
    println!("C2: page capacity C = (B(1-r) - V - I) / (S + P)  [paper: ~1000-3000]");
    println!("{:>8} {:>8} {:>8}", "B", "r", "C");
    for &page_size in &[2048usize, 4096, 8192, 16384] {
        for &reserve in &[0.0, 0.1, 0.2, 0.3] {
            println!(
                "{:>8} {:>8.1} {:>8}",
                page_size,
                reserve,
                page::capacity(page_size, reserve)
            );
        }
    }
    println!();
    println!(
        "(paper's example: B=4096, r=0.2 -> C = {}; \"the number of nodes in a \
         page is around 1000\")",
        page::capacity(4096, 0.2)
    );
}
