//! # nok-bench
//!
//! The benchmark harness that regenerates the paper's tables:
//!
//! * `table1` — dataset statistics (paper Table 1),
//! * `table3` — running times of DI / NavDOM (X-Hive substitute) /
//!   TwigStack / NoK over the Q1–Q12 workload on all five datasets,
//! * `compression` — the §4.2 claims (string-size ratio, page capacity C),
//! * `ablation_index` — starting-point strategies (scan / tag / value),
//! * `ablation_update` — subtree insert/delete vs. interval re-encoding,
//! * `ablation_stream` — streaming NoK throughput,
//!
//! plus Criterion microbenchmarks under `benches/`.

use std::time::{Duration, Instant};

use nok_baselines::di::DiEngine;
use nok_baselines::navdom::NavDomEngine;
use nok_baselines::twigstack::TwigStackEngine;
use nok_baselines::Engine;
use nok_core::{CoreResult, Dewey, XmlDb};
use nok_datagen::Dataset;
use nok_pager::MemStorage;

/// The NoK system wrapped as an [`Engine`].
pub struct NokEngine {
    db: XmlDb<MemStorage>,
}

impl NokEngine {
    /// Build the full NoK storage (store + indexes) from XML.
    pub fn new(xml: &str) -> CoreResult<NokEngine> {
        Ok(NokEngine {
            db: XmlDb::build_in_memory(xml)?,
        })
    }

    /// Access the underlying database.
    pub fn db(&self) -> &XmlDb<MemStorage> {
        &self.db
    }
}

impl Engine for NokEngine {
    fn name(&self) -> &'static str {
        "NoK"
    }

    fn eval(&self, path: &str) -> CoreResult<Vec<Dewey>> {
        Ok(self.db.query(path)?.into_iter().map(|m| m.dewey).collect())
    }
}

/// All four engines loaded with one document.
pub struct EngineSet {
    /// DI baseline.
    pub di: DiEngine,
    /// X-Hive substitute.
    pub navdom: NavDomEngine,
    /// TwigStack baseline.
    pub twigstack: TwigStackEngine,
    /// The paper's system.
    pub nok: NokEngine,
}

impl EngineSet {
    /// Build every engine from the same XML.
    pub fn build(xml: &str) -> CoreResult<EngineSet> {
        Ok(EngineSet {
            di: DiEngine::new(xml)?,
            navdom: NavDomEngine::new(xml)?,
            twigstack: TwigStackEngine::new(xml)?,
            nok: NokEngine::new(xml)?,
        })
    }

    /// The engines in the paper's Table 3 row order.
    pub fn all(&self) -> [&dyn Engine; 4] {
        [&self.di, &self.navdom, &self.twigstack, &self.nok]
    }
}

/// Time one query: average of `reps` runs (the paper averages three).
/// Returns `None` when the engine rejects the query (an "NI" cell).
pub fn time_query(engine: &dyn Engine, path: &str, reps: u32) -> Option<Duration> {
    // Warm-up + support probe.
    if engine.eval(path).is_err() {
        return None;
    }
    let start = Instant::now();
    for _ in 0..reps {
        let _ = engine.eval(path);
    }
    Some(start.elapsed() / reps)
}

/// Format a duration in seconds with millisecond resolution, like Table 3.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Parse `--flag value` style arguments (tiny, dependency-free).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Presence of a bare `--name` flag.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.contains(&flag)
    }

    /// `--scale` (default 0.05 — keeps full Table 3 runs in minutes).
    pub fn scale(&self) -> f64 {
        self.get("scale")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.05)
    }

    /// `--reps` (default 3, like the paper).
    pub fn reps(&self) -> u32 {
        self.get("reps").and_then(|s| s.parse().ok()).unwrap_or(3)
    }

    /// `--datasets a,b,c` filter.
    pub fn dataset_filter(&self) -> Option<Vec<String>> {
        self.get("datasets")
            .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
    }
}

/// Apply the dataset filter to a generated list.
pub fn filter_datasets(datasets: Vec<Dataset>, filter: &Option<Vec<String>>) -> Vec<Dataset> {
    match filter {
        None => datasets,
        Some(names) => datasets
            .into_iter()
            .filter(|d| names.iter().any(|n| n == d.kind.name()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_set_agrees_on_a_small_doc() {
        let xml = r#"<bib><book year="1994"><author><last>Stevens</last></author>
                     <price>65.95</price></book>
                     <book year="2000"><author><last>Suciu</last></author>
                     <price>39.95</price></book></bib>"#;
        let set = EngineSet::build(xml).unwrap();
        for q in [
            "/bib/book",
            r#"//book[author/last="Stevens"]"#,
            "//book[price<50]/price",
        ] {
            let reference: Vec<String> = set
                .nok
                .eval(q)
                .unwrap()
                .iter()
                .map(|d| d.to_string())
                .collect();
            for e in set.all() {
                let got: Vec<String> = e.eval(q).unwrap().iter().map(|d| d.to_string()).collect();
                assert_eq!(got, reference, "{} on {q}", e.name());
            }
        }
    }

    #[test]
    fn time_query_reports_unsupported_as_none() {
        let set = EngineSet::build("<a><b/><c/></a>").unwrap();
        // TwigStack rejects ordered axes → NI cell.
        assert!(time_query(&set.twigstack, "/a/b/following-sibling::c", 1).is_none());
        assert!(time_query(&set.nok, "/a/b/following-sibling::c", 1).is_some());
    }

    #[test]
    fn fmt_and_args_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.5000");
        let args = Args {
            raw: vec!["--scale".into(), "0.2".into(), "--verify".into()],
        };
        assert_eq!(args.scale(), 0.2);
        assert!(args.has("verify"));
        assert!(!args.has("missing"));
        assert_eq!(args.reps(), 3);
    }
}
