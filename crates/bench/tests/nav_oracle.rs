//! The block-summary/skip-index navigation path must be indistinguishable
//! from the naive per-entry oracle (`cursor::linear_*`) on every node of
//! all five datagen datasets — the corpora exercise bushy, deep, and
//! recursive shapes at page boundaries the synthetic unit tests don't hit.

use std::sync::Arc;

use nok_core::cursor::{
    following_sibling, linear_following_sibling, linear_next_entry, linear_subtree_close,
    next_entry, subtree_close, DocScan, ScanItem,
};
use nok_core::{BuildOptions, CoreResult, StructStore, TagDict};
use nok_datagen::all_datasets;
use nok_pager::{BufferPool, MemStorage};
use nok_xml::Reader;

/// Small pages so every corpus spans many of them.
const PAGE_SIZE: usize = 256;

/// Per-dataset cap on verified nodes (stride-sampled past it) so the debug
/// test binary stays fast; the stride still covers the whole document.
const MAX_CHECKS: usize = 4000;

#[test]
fn indexed_navigation_matches_linear_oracle_on_all_datasets() {
    for ds in all_datasets(0.01) {
        let pool = Arc::new(BufferPool::new(MemStorage::with_page_size(PAGE_SIZE)));
        let mut dict = TagDict::new();
        let store = StructStore::build(
            pool,
            Reader::content_only(&ds.xml),
            &mut dict,
            BuildOptions::default(),
            &mut (),
        )
        .unwrap();
        let items: Vec<ScanItem> = DocScan::new(&store)
            .collect::<CoreResult<Vec<_>>>()
            .unwrap();
        let name = ds.kind.name();
        assert!(!items.is_empty(), "{name}: empty scan");
        let stride = (items.len() / MAX_CHECKS).max(1);
        for it in items.iter().step_by(stride) {
            assert_eq!(
                following_sibling(&store, it.addr).unwrap(),
                linear_following_sibling(&store, it.addr).unwrap(),
                "{name}: following_sibling diverges at {}",
                it.dewey
            );
            assert_eq!(
                subtree_close(&store, it.addr).unwrap(),
                linear_subtree_close(&store, it.addr).unwrap(),
                "{name}: subtree_close diverges at {}",
                it.dewey
            );
            assert_eq!(
                next_entry(&store, it.addr).unwrap(),
                linear_next_entry(&store, it.addr).unwrap(),
                "{name}: next_entry diverges at {}",
                it.dewey
            );
        }
    }
}
