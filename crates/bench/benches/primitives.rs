//! Microbenchmarks for the physical tree primitives (paper Algorithm 2):
//! FIRST-CHILD, FOLLOWING-SIBLING (with and without the header-directory
//! skip), subtree-close/interval computation, and full document scans.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nok_core::cursor;
use nok_core::XmlDb;
use nok_datagen::{generate, DatasetKind};

fn bench_primitives(c: &mut Criterion) {
    let ds = generate(DatasetKind::Catalog, 0.05);
    let db = XmlDb::build_in_memory(&ds.xml).expect("build");
    let store = db.store();
    let root = store.root().unwrap();
    let first_item = cursor::first_child(store, root).unwrap().unwrap();

    c.bench_function("first_child", |b| {
        b.iter(|| cursor::first_child(store, black_box(first_item)).unwrap())
    });

    c.bench_function("following_sibling_near", |b| {
        b.iter(|| cursor::following_sibling(store, black_box(first_item)).unwrap())
    });

    // Sibling of a node whose subtree spans pages: exercises the skip.
    c.bench_function("subtree_close_interval", |b| {
        b.iter(|| cursor::interval(store, black_box(first_item)).unwrap())
    });

    c.bench_function("doc_scan_full", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for item in cursor::DocScan::new(store) {
                item.unwrap();
                n += 1;
            }
            black_box(n)
        })
    });
}

/// The header-skip ablation: jumping over a bulk first child with and
/// without consulting the in-memory header directory (the "without" case is
/// emulated by walking entries via next_entry).
fn bench_header_skip(c: &mut Criterion) {
    let mut xml = String::from("<r><bulk>");
    for i in 0..5000 {
        xml.push_str(&format!("<x><y>{i}</y></x>"));
    }
    xml.push_str("</bulk><target/></r>");
    let db =
        XmlDb::build_in_memory_with(&xml, nok_core::BuildOptions::default(), 512).expect("build");
    let store = db.store();
    let root = store.root().unwrap();
    let bulk = cursor::first_child(store, root).unwrap().unwrap();

    c.bench_function("sibling_jump_with_header_skip", |b| {
        b.iter(|| {
            cursor::following_sibling(store, black_box(bulk))
                .unwrap()
                .unwrap()
        })
    });

    c.bench_function("sibling_jump_without_skip_emulated", |b| {
        b.iter(|| {
            // Walk every entry until the close of bulk — what the scan
            // would do without the (st, lo, hi) page headers.
            let end = cursor::subtree_close(store, bulk).unwrap();
            let mut cur = Some(bulk);
            let mut steps = 0u64;
            while let Some(a) = cur {
                steps += 1;
                if a == end {
                    break;
                }
                cur = cursor::next_entry(store, a).unwrap();
            }
            black_box(steps)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives, bench_header_skip
}
criterion_main!(benches);
