//! XML parsing and storage-build throughput: tokenizer, DOM construction,
//! succinct-store build, and full database (store + indexes) build.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use nok_core::store::{BuildOptions, StructStore};
use nok_core::{TagDict, XmlDb};
use nok_datagen::{generate, DatasetKind};
use nok_pager::{BufferPool, MemStorage};
use nok_xml::{Document, Reader};

fn bench_parse(c: &mut Criterion) {
    let ds = generate(DatasetKind::Dblp, 0.02);
    let bytes = ds.xml.len() as u64;
    let mut group = c.benchmark_group("parse");
    group.throughput(Throughput::Bytes(bytes));

    group.bench_function("tokenize_events", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for ev in Reader::content_only(&ds.xml) {
                ev.unwrap();
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("build_dom", |b| {
        b.iter(|| black_box(Document::parse(&ds.xml).unwrap().len()))
    });

    group.bench_function("build_struct_store", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(MemStorage::new()));
            let mut dict = TagDict::new();
            let store = StructStore::build(
                pool,
                Reader::content_only(&ds.xml),
                &mut dict,
                BuildOptions::default(),
                &mut (),
            )
            .unwrap();
            black_box(store.node_count())
        })
    });

    group.bench_function("build_full_database", |b| {
        b.iter(|| black_box(XmlDb::build_in_memory(&ds.xml).unwrap().node_count()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parse
}
criterion_main!(benches);
