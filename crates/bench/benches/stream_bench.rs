//! Streaming NoK matching throughput vs the stored engine (ablation A3 as
//! a microbenchmark).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use nok_core::{StreamMatcher, XmlDb};
use nok_datagen::{generate, DatasetKind};

fn bench_stream(c: &mut Criterion) {
    let ds = generate(DatasetKind::Address, 0.05);
    let bytes = ds.xml.len() as u64;
    let db = XmlDb::build_in_memory(&ds.xml).expect("build");

    let queries = [
        ("selective", r#"//address[keyword="needle-high"]"#),
        ("broad", "/addresses/address/city"),
    ];
    for (label, query) in queries {
        let mut group = c.benchmark_group(format!("stream_{label}"));
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function("streaming_single_pass", |b| {
            b.iter(|| black_box(StreamMatcher::run_str(query, &ds.xml).unwrap().len()))
        });
        group.bench_function("stored_engine", |b| {
            b.iter(|| black_box(db.query(query).unwrap().len()))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stream
}
criterion_main!(benches);
