//! B+ tree microbenchmarks: point lookups, duplicate-run retrieval, range
//! scans, inserts, and bulk loading — the index substrate under B+t / B+v /
//! B+i.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use nok_btree::BTree;
use nok_pager::{BufferPool, MemStorage};

fn loaded_tree(n: u32) -> BTree<MemStorage> {
    let pool = Arc::new(BufferPool::new(MemStorage::new()));
    let pairs: Vec<_> = (0..n)
        .map(|i| (format!("key{i:08}").into_bytes(), i.to_le_bytes().to_vec()))
        .collect();
    BTree::bulk_load(pool, pairs, 0.9).expect("bulk load")
}

fn bench_btree(c: &mut Criterion) {
    let tree = loaded_tree(100_000);

    c.bench_function("btree_point_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % 100_000;
            let key = format!("key{i:08}");
            black_box(tree.get_first(key.as_bytes()).unwrap())
        })
    });

    c.bench_function("btree_range_scan_1k", |b| {
        b.iter(|| {
            let lo = b"key00050000".to_vec();
            let hi = b"key00051000".to_vec();
            let n = tree
                .range(
                    std::ops::Bound::Included(&lo),
                    std::ops::Bound::Excluded(hi),
                )
                .unwrap()
                .count();
            black_box(n)
        })
    });

    // Duplicate posting lists (the tag-index access pattern).
    let dup_pool = Arc::new(BufferPool::new(MemStorage::new()));
    let dup = BTree::create(dup_pool).unwrap();
    for i in 0..5000u32 {
        dup.insert(b"tag", &i.to_le_bytes()).unwrap();
    }
    c.bench_function("btree_posting_list_5k", |b| {
        b.iter(|| black_box(dup.get_all(b"tag").unwrap().len()))
    });

    c.bench_function("btree_insert_10k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(MemStorage::new()));
            let t = BTree::create(pool).unwrap();
            for i in 0..10_000u32 {
                t.insert(
                    &(i.wrapping_mul(2654435761)).to_be_bytes(),
                    &i.to_le_bytes(),
                )
                .unwrap();
            }
            black_box(t.len())
        })
    });

    c.bench_function("btree_bulk_load_100k", |b| {
        b.iter(|| black_box(loaded_tree(100_000).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_btree
}
criterion_main!(benches);
