//! Engine-vs-engine microbenchmarks on representative Table 2 queries:
//! the criterion view of Table 3's headline cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nok_bench::EngineSet;
use nok_datagen::{generate, DatasetKind};

fn bench_engines(c: &mut Criterion) {
    let ds = generate(DatasetKind::Dblp, 0.05);
    let set = EngineSet::build(&ds.xml).expect("build");
    let cases = [
        ("hpy_Q1", r#"/dblp/article[keyword="needle-high"]"#),
        ("hpn_Q2", "/dblp/article/rareitem/subitem"),
        (
            "mby_Q7",
            r#"/dblp/article[keyword="needle-mod"][note="needle-mod"]"#,
        ),
        ("lpn_Q10", "/dblp/article/author"),
    ];
    for (label, query) in cases {
        let mut group = c.benchmark_group(label);
        for engine in set.all() {
            if engine.eval(query).is_err() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(engine.name(), ""), &query, |b, q| {
                b.iter(|| black_box(engine.eval(q).unwrap().len()))
            });
        }
        group.finish();
    }
}

/// Topology sensitivity (§6.2): path vs bushy at equal selectivity for the
/// NoK engine — "DI is topology sensitive, but our system is not".
fn bench_topology(c: &mut Criterion) {
    let ds = generate(DatasetKind::Address, 0.1);
    let set = EngineSet::build(&ds.xml).expect("build");
    let path_q = r#"/addresses/address[keyword="needle-low"]/city"#; // lpy
    let bushy_q = r#"/addresses/address[keyword="needle-low"][note="needle-low"]"#; // lby
    let mut group = c.benchmark_group("topology_path_vs_bushy");
    for engine in set.all() {
        group.bench_function(BenchmarkId::new(engine.name(), "path"), |b| {
            b.iter(|| black_box(engine.eval(path_q).unwrap().len()))
        });
        group.bench_function(BenchmarkId::new(engine.name(), "bushy"), |b| {
            b.iter(|| black_box(engine.eval(bushy_q).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, bench_topology
}
criterion_main!(benches);
