//! Update microbenchmarks (ablation A2 as criterion): last-child insert and
//! subtree delete against the paged string representation, vs the full
//! re-encode that rigid interval labels force.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nok_baselines::encode::IntervalDoc;
use nok_core::{Dewey, XmlDb};
use nok_datagen::{generate, DatasetKind};

fn bench_updates(c: &mut Criterion) {
    let ds = generate(DatasetKind::Catalog, 0.05);
    let fragment =
        r#"<item id="new"><title>bench insert</title><price currency="USD">1.00</price></item>"#;

    c.bench_function("nok_insert_last_child", |b| {
        // Fresh database per batch to keep the store size stable.
        b.iter_batched(
            || XmlDb::build_in_memory(&ds.xml).unwrap(),
            |mut db| {
                let d = db.insert_last_child(&Dewey::root(), fragment).unwrap();
                black_box(d);
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("nok_delete_subtree", |b| {
        b.iter_batched(
            || XmlDb::build_in_memory(&ds.xml).unwrap(),
            |mut db| {
                let n = db
                    .delete_subtree(&Dewey::from_components(vec![0, 0]))
                    .unwrap();
                black_box(n);
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("interval_full_reencode", |b| {
        b.iter(|| black_box(IntervalDoc::parse(&ds.xml).unwrap().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_updates
}
criterion_main!(benches);
