//! `nokfsck` — offline integrity checker for an on-disk succinct XML store.
//!
//! Usage: `nokfsck [--json] [--strict] <db-dir>`
//!
//! Opens the database read-only and runs every format check in
//! [`nok_verify::verify_db`]. When the database refuses to open (e.g. a
//! corrupted index file), falls back to a raw chain scan of `struct.pg` so
//! structural damage is still reported. Exit codes: 0 clean, 1 violations
//! found, 2 usage or open failure — including a fallback chain scan that
//! found nothing, since the store as a whole still failed to open.

use std::process::ExitCode;

use nok_core::XmlDb;
use nok_pager::{BufferPool, FileStorage};
use nok_verify::VerifyOptions;

const STRUCT_FILE: &str = "struct.pg";

fn usage() -> ExitCode {
    eprintln!("usage: nokfsck [--json] [--strict] <db-dir>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut dir: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ if dir.is_some() => return usage(),
            _ => dir = Some(arg),
        }
    }
    let Some(dir) = dir else { return usage() };

    let opts = if strict {
        VerifyOptions::strict()
    } else {
        VerifyOptions::default()
    };

    let mut degraded = false;
    let (report, scope) = match XmlDb::open_dir(&dir) {
        Ok(db) => (nok_verify::verify_db(&db, opts), "full"),
        Err(open_err) => {
            // The database would not open; degrade to a raw scan of the
            // structural string so page-level damage is still diagnosable.
            // The superblock names the structure backend; a damaged or
            // missing superblock degrades further to the classic encoding.
            let backend = nok_core::build::read_superblock(&dir)
                .unwrap_or(nok_core::page::BackendKind::Classic);
            let path = std::path::Path::new(&dir).join(STRUCT_FILE);
            match FileStorage::open(&path) {
                Ok(storage) => {
                    eprintln!("nokfsck: database open failed ({open_err}); raw chain scan only");
                    degraded = true;
                    (
                        nok_verify::verify_chain_with(&BufferPool::new(storage), backend),
                        "chain",
                    )
                }
                Err(e) => {
                    eprintln!("nokfsck: cannot open {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        println!("{dir} ({scope} scan)");
        println!("{report}");
    }
    if !report.is_clean() {
        ExitCode::from(1)
    } else if degraded {
        // The chain is sound but the database did not open: still a failure.
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
