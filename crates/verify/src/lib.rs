//! # nok-verify
//!
//! Read-only integrity analyzer for the succinct XML storage scheme (the
//! `fsck` of this repository — shipped as the `nokfsck` binary).
//!
//! The paper's storage format carries redundant information by design: page
//! headers `(st, lo, hi)` duplicate facts derivable from the string itself
//! (§4.2), the in-memory header directory mirrors the on-page headers, and
//! the three B+ tree indexes (B+t, B+v, B+i; §4.1 Figure 3) plus the value
//! data file cross-reference the structure through Dewey IDs and physical
//! addresses. This crate exploits that redundancy: every fact stored twice
//! is recomputed from one side and compared against the other, without
//! executing any query machinery.
//!
//! Three entry points of increasing scope:
//!
//! * [`verify_chain`] — raw page chain only (works without a
//!   [`StructStore`], e.g. on a damaged file that refuses to open):
//!   parenthesis balance, header exactness, chain acyclicity, capacity
//!   bounds, interval/nesting well-formedness.
//! * [`verify_store`] — adds in-memory directory agreement (rank map, node
//!   count) on an opened store.
//! * [`verify_db`] — adds Dewey↔interval agreement, value-file referential
//!   integrity, and B+ tree structural invariants on a full [`XmlDb`].
//!
//! Every problem is a structured [`Violation`]; the analyzer keeps going
//! after the first finding wherever that is safe, so one run paints the
//! whole damage picture. All checks are panic-free on corrupt input.

use std::collections::{HashMap, HashSet};

use nok_core::dewey::Dewey;
use nok_core::page::{self, BackendKind, HEADER_SIZE, NO_PAGE};
use nok_core::physical::{tag_posting_key, IdRecord, TagPosting};
use nok_core::sigma::TagCode;
use nok_core::store::{NodeAddr, StructStore};
use nok_core::succinct::{read_varint, BitVec, RankSelect};
use nok_core::values::{hash_key, hash_value};
use nok_core::LockDataFile;
use nok_core::XmlDb;
use nok_pager::{BufferPool, PageId, Storage};

mod report;
pub use report::{Report, Violation};

/// Which optional checks to run.
///
/// Strict mode adds two checks that used to hold only for freshly built
/// databases but now hold after updates too:
///
/// * **value orphans** — deletes tombstone a data record once its last
///   referent is gone, so a live record reachable from no B+i entry is a
///   defect;
/// * **tag posting order** — B+t keys are composite `(tag, dewey)`, so key
///   order *is* document order within each tag group, fresh or updated.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Report data-file records referenced by no B+i entry.
    pub value_orphans: bool,
    /// Report B+t postings out of document order within a tag group.
    pub tag_order: bool,
}

impl VerifyOptions {
    /// All checks on — valid for freshly built, never-updated databases.
    pub fn strict() -> VerifyOptions {
        VerifyOptions {
            value_orphans: true,
            tag_order: true,
        }
    }
}

/// A node derived from the raw string representation during the chain scan.
struct DerivedNode {
    dewey: Dewey,
    tag: TagCode,
    addr: NodeAddr,
    level: u16,
    /// Document-order position of the node's open entry (0-based over the
    /// whole string).
    order: u64,
}

/// Everything one raw pass over the page chain produces.
struct ChainScan {
    violations: Vec<Violation>,
    nodes: Vec<DerivedNode>,
    /// Page ids in chain order.
    chain: Vec<PageId>,
    /// Raw header of each chained page (parallel to `chain`).
    headers: Vec<page::PageHeader>,
    /// Decoded entry count of each chained page (parallel to `chain`).
    entries: Vec<u32>,
    opens: u64,
    closes: u64,
    /// The walk reached `NO_PAGE` without a cycle or a broken pointer.
    completed: bool,
}

/// Single source of truth for all structural checks: walk the chain from
/// page 0 following raw `next` pointers, re-deriving levels, Dewey IDs and
/// balance from the string itself, and comparing the stored headers against
/// the recomputation.
fn scan_chain<S: Storage>(pool: &BufferPool<S>, backend: BackendKind) -> ChainScan {
    let mut scan = ChainScan {
        violations: Vec::new(),
        nodes: Vec::new(),
        chain: Vec::new(),
        headers: Vec::new(),
        entries: Vec::new(),
        opens: 0,
        closes: 0,
        completed: false,
    };
    let page_count = pool.page_count();
    if page_count == 0 {
        scan.completed = true;
        return scan;
    }

    // Dewey derivation state (the build's stack-of-counters, replayed).
    let mut dewey_path: Vec<u32> = Vec::new();
    let mut counters: Vec<u32> = Vec::new();
    let mut root_opens = 0u32;
    let mut order = 0u64;
    // Running level across the whole chain — the ground truth each page's
    // `st` must equal.
    let mut level: u16 = 0;

    let mut visited: HashSet<PageId> = HashSet::new();
    let mut pid: PageId = 0;
    loop {
        if pid >= page_count {
            scan.violations.push(Violation::BrokenChain {
                page: scan.chain.last().copied().unwrap_or(0),
                next: pid,
            });
            break;
        }
        if !visited.insert(pid) {
            scan.violations.push(Violation::ChainCycle { page: pid });
            break;
        }
        let handle = match pool.get(pid) {
            Ok(h) => h,
            Err(e) => {
                scan.violations.push(Violation::PageUnreadable {
                    page: pid,
                    detail: e.to_string(),
                });
                break;
            }
        };
        let buf = handle.read();
        let Some(header) = page::read_header(&buf) else {
            scan.violations.push(Violation::PageUndecodable {
                page: pid,
                detail: format!("page shorter than the {HEADER_SIZE}-byte header"),
            });
            break;
        };
        scan.chain.push(pid);
        scan.headers.push(header);

        // Capacity / reserve-slack bound: the used content can never exceed
        // the content area (updates may consume all slack, but not more).
        let max_content = buf.len().saturating_sub(HEADER_SIZE);
        if header.nbytes as usize > max_content {
            scan.violations.push(Violation::PageOverflow {
                page: pid,
                nbytes: header.nbytes,
                max: max_content as u64,
            });
            scan.entries.push(0);
            // Content bounds are untrustworthy; continue along the chain.
            drop(buf);
            if header.next == NO_PAGE {
                scan.completed = true;
                break;
            }
            pid = header.next;
            continue;
        }

        // Header exactness, part 1: st must equal the true end level of the
        // previous page (0 for the first page). A page holding no entries
        // stores the canonical sentinel instead — it passes the running
        // level through and must not claim any level of its own.
        let expected_st = if header.nbytes == 0 {
            page::EMPTY_PAGE_ST
        } else {
            level
        };
        if header.st != expected_st {
            scan.violations.push(Violation::StMismatch {
                page: pid,
                expected: expected_st,
                found: header.st,
            });
        }

        // Decode entries against the *recomputed* running level, so a wrong
        // `st` does not cascade into bounds noise. Each backend gets its own
        // granular parse (so damage is located precisely), then both feed
        // the same level/Dewey recomputation.
        let content = &buf[HEADER_SIZE..HEADER_SIZE + header.nbytes as usize];
        let decoded = match backend {
            BackendKind::Classic => {
                let mut entries = Vec::new();
                let mut pos = 0usize;
                while pos < content.len() {
                    let Some((entry, width)) = page::decode_entry(content, pos) else {
                        scan.violations.push(Violation::PageUndecodable {
                            page: pid,
                            detail: format!("truncated entry at content offset {pos}"),
                        });
                        break;
                    };
                    entries.push(entry);
                    pos += width;
                }
                entries
            }
            BackendKind::Succinct => scan_succinct_entries(pid, content, &mut scan.violations),
        };
        let (mut lo, mut hi) = (u16::MAX, 0u16);
        let mut entry_idx = 0u32;
        for entry in decoded {
            match entry {
                page::Entry::Open(tag) => {
                    scan.opens += 1;
                    level += 1;
                    let index = match counters.last_mut() {
                        Some(c) => {
                            let i = *c;
                            *c += 1;
                            i
                        }
                        None => {
                            root_opens += 1;
                            if root_opens > 1 {
                                scan.violations.push(Violation::NestingViolation {
                                    page: pid,
                                    entry: entry_idx,
                                    detail: "second top-level open (document forest)".into(),
                                });
                            }
                            0
                        }
                    };
                    dewey_path.push(index);
                    counters.push(0);
                    scan.nodes.push(DerivedNode {
                        dewey: Dewey::from_slice(&dewey_path),
                        tag,
                        addr: NodeAddr {
                            page: pid,
                            entry: entry_idx,
                        },
                        level,
                        order,
                    });
                }
                page::Entry::Close => {
                    scan.closes += 1;
                    if level == 0 || counters.is_empty() {
                        scan.violations.push(Violation::NestingViolation {
                            page: pid,
                            entry: entry_idx,
                            detail: "close with no open node (interval underflow)".into(),
                        });
                    } else {
                        level -= 1;
                        dewey_path.pop();
                        counters.pop();
                    }
                }
            }
            lo = lo.min(level);
            hi = hi.max(level);
            entry_idx += 1;
            order += 1;
        }
        scan.entries.push(entry_idx);

        // Header exactness, part 2: lo/hi must be the true min/max level.
        // An empty page stores the empty range (lo=MAX, hi=0) by convention.
        let (expected_lo, expected_hi) = if entry_idx == 0 {
            (u16::MAX, 0)
        } else {
            (lo, hi)
        };
        if header.lo != expected_lo || header.hi != expected_hi {
            scan.violations.push(Violation::BoundsMismatch {
                page: pid,
                expected_lo,
                expected_hi,
                found_lo: header.lo,
                found_hi: header.hi,
            });
        }

        drop(buf);
        if header.next == NO_PAGE {
            scan.completed = true;
            break;
        }
        pid = header.next;
    }

    // Chain reachability: every page of the structural pool belongs to the
    // chain. (Only meaningful when the walk itself terminated cleanly.)
    if scan.completed {
        for p in 0..page_count {
            if !visited.contains(&p) {
                scan.violations.push(Violation::UnreachablePage { page: p });
            }
        }
    }

    // Parenthesis balance of the whole string.
    if scan.opens != scan.closes || level != 0 {
        scan.violations.push(Violation::UnbalancedString {
            opens: scan.opens,
            closes: scan.closes,
            end_level: level,
        });
    }
    scan
}

/// Granular parse of one succinct page's content: entry-count word,
/// parenthesis bitvector (including canonical zero padding), dictionary tag
/// codes (LEB128, 15-bit bound, exact stream length), and a rebuild of the
/// rank/select directory cross-checked against a linear recount. Pushes a
/// violation per defect and returns the entries it managed to derive.
fn scan_succinct_entries(pid: PageId, content: &[u8], v: &mut Vec<Violation>) -> Vec<page::Entry> {
    use nok_core::sigma::TagCode;
    if content.is_empty() {
        return Vec::new();
    }
    if content.len() < 2 {
        v.push(Violation::SuccinctEncoding {
            page: pid,
            detail: "content shorter than the entry-count word".into(),
        });
        return Vec::new();
    }
    let n = u16::from_le_bytes([content[0], content[1]]) as usize;
    if n == 0 {
        v.push(Violation::SuccinctEncoding {
            page: pid,
            detail: "zero entry count with nonzero nbytes".into(),
        });
        return Vec::new();
    }
    let paren_bytes = n.div_ceil(8);
    if content.len() < 2 + paren_bytes {
        v.push(Violation::SuccinctEncoding {
            page: pid,
            detail: format!(
                "parenthesis bitvector truncated: {} entries need {paren_bytes} bytes, {} present",
                n,
                content.len() - 2
            ),
        });
        return Vec::new();
    }
    let parens = &content[2..2 + paren_bytes];
    if n % 8 != 0 && (parens[paren_bytes - 1] >> (n % 8)) != 0 {
        v.push(Violation::SuccinctEncoding {
            page: pid,
            detail: "nonzero padding bits after the last entry".into(),
        });
    }
    let bits = BitVec::from_bits((0..n).map(|i| (parens[i / 8] >> (i % 8)) & 1 == 1));

    // Rank/select directory consistency: rebuild the per-page directory and
    // cross-check every rank, select and excess answer against a linear
    // recount of the raw bitvector.
    let rs = RankSelect::build(bits.clone());
    let mut ones = 0usize;
    let mut excess = 0i64;
    for i in 0..n {
        if rs.rank1(i) != ones {
            v.push(Violation::RankSelectMismatch {
                page: pid,
                detail: format!("rank1({i}) = {}, linear recount says {ones}", rs.rank1(i)),
            });
            break;
        }
        if bits.get(i) {
            if rs.select1(ones) != Some(i) {
                v.push(Violation::RankSelectMismatch {
                    page: pid,
                    detail: format!("select1({ones}) = {:?}, expected {i}", rs.select1(ones)),
                });
                break;
            }
            ones += 1;
            excess += 1;
        } else {
            excess -= 1;
        }
        if rs.excess(i + 1) != excess {
            v.push(Violation::RankSelectMismatch {
                page: pid,
                detail: format!(
                    "excess({}) = {}, recount says {excess}",
                    i + 1,
                    rs.excess(i + 1)
                ),
            });
            break;
        }
    }

    // Tag-code stream: one varint per open, in order, covering the rest of
    // the content exactly.
    let mut entries = Vec::with_capacity(n);
    let mut pos = 2 + paren_bytes;
    for i in 0..n {
        if bits.get(i) {
            match read_varint(content, pos) {
                Some((code, width)) => {
                    if code >= 1 << 15 {
                        v.push(Violation::TagCodeOutOfRange {
                            page: pid,
                            entry: i as u32,
                            code,
                        });
                    }
                    entries.push(page::Entry::Open(TagCode(code)));
                    pos += width;
                }
                None => {
                    v.push(Violation::SuccinctEncoding {
                        page: pid,
                        detail: format!("tag-code stream truncated at entry {i}"),
                    });
                    return entries;
                }
            }
        } else {
            entries.push(page::Entry::Close);
        }
    }
    if pos != content.len() {
        v.push(Violation::SuccinctEncoding {
            page: pid,
            detail: format!(
                "{} trailing content bytes after the tag-code stream",
                content.len() - pos
            ),
        });
    }
    entries
}

/// Verify the raw page chain of a structural pool: balance, header
/// exactness, chain acyclicity and reachability, capacity bounds, nesting.
/// Needs no [`StructStore`] — usable on a pool whose store refuses to open.
/// Assumes the classic entry encoding; use [`verify_chain_with`] for a pool
/// whose backend is known (e.g. from the directory superblock).
pub fn verify_chain<S: Storage>(pool: &BufferPool<S>) -> Report {
    verify_chain_with(pool, BackendKind::Classic)
}

/// [`verify_chain`] for a pool whose pages use `backend`.
pub fn verify_chain_with<S: Storage>(pool: &BufferPool<S>, backend: BackendKind) -> Report {
    let scan = scan_chain(pool, backend);
    Report {
        violations: scan.violations,
        pages: scan.chain.len() as u32,
        nodes: scan.opens,
    }
}

/// Verify a [`StructStore`]: everything [`verify_chain`] checks, plus
/// agreement between the in-memory header directory (rank map, mirrored
/// headers, entry counts) and the raw pages, and the stored node count.
pub fn verify_store<S: Storage>(store: &StructStore<S>) -> Report {
    let mut scan = scan_chain(store.pool(), store.backend());
    directory_checks(store, &mut scan);
    Report {
        violations: scan.violations,
        pages: scan.chain.len() as u32,
        nodes: scan.opens,
    }
}

fn directory_checks<S: Storage>(store: &StructStore<S>, scan: &mut ChainScan) {
    if store.chain_len() as u64 != scan.chain.len() as u64 {
        scan.violations.push(Violation::CountMismatch {
            what: "chained pages in directory",
            expected: scan.chain.len() as u64,
            found: store.chain_len() as u64,
        });
    }
    for (i, (&pid, header)) in scan.chain.iter().zip(&scan.headers).enumerate() {
        let Some(dir) = store.dir_at(i as u32) else {
            scan.violations.push(Violation::DirectoryMismatch {
                page: pid,
                field: "presence",
                expected: 1,
                found: 0,
            });
            continue;
        };
        let fields: [(&'static str, u64, u64); 5] = [
            ("id", pid as u64, dir.id as u64),
            ("st", header.st as u64, dir.st as u64),
            ("lo", header.lo as u64, dir.lo as u64),
            ("hi", header.hi as u64, dir.hi as u64),
            ("entries", scan.entries[i] as u64, dir.entries as u64),
        ];
        for (field, expected, found) in fields {
            if expected != found {
                scan.violations.push(Violation::DirectoryMismatch {
                    page: pid,
                    field,
                    expected,
                    found,
                });
            }
        }
        // The rank map must place the page at its chain position — this is
        // what makes lin() (and thus every node interval) document-ordered.
        match store.rank(pid) {
            Ok(r) if r as usize == i => {}
            Ok(r) => scan.violations.push(Violation::DirectoryMismatch {
                page: pid,
                field: "rank",
                expected: i as u64,
                found: r as u64,
            }),
            Err(_) => scan.violations.push(Violation::DirectoryMismatch {
                page: pid,
                field: "rank",
                expected: i as u64,
                found: u64::MAX,
            }),
        }
    }
    if store.node_count() != scan.opens {
        scan.violations.push(Violation::CountMismatch {
            what: "store node count",
            expected: scan.opens,
            found: store.node_count(),
        });
    }
}

/// Verify a full [`XmlDb`]: everything [`verify_store`] checks, plus
/// Dewey↔address agreement through B+i, value-file referential integrity
/// (B+i → data file, B+v ↔ values), tag-index completeness, and the
/// structural invariants of all three B+ trees.
pub fn verify_db<S: Storage>(db: &XmlDb<S>, opts: VerifyOptions) -> Report {
    let mut scan = scan_chain(db.store().pool(), db.store().backend());
    directory_checks(db.store(), &mut scan);
    index_checks(db, opts, &mut scan);
    generation_checks(db, &mut scan.violations);
    Report {
        violations: scan.violations,
        pages: scan.chain.len() as u32,
        nodes: scan.opens,
    }
}

/// The newest published MVCC generation must be self-consistent with the
/// committed state it represents: same epoch as the commit counter, same
/// node count, structural page count, B+ tree roots and entry counts, and
/// data-file length. A divergence means snapshot readers pinned *now*
/// would see a database that never existed.
fn generation_checks<S: Storage>(db: &XmlDb<S>, v: &mut Vec<Violation>) {
    let snap = match db.snapshot() {
        Ok(s) => s,
        Err(e) => {
            v.push(Violation::RecordCorrupt {
                what: "generation pin",
                detail: e.to_string(),
            });
            return;
        }
    };
    let g = snap.generation();
    let roots = g.btree_roots();
    let trees = [
        (
            "B+t root page",
            db.bt_tag().root_page() as u64,
            roots[0].0 as u64,
        ),
        ("B+t entry count", db.bt_tag().len(), roots[0].1),
        (
            "B+v root page",
            db.bt_val().root_page() as u64,
            roots[1].0 as u64,
        ),
        ("B+v entry count", db.bt_val().len(), roots[1].1),
        (
            "B+i root page",
            db.bt_id().root_page() as u64,
            roots[2].0 as u64,
        ),
        ("B+i entry count", db.bt_id().len(), roots[2].1),
    ];
    let checks = [
        ("epoch", db.commit_generation(), g.epoch()),
        ("node count", db.store().node_count(), g.node_count()),
        (
            "structural page count",
            db.store().chain_len() as u64,
            g.page_count(),
        ),
    ];
    for (field, expected, found) in checks.into_iter().chain(trees) {
        if expected != found {
            v.push(Violation::GenerationMismatch {
                field,
                expected,
                found,
            });
        }
    }
    // The published data-file length is a visibility horizon: records at
    // or past it are invisible to snapshot readers. A horizon *beyond* the
    // file is corruption; a horizon behind it is just an uncommitted tail.
    let file_len = db.data_cell().lock_data().len_bytes();
    if g.data_len() > file_len {
        v.push(Violation::GenerationMismatch {
            field: "data-file length",
            expected: file_len,
            found: g.data_len(),
        });
    }
}

fn btree_checks<S: Storage>(
    name: &'static str,
    tree: &nok_btree::BTree<S>,
    out: &mut Vec<Violation>,
) {
    match tree.verify_structure() {
        Ok(issues) => {
            for i in issues {
                out.push(Violation::BTreeStructure {
                    index: name,
                    page: i.page,
                    detail: i.detail,
                });
            }
        }
        Err(e) => out.push(Violation::BTreeStructure {
            index: name,
            page: 0,
            detail: format!("verification aborted: {e}"),
        }),
    }
}

fn index_checks<S: Storage>(db: &XmlDb<S>, opts: VerifyOptions, scan: &mut ChainScan) {
    let v = &mut scan.violations;
    btree_checks("B+t", db.bt_tag(), v);
    btree_checks("B+v", db.bt_val(), v);
    btree_checks("B+i", db.bt_id(), v);

    // Ground truth from the string representation.
    let derived: HashMap<Vec<u8>, &DerivedNode> =
        scan.nodes.iter().map(|n| (n.dewey.to_key(), n)).collect();

    // ---- B+i: every node exactly once, with the right address; every
    // value pointer resolves in the data file with the right length.
    let mut seen_ids: HashSet<Vec<u8>> = HashSet::new();
    let mut referenced_offsets: HashSet<u64> = HashSet::new();
    // dewey key -> value text (resolved through B+i), for the B+v checks.
    let mut value_of: HashMap<Vec<u8>, String> = HashMap::new();
    let mut id_entries = 0u64;
    let id_iter = match db.bt_id().iter_all() {
        Ok(it) => Some(it),
        Err(e) => {
            v.push(Violation::RecordCorrupt {
                what: "B+i scan",
                detail: e.to_string(),
            });
            None
        }
    };
    for item in id_iter.into_iter().flatten() {
        let (key, val) = match item {
            Ok(kv) => kv,
            Err(e) => {
                v.push(Violation::RecordCorrupt {
                    what: "B+i scan",
                    detail: e.to_string(),
                });
                break;
            }
        };
        id_entries += 1;
        let Some(dewey) = Dewey::from_key(&key) else {
            v.push(Violation::RecordCorrupt {
                what: "B+i key",
                detail: format!("{} bytes, not a Dewey key", key.len()),
            });
            continue;
        };
        let rec = match IdRecord::from_bytes(&val) {
            Ok(r) => r,
            Err(e) => {
                v.push(Violation::RecordCorrupt {
                    what: "B+i record",
                    detail: format!("{dewey}: {e}"),
                });
                continue;
            }
        };
        match derived.get(&key) {
            None => v.push(Violation::OrphanIdEntry {
                dewey: dewey.to_string(),
            }),
            Some(node) => {
                if !seen_ids.insert(key.clone()) {
                    v.push(Violation::RecordCorrupt {
                        what: "B+i key",
                        detail: format!("{dewey}: duplicate entry"),
                    });
                }
                if rec.addr != node.addr {
                    v.push(Violation::IdAddrMismatch {
                        dewey: dewey.to_string(),
                        expected: node.addr.to_string(),
                        found: rec.addr.to_string(),
                    });
                }
            }
        }
        if let Some((off, len)) = rec.value {
            match db.data_cell().lock_data().get_record(off) {
                Ok(text) => {
                    if text.len() as u32 != len {
                        v.push(Violation::ValueUnresolvable {
                            dewey: dewey.to_string(),
                            offset: off,
                            detail: format!(
                                "record holds {} bytes, index claims {len}",
                                text.len()
                            ),
                        });
                    }
                    referenced_offsets.insert(off);
                    value_of.insert(key.clone(), text);
                }
                Err(e) => v.push(Violation::ValueUnresolvable {
                    dewey: dewey.to_string(),
                    offset: off,
                    detail: e.to_string(),
                }),
            }
        }
    }
    for (key, node) in &derived {
        if !seen_ids.contains(key) {
            v.push(Violation::MissingIdEntry {
                dewey: node.dewey.to_string(),
            });
        }
    }
    if id_entries != scan.nodes.len() as u64 {
        v.push(Violation::CountMismatch {
            what: "B+i entries",
            expected: scan.nodes.len() as u64,
            found: id_entries,
        });
    }

    // ---- B+v: exactly one posting (hash(value) -> dewey) per valued node.
    let mut expected_postings: HashMap<(Vec<u8>, Vec<u8>), i64> = HashMap::new();
    for (key, text) in &value_of {
        *expected_postings
            .entry((hash_key(text).to_vec(), key.clone()))
            .or_insert(0) += 1;
    }
    match db.bt_val().iter_all() {
        Ok(it) => {
            for item in it {
                let (h, dk) = match item {
                    Ok(kv) => kv,
                    Err(e) => {
                        v.push(Violation::RecordCorrupt {
                            what: "B+v scan",
                            detail: e.to_string(),
                        });
                        break;
                    }
                };
                let dewey = Dewey::from_key(&dk)
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| format!("<{} raw bytes>", dk.len()));
                match expected_postings.get_mut(&(h.clone(), dk.clone())) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => {
                        if let Some(text) = value_of.get(&dk) {
                            v.push(Violation::ValueHashMismatch {
                                dewey,
                                detail: format!(
                                    "posting key {:02x?} != hash of stored value {:?}",
                                    &h[..h.len().min(8)],
                                    text
                                ),
                            });
                        } else {
                            v.push(Violation::OrphanValuePosting { dewey });
                        }
                    }
                }
            }
        }
        Err(e) => v.push(Violation::RecordCorrupt {
            what: "B+v scan",
            detail: e.to_string(),
        }),
    }
    for ((_, dk), n) in &expected_postings {
        if *n > 0 {
            let dewey = Dewey::from_key(dk)
                .map(|d| d.to_string())
                .unwrap_or_default();
            v.push(Violation::MissingValuePosting { dewey });
        }
    }

    // ---- B+t: exactly one posting per node, stored under the composite
    // (tag, dewey) key.
    let mut expected_tags: HashMap<(Vec<u8>, Vec<u8>), i64> = HashMap::new();
    for n in &scan.nodes {
        let posting = TagPosting {
            addr: n.addr,
            level: n.level,
            dewey: n.dewey.clone(),
        };
        *expected_tags
            .entry((tag_posting_key(n.tag, &n.dewey), posting.to_bytes()))
            .or_insert(0) += 1;
    }
    let order_of: HashMap<Vec<u8>, u64> = scan
        .nodes
        .iter()
        .map(|n| (n.dewey.to_key(), n.order))
        .collect();
    let mut tag_entries = 0u64;
    let mut prev_in_group: Option<(Vec<u8>, u64)> = None;
    match db.bt_tag().iter_all() {
        Ok(it) => {
            for item in it {
                let (tk, pv) = match item {
                    Ok(kv) => kv,
                    Err(e) => {
                        v.push(Violation::RecordCorrupt {
                            what: "B+t scan",
                            detail: e.to_string(),
                        });
                        break;
                    }
                };
                tag_entries += 1;
                let tag = if tk.len() >= 2 {
                    TagCode::from_key(&tk).0
                } else {
                    u16::MAX
                };
                let posting = match TagPosting::from_bytes(&pv) {
                    Ok(p) => p,
                    Err(e) => {
                        v.push(Violation::RecordCorrupt {
                            what: "B+t posting",
                            detail: format!("tag {tag}: {e}"),
                        });
                        continue;
                    }
                };
                match expected_tags.get_mut(&(tk.clone(), pv.clone())) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => v.push(Violation::OrphanTagPosting {
                        tag,
                        detail: format!(
                            "posting for {} at {} matches no node",
                            posting.dewey, posting.addr
                        ),
                    }),
                }
                if opts.tag_order && tk.len() >= 2 {
                    // Group by the 2-byte tag prefix of the composite key.
                    let group = tk[..2].to_vec();
                    if let Some(&ord) = order_of.get(&posting.dewey.to_key()) {
                        if let Some((ptk, pord)) = &prev_in_group {
                            if *ptk == group && *pord > ord {
                                v.push(Violation::TagOrderViolation {
                                    tag,
                                    detail: format!(
                                        "posting for {} precedes an earlier document position",
                                        posting.dewey
                                    ),
                                });
                            }
                        }
                        prev_in_group = Some((group, ord));
                    }
                }
            }
        }
        Err(e) => v.push(Violation::RecordCorrupt {
            what: "B+t scan",
            detail: e.to_string(),
        }),
    }
    let mut missing_tags: Vec<(u16, &Vec<u8>)> = Vec::new();
    for ((tk, pv), n) in &expected_tags {
        if *n > 0 {
            missing_tags.push((TagCode::from_key(tk).0, pv));
        }
    }
    for (tag, pv) in missing_tags {
        let dewey = TagPosting::from_bytes(pv)
            .map(|p| p.dewey.to_string())
            .unwrap_or_default();
        v.push(Violation::MissingTagPosting { dewey, tag });
    }
    if tag_entries != scan.nodes.len() as u64 {
        v.push(Violation::CountMismatch {
            what: "B+t entries",
            expected: scan.nodes.len() as u64,
            found: tag_entries,
        });
    }
    // Selectivity counters must agree with the derived per-tag occurrences.
    let mut derived_tag_counts: HashMap<TagCode, u64> = HashMap::new();
    for n in &scan.nodes {
        *derived_tag_counts.entry(n.tag).or_insert(0) += 1;
    }
    for (tag, expected) in &derived_tag_counts {
        let found = db.tag_count(*tag);
        if found != *expected {
            v.push(Violation::CountMismatch {
                what: "tag occurrence counter",
                expected: *expected,
                found,
            });
        }
    }
    // Likewise the per-value-hash counters the cost-based planner estimates
    // selectivities from, plus the distinct-hash total (which catches stale
    // counters for values that no longer exist).
    let mut derived_value_counts: HashMap<u64, u64> = HashMap::new();
    for text in value_of.values() {
        *derived_value_counts.entry(hash_value(text)).or_insert(0) += 1;
    }
    for (hash, expected) in &derived_value_counts {
        let found = db.value_count(*hash);
        if found != *expected {
            v.push(Violation::CountMismatch {
                what: "value occurrence counter",
                expected: *expected,
                found,
            });
        }
    }
    if db.distinct_value_count() != derived_value_counts.len() as u64 {
        v.push(Violation::CountMismatch {
            what: "distinct value hashes",
            expected: derived_value_counts.len() as u64,
            found: db.distinct_value_count(),
        });
    }
    // The synopsis path summary the planner proves emptiness from: every
    // distinct root-to-node tag path recomputed from the rescan must carry
    // exactly the synopsis's count, and the synopsis must name no path the
    // document lacks. The chain stack replays the same level-truncation
    // the build and update layers maintain incrementally.
    let mut derived_paths: HashMap<Vec<TagCode>, u64> = HashMap::new();
    let mut path_chain: Vec<TagCode> = Vec::new();
    for n in &scan.nodes {
        path_chain.truncate((n.level as usize).saturating_sub(1));
        path_chain.push(n.tag);
        *derived_paths.entry(path_chain.clone()).or_insert(0) += 1;
    }
    let render = |tags: &[TagCode]| {
        let mut s = String::new();
        for t in tags {
            s.push('/');
            s.push_str(db.dict().name(*t));
        }
        s
    };
    let paths = db.synopsis().paths();
    for (tags, expected) in &derived_paths {
        let found = paths.exact_count(tags);
        if found != *expected {
            v.push(Violation::SynopsisPathCountMismatch {
                path: render(tags),
                expected: *expected,
                found,
            });
        }
    }
    paths.for_each_path(|tags, found| {
        if !derived_paths.contains_key(tags) {
            v.push(Violation::SynopsisPathCountMismatch {
                path: render(tags),
                expected: 0,
                found,
            });
        }
    });
    if db.synopsis().distinct_paths() != derived_paths.len() as u64 {
        v.push(Violation::CountMismatch {
            what: "distinct synopsis paths",
            expected: derived_paths.len() as u64,
            found: db.synopsis().distinct_paths(),
        });
    }

    // ---- Data file: every live record reachable from B+i. Records whose
    // last referent was deleted carry a tombstone (the dead bit in the
    // length word) and are skipped, so this holds after updates too.
    if opts.value_orphans {
        let mut off = 0u64;
        let total = db.data_cell().lock_data().len_bytes();
        while off < total {
            let (len, dead) = match db.data_cell().lock_data().record_span(off) {
                Ok(s) => s,
                Err(e) => {
                    v.push(Violation::RecordCorrupt {
                        what: "data-file record",
                        detail: format!("offset {off}: {e}"),
                    });
                    break;
                }
            };
            if !dead && !referenced_offsets.contains(&off) {
                v.push(Violation::OrphanValueRecord { offset: off });
            }
            off += 4 + len as u64;
        }
    }
}
