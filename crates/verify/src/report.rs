//! Structured findings: [`Violation`] (one per defect class) and [`Report`]
//! (the result of one analyzer run), with human and JSON rendering. JSON is
//! emitted by hand — the build environment is offline and this workspace
//! vendors no serialization framework.

use std::fmt;

/// One integrity violation, with enough location detail (page id, entry
/// offset, expected vs. found) to pinpoint the damage.
#[derive(Debug, Clone)]
pub enum Violation {
    /// A chained page could not be read from storage at all.
    PageUnreadable {
        /// Page id.
        page: u32,
        /// Underlying I/O error.
        detail: String,
    },
    /// A page's header or entry bytes do not parse.
    PageUndecodable {
        /// Page id.
        page: u32,
        /// What failed to parse.
        detail: String,
    },
    /// `nbytes` claims more content than the page can hold — the
    /// capacity/reserve bound of the paper's formula is violated.
    PageOverflow {
        /// Page id.
        page: u32,
        /// Claimed content byte count.
        nbytes: u16,
        /// Maximum content bytes for this page size.
        max: u64,
    },
    /// A next pointer leads outside the pool.
    BrokenChain {
        /// Page holding the pointer.
        page: u32,
        /// The out-of-range target.
        next: u32,
    },
    /// Following next pointers revisits a page.
    ChainCycle {
        /// First page seen twice.
        page: u32,
    },
    /// A pool page is not reachable from the chain head.
    UnreachablePage {
        /// The unchained page.
        page: u32,
    },
    /// A page's `st` is not the true end level of its predecessor.
    StMismatch {
        /// Page id.
        page: u32,
        /// True end level of the previous page.
        expected: u16,
        /// Stored `st`.
        found: u16,
    },
    /// A page's `lo`/`hi` are not the true min/max entry levels.
    BoundsMismatch {
        /// Page id.
        page: u32,
        /// Recomputed minimum level.
        expected_lo: u16,
        /// Recomputed maximum level.
        expected_hi: u16,
        /// Stored `lo`.
        found_lo: u16,
        /// Stored `hi`.
        found_hi: u16,
    },
    /// The string's node intervals do not nest (close without open, forest).
    NestingViolation {
        /// Page id.
        page: u32,
        /// Entry index within the page.
        entry: u32,
        /// What went wrong.
        detail: String,
    },
    /// Open and close parentheses do not balance over the whole string.
    UnbalancedString {
        /// Total open entries.
        opens: u64,
        /// Total close entries.
        closes: u64,
        /// Level after the last entry (must be 0).
        end_level: u16,
    },
    /// The in-memory header directory disagrees with the raw page.
    DirectoryMismatch {
        /// Page id.
        page: u32,
        /// Which directory field diverged.
        field: &'static str,
        /// Value recomputed from the raw page / chain position.
        expected: u64,
        /// Value held by the directory.
        found: u64,
    },
    /// Two redundant counters disagree.
    CountMismatch {
        /// What was counted.
        what: &'static str,
        /// Recomputed ground truth.
        expected: u64,
        /// Stored value.
        found: u64,
    },
    /// A node derived from the structure has no B+i entry.
    MissingIdEntry {
        /// Dewey id of the node.
        dewey: String,
    },
    /// A B+i entry names a Dewey id that no node carries.
    OrphanIdEntry {
        /// Dewey id of the stray entry.
        dewey: String,
    },
    /// A B+i entry stores the wrong physical address for its node.
    IdAddrMismatch {
        /// Dewey id of the node.
        dewey: String,
        /// Address derived from the structure (`page:entry`).
        expected: String,
        /// Address stored in the index.
        found: String,
    },
    /// A B+i value pointer does not resolve to a matching data-file record.
    ValueUnresolvable {
        /// Dewey id of the node.
        dewey: String,
        /// Claimed data-file offset.
        offset: u64,
        /// Why resolution failed.
        detail: String,
    },
    /// A B+v posting's hash key does not hash its node's stored value.
    ValueHashMismatch {
        /// Dewey id the posting points at.
        dewey: String,
        /// What diverged.
        detail: String,
    },
    /// A valued node has no B+v posting under its value's hash.
    MissingValuePosting {
        /// Dewey id of the node.
        dewey: String,
    },
    /// A B+v posting points at a node that carries no value.
    OrphanValuePosting {
        /// Dewey id the posting points at.
        dewey: String,
    },
    /// A data-file record is referenced by no B+i entry (strict mode).
    OrphanValueRecord {
        /// Byte offset of the record.
        offset: u64,
    },
    /// A node has no B+t posting under its tag.
    MissingTagPosting {
        /// Dewey id of the node.
        dewey: String,
        /// Tag code.
        tag: u16,
    },
    /// A B+t posting matches no node.
    OrphanTagPosting {
        /// Tag code.
        tag: u16,
        /// The stray posting.
        detail: String,
    },
    /// B+t postings within a tag group are out of document order (strict).
    TagOrderViolation {
        /// Tag code.
        tag: u16,
        /// The out-of-order posting.
        detail: String,
    },
    /// A B+ tree violated one of its structural invariants.
    BTreeStructure {
        /// Which index (`B+t`, `B+v`, `B+i`).
        index: &'static str,
        /// Page the issue was found on.
        page: u32,
        /// The issue.
        detail: String,
    },
    /// A stored record (IdRecord, TagPosting, Dewey key, data record) does
    /// not parse, or an index scan aborted.
    RecordCorrupt {
        /// What failed to parse.
        what: &'static str,
        /// Parse failure detail.
        detail: String,
    },
    /// A succinct (bit-packed) page's content does not parse canonically:
    /// bad count word, truncated parenthesis bitvector, nonzero padding
    /// bits, or a tag-code stream that does not cover the content exactly.
    SuccinctEncoding {
        /// Page id.
        page: u32,
        /// What failed to parse.
        detail: String,
    },
    /// A succinct page's rebuilt rank/select directory disagrees with a
    /// linear recount of its parenthesis bitvector.
    RankSelectMismatch {
        /// Page id.
        page: u32,
        /// The diverging query and both answers.
        detail: String,
    },
    /// A succinct page stores a dictionary tag code outside the 15-bit
    /// range the classic encoding (and the tag dictionary) can represent.
    TagCodeOutOfRange {
        /// Page id.
        page: u32,
        /// Entry index within the page.
        entry: u32,
        /// The out-of-range code.
        code: u16,
    },
    /// The synopsis path summary disagrees with the root-to-node tag paths
    /// recomputed from a full rescan of the structure (see DESIGN.md §17).
    SynopsisPathCountMismatch {
        /// The tag path, rendered `/a/b/c` with dictionary names.
        path: String,
        /// Node count recomputed from the rescan.
        expected: u64,
        /// Node count the synopsis carries.
        found: u64,
    },
    /// The published MVCC generation disagrees with the committed state it
    /// claims to represent (see DESIGN.md §14).
    GenerationMismatch {
        /// Which published field diverged (epoch, node count, …).
        field: &'static str,
        /// Value held by the live committed state.
        expected: u64,
        /// Value the published generation carries.
        found: u64,
    },
}

impl Violation {
    /// Stable machine-readable class name (used by tests and JSON output).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::PageUnreadable { .. } => "page-unreadable",
            Violation::PageUndecodable { .. } => "page-undecodable",
            Violation::PageOverflow { .. } => "page-overflow",
            Violation::BrokenChain { .. } => "broken-chain",
            Violation::ChainCycle { .. } => "chain-cycle",
            Violation::UnreachablePage { .. } => "unreachable-page",
            Violation::StMismatch { .. } => "st-mismatch",
            Violation::BoundsMismatch { .. } => "bounds-mismatch",
            Violation::NestingViolation { .. } => "nesting-violation",
            Violation::UnbalancedString { .. } => "unbalanced-string",
            Violation::DirectoryMismatch { .. } => "directory-mismatch",
            Violation::CountMismatch { .. } => "count-mismatch",
            Violation::MissingIdEntry { .. } => "missing-id-entry",
            Violation::OrphanIdEntry { .. } => "orphan-id-entry",
            Violation::IdAddrMismatch { .. } => "id-addr-mismatch",
            Violation::ValueUnresolvable { .. } => "value-unresolvable",
            Violation::ValueHashMismatch { .. } => "value-hash-mismatch",
            Violation::MissingValuePosting { .. } => "missing-value-posting",
            Violation::OrphanValuePosting { .. } => "orphan-value-posting",
            Violation::OrphanValueRecord { .. } => "orphan-value-record",
            Violation::MissingTagPosting { .. } => "missing-tag-posting",
            Violation::OrphanTagPosting { .. } => "orphan-tag-posting",
            Violation::TagOrderViolation { .. } => "tag-order-violation",
            Violation::BTreeStructure { .. } => "btree-structure",
            Violation::RecordCorrupt { .. } => "record-corrupt",
            Violation::SuccinctEncoding { .. } => "succinct-encoding",
            Violation::RankSelectMismatch { .. } => "rank-select-mismatch",
            Violation::TagCodeOutOfRange { .. } => "tag-code-out-of-range",
            Violation::SynopsisPathCountMismatch { .. } => "synopsis-path-count-mismatch",
            Violation::GenerationMismatch { .. } => "generation-mismatch",
        }
    }

    /// JSON object for this violation.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObj::new();
        obj.str("kind", self.kind());
        match self {
            Violation::PageUnreadable { page, detail }
            | Violation::PageUndecodable { page, detail } => {
                obj.num("page", *page as u64);
                obj.str("detail", detail);
            }
            Violation::PageOverflow { page, nbytes, max } => {
                obj.num("page", *page as u64);
                obj.num("nbytes", *nbytes as u64);
                obj.num("max", *max);
            }
            Violation::BrokenChain { page, next } => {
                obj.num("page", *page as u64);
                obj.num("next", *next as u64);
            }
            Violation::ChainCycle { page } | Violation::UnreachablePage { page } => {
                obj.num("page", *page as u64);
            }
            Violation::StMismatch {
                page,
                expected,
                found,
            } => {
                obj.num("page", *page as u64);
                obj.num("expected", *expected as u64);
                obj.num("found", *found as u64);
            }
            Violation::BoundsMismatch {
                page,
                expected_lo,
                expected_hi,
                found_lo,
                found_hi,
            } => {
                obj.num("page", *page as u64);
                obj.num("expected_lo", *expected_lo as u64);
                obj.num("expected_hi", *expected_hi as u64);
                obj.num("found_lo", *found_lo as u64);
                obj.num("found_hi", *found_hi as u64);
            }
            Violation::NestingViolation {
                page,
                entry,
                detail,
            } => {
                obj.num("page", *page as u64);
                obj.num("entry", *entry as u64);
                obj.str("detail", detail);
            }
            Violation::UnbalancedString {
                opens,
                closes,
                end_level,
            } => {
                obj.num("opens", *opens);
                obj.num("closes", *closes);
                obj.num("end_level", *end_level as u64);
            }
            Violation::DirectoryMismatch {
                page,
                field,
                expected,
                found,
            } => {
                obj.num("page", *page as u64);
                obj.str("field", field);
                obj.num("expected", *expected);
                obj.num("found", *found);
            }
            Violation::CountMismatch {
                what,
                expected,
                found,
            } => {
                obj.str("what", what);
                obj.num("expected", *expected);
                obj.num("found", *found);
            }
            Violation::MissingIdEntry { dewey }
            | Violation::OrphanIdEntry { dewey }
            | Violation::MissingValuePosting { dewey }
            | Violation::OrphanValuePosting { dewey } => {
                obj.str("dewey", dewey);
            }
            Violation::IdAddrMismatch {
                dewey,
                expected,
                found,
            } => {
                obj.str("dewey", dewey);
                obj.str("expected", expected);
                obj.str("found", found);
            }
            Violation::ValueUnresolvable {
                dewey,
                offset,
                detail,
            } => {
                obj.str("dewey", dewey);
                obj.num("offset", *offset);
                obj.str("detail", detail);
            }
            Violation::ValueHashMismatch { dewey, detail } => {
                obj.str("dewey", dewey);
                obj.str("detail", detail);
            }
            Violation::OrphanValueRecord { offset } => {
                obj.num("offset", *offset);
            }
            Violation::MissingTagPosting { dewey, tag } => {
                obj.str("dewey", dewey);
                obj.num("tag", *tag as u64);
            }
            Violation::OrphanTagPosting { tag, detail }
            | Violation::TagOrderViolation { tag, detail } => {
                obj.num("tag", *tag as u64);
                obj.str("detail", detail);
            }
            Violation::BTreeStructure {
                index,
                page,
                detail,
            } => {
                obj.str("index", index);
                obj.num("page", *page as u64);
                obj.str("detail", detail);
            }
            Violation::RecordCorrupt { what, detail } => {
                obj.str("what", what);
                obj.str("detail", detail);
            }
            Violation::SuccinctEncoding { page, detail }
            | Violation::RankSelectMismatch { page, detail } => {
                obj.num("page", *page as u64);
                obj.str("detail", detail);
            }
            Violation::TagCodeOutOfRange { page, entry, code } => {
                obj.num("page", *page as u64);
                obj.num("entry", *entry as u64);
                obj.num("code", *code as u64);
            }
            Violation::SynopsisPathCountMismatch {
                path,
                expected,
                found,
            } => {
                obj.str("path", path);
                obj.num("expected", *expected);
                obj.num("found", *found);
            }
            Violation::GenerationMismatch {
                field,
                expected,
                found,
            } => {
                obj.str("field", field);
                obj.num("expected", *expected);
                obj.num("found", *found);
            }
        }
        obj.finish()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PageUnreadable { page, detail } => {
                write!(f, "page {page}: unreadable: {detail}")
            }
            Violation::PageUndecodable { page, detail } => {
                write!(f, "page {page}: undecodable: {detail}")
            }
            Violation::PageOverflow { page, nbytes, max } => {
                write!(f, "page {page}: nbytes {nbytes} exceeds content area {max}")
            }
            Violation::BrokenChain { page, next } => {
                write!(f, "page {page}: next pointer {next} outside the pool")
            }
            Violation::ChainCycle { page } => write!(f, "page {page}: chain cycles back here"),
            Violation::UnreachablePage { page } => {
                write!(f, "page {page}: not reachable from the chain head")
            }
            Violation::StMismatch {
                page,
                expected,
                found,
            } => write!(
                f,
                "page {page}: st={found}, but the previous page ends at level {expected}"
            ),
            Violation::BoundsMismatch {
                page,
                expected_lo,
                expected_hi,
                found_lo,
                found_hi,
            } => write!(
                f,
                "page {page}: header [lo,hi]=[{found_lo},{found_hi}], recomputed [{expected_lo},{expected_hi}]"
            ),
            Violation::NestingViolation {
                page,
                entry,
                detail,
            } => write!(f, "page {page} entry {entry}: {detail}"),
            Violation::UnbalancedString {
                opens,
                closes,
                end_level,
            } => write!(
                f,
                "unbalanced string: {opens} opens, {closes} closes, final level {end_level}"
            ),
            Violation::DirectoryMismatch {
                page,
                field,
                expected,
                found,
            } => write!(
                f,
                "page {page}: directory {field}={found}, raw page says {expected}"
            ),
            Violation::CountMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: stored {found}, recomputed {expected}"),
            Violation::MissingIdEntry { dewey } => {
                write!(f, "node {dewey}: no B+i entry")
            }
            Violation::OrphanIdEntry { dewey } => {
                write!(f, "B+i entry {dewey}: no such node in the structure")
            }
            Violation::IdAddrMismatch {
                dewey,
                expected,
                found,
            } => write!(f, "node {dewey}: B+i stores address {found}, node is at {expected}"),
            Violation::ValueUnresolvable {
                dewey,
                offset,
                detail,
            } => write!(
                f,
                "node {dewey}: value pointer {offset} unresolvable: {detail}"
            ),
            Violation::ValueHashMismatch { dewey, detail } => {
                write!(f, "node {dewey}: B+v hash mismatch: {detail}")
            }
            Violation::MissingValuePosting { dewey } => {
                write!(f, "node {dewey}: value present but no B+v posting")
            }
            Violation::OrphanValuePosting { dewey } => {
                write!(f, "B+v posting for {dewey}: node carries no value")
            }
            Violation::OrphanValueRecord { offset } => {
                write!(f, "data-file record at {offset}: referenced by no B+i entry")
            }
            Violation::MissingTagPosting { dewey, tag } => {
                write!(f, "node {dewey} (tag {tag}): no B+t posting")
            }
            Violation::OrphanTagPosting { tag, detail } => {
                write!(f, "B+t tag {tag}: {detail}")
            }
            Violation::TagOrderViolation { tag, detail } => {
                write!(f, "B+t tag {tag}: document order broken: {detail}")
            }
            Violation::BTreeStructure {
                index,
                page,
                detail,
            } => write!(f, "{index} page {page}: {detail}"),
            Violation::RecordCorrupt { what, detail } => write!(f, "{what}: {detail}"),
            Violation::SuccinctEncoding { page, detail } => {
                write!(f, "page {page}: succinct encoding: {detail}")
            }
            Violation::RankSelectMismatch { page, detail } => {
                write!(f, "page {page}: rank/select directory: {detail}")
            }
            Violation::TagCodeOutOfRange { page, entry, code } => {
                write!(f, "page {page} entry {entry}: tag code {code} outside the 15-bit range")
            }
            Violation::SynopsisPathCountMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "synopsis path {path}: stored count {found}, rescan says {expected}"
            ),
            Violation::GenerationMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "published generation {field}={found}, committed state says {expected}"
            ),
        }
    }
}

/// Result of one analyzer run.
#[derive(Debug)]
pub struct Report {
    /// Everything found, in discovery order.
    pub violations: Vec<Violation>,
    /// Structural pages walked.
    pub pages: u32,
    /// Element nodes derived from the string.
    pub nodes: u64,
}

impl Report {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any violation of the given [`Violation::kind`] was found.
    pub fn has_kind(&self, kind: &str) -> bool {
        self.violations.iter().any(|v| v.kind() == kind)
    }

    /// Distinct violation kinds found, in first-seen order.
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for v in &self.violations {
            if !out.contains(&v.kind()) {
                out.push(v.kind());
            }
        }
        out
    }

    /// Whole report as a JSON object.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.violations.iter().map(|v| v.to_json()).collect();
        format!(
            "{{\"clean\":{},\"pages\":{},\"nodes\":{},\"violations\":[{}]}}",
            self.is_clean(),
            self.pages,
            self.nodes,
            items.join(",")
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        write!(
            f,
            "{} page(s), {} node(s): {}",
            self.pages,
            self.nodes,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )
    }
}

/// Minimal hand-rolled JSON object builder (offline build: no serde).
struct JsonObj {
    out: String,
    first: bool,
}

impl JsonObj {
    fn new() -> JsonObj {
        JsonObj {
            out: String::from("{"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
    }

    fn str(&mut self, key: &str, value: &str) {
        self.sep();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":\"");
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn num(&mut self, key: &str, value: u64) {
        self.sep();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":");
        self.out.push_str(&value.to_string());
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}
