//! Corruption-injection suite: for every defect class the analyzer claims
//! to detect, damage a real store in exactly that way and assert the
//! matching [`Violation::kind`] is reported (extra collateral kinds are
//! allowed — damage cascades — but the primary class must be present).

use std::sync::Arc;

use nok_core::dewey::Dewey;
use nok_core::page::{CLOSE_BYTE, HEADER_SIZE, OFF_LO, OFF_NBYTES, OFF_NEXT, OFF_ST};
use nok_core::physical::IdRecord;
use nok_core::store::{BuildOptions, NodeAddr};
use nok_core::values::{hash_key, DataFile};
use nok_core::LockDataFile;
use nok_core::XmlDb;
use nok_pager::codec::{get_u16, put_u16, put_u32};
use nok_pager::{BufferPool, MemStorage, PageId};
use nok_verify::{verify_chain, verify_db, verify_store, VerifyOptions};

const BIB: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>S.</first></author><price>39.95</price></book>
</bib>"#;

/// Small structural pages and a wide document so the chain has several
/// pages to damage.
fn tiny_db() -> XmlDb<MemStorage> {
    let mut xml = String::from("<log>");
    for i in 0..30 {
        xml.push_str(&format!("<rec><msg>m{i}</msg><lvl>info</lvl></rec>"));
    }
    xml.push_str("</log>");
    let db = XmlDb::build_in_memory_with(&xml, BuildOptions::default(), 64).unwrap();
    assert!(db.store().chain_len() >= 4, "need a multi-page chain");
    db
}

/// Page id at chain position `i` (chain order, not allocation order).
fn chain_page(db: &XmlDb<MemStorage>, i: u32) -> PageId {
    db.store().dir_at(i).unwrap().id
}

/// Overwrite raw bytes of one structural page.
fn patch(db: &XmlDb<MemStorage>, page: PageId, f: impl FnOnce(&mut [u8])) {
    let handle = db.store().pool().get(page).unwrap();
    f(&mut handle.write());
}

#[test]
fn st_corruption_is_flagged() {
    let db = tiny_db();
    let pid = chain_page(&db, 1);
    patch(&db, pid, |buf| {
        let st = get_u16(buf, OFF_ST);
        put_u16(buf, OFF_ST, st + 3);
    });
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("st-mismatch"), "{rep}");
    // Levels are recomputed from the running level, not the stored st, so a
    // wrong st must not cascade into bogus bounds violations.
    assert!(!rep.has_kind("bounds-mismatch"), "{rep}");
    // The in-memory directory still mirrors the build-time header, so the
    // store-level pass additionally reports the directory desync.
    let rep = verify_store(db.store());
    assert!(rep.has_kind("directory-mismatch"), "{rep}");
}

#[test]
fn stale_empty_page_st_is_flagged() {
    // Delete a multi-page subtree so the chain keeps empty pages, then give
    // one of them a plausible-looking level instead of the canonical
    // sentinel. Both the raw scan and the directory cross-check must object.
    let mut xml = String::from("<r><victim>");
    for i in 0..60 {
        xml.push_str(&format!("<v>{i}</v>"));
    }
    xml.push_str("</victim><keep>yes</keep></r>");
    let mut db = XmlDb::build_in_memory_with(&xml, BuildOptions::default(), 64).unwrap();
    db.delete_subtree(&Dewey::from_components(vec![0, 0]))
        .unwrap();
    let empty = (0..db.store().chain_len() as u32)
        .map(|r| db.store().dir_at(r).unwrap())
        .find(|e| e.entries == 0)
        .expect("multi-page delete leaves an empty page");
    assert_eq!(empty.st, nok_core::page::EMPTY_PAGE_ST);
    patch(&db, empty.id, |buf| put_u16(buf, OFF_ST, 2));
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("st-mismatch"), "{rep}");
    let rep = verify_store(db.store());
    assert!(rep.has_kind("directory-mismatch"), "{rep}");
}

#[test]
fn bounds_corruption_is_flagged() {
    let db = tiny_db();
    let pid = chain_page(&db, 1);
    patch(&db, pid, |buf| {
        let lo = get_u16(buf, OFF_LO);
        put_u16(buf, OFF_LO, lo + 1);
    });
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("bounds-mismatch"), "{rep}");
    assert!(!rep.has_kind("st-mismatch"), "{rep}");
}

#[test]
fn broken_next_pointer_is_flagged() {
    let db = tiny_db();
    let pid = chain_page(&db, 0);
    patch(&db, pid, |buf| put_u32(buf, OFF_NEXT, 9_999));
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("broken-chain"), "{rep}");
}

#[test]
fn chain_cycle_is_flagged() {
    let db = tiny_db();
    let pid = chain_page(&db, 2);
    patch(&db, pid, |buf| put_u32(buf, OFF_NEXT, 0));
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("chain-cycle"), "{rep}");
}

#[test]
fn nbytes_overflow_is_flagged() {
    let db = tiny_db();
    let pid = chain_page(&db, 1);
    patch(&db, pid, |buf| {
        let len = buf.len() as u16;
        put_u16(buf, OFF_NBYTES, len); // claims more than page_size - header
    });
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("page-overflow"), "{rep}");
}

#[test]
fn truncated_entry_is_flagged() {
    let db = tiny_db();
    let pid = chain_page(&db, 1);
    patch(&db, pid, |buf| {
        // Append a lone open high-byte (opens are 2 bytes) as the last
        // content byte: decoding must fail without panicking.
        let nbytes = get_u16(buf, OFF_NBYTES) as usize;
        assert!(HEADER_SIZE + nbytes < buf.len(), "page has slack");
        buf[HEADER_SIZE + nbytes] = 0x80 | 1;
        put_u16(buf, OFF_NBYTES, nbytes as u16 + 1);
    });
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("page-undecodable"), "{rep}");
}

#[test]
fn stray_close_is_a_nesting_violation() {
    let db = tiny_db();
    let last = chain_page(&db, db.store().chain_len() - 1);
    patch(&db, last, |buf| {
        // One extra `)` after the root closes: an interval underflow.
        let nbytes = get_u16(buf, OFF_NBYTES) as usize;
        assert!(HEADER_SIZE + nbytes < buf.len(), "page has slack");
        buf[HEADER_SIZE + nbytes] = CLOSE_BYTE;
        put_u16(buf, OFF_NBYTES, nbytes as u16 + 1);
    });
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("nesting-violation"), "{rep}");
    assert!(rep.has_kind("unbalanced-string"), "{rep}");
}

#[test]
fn dropped_closes_unbalance_the_string() {
    let db = tiny_db();
    let last = chain_page(&db, db.store().chain_len() - 1);
    patch(&db, last, |buf| {
        // Cut the final close parenthesis: opens > closes, end level != 0.
        let nbytes = get_u16(buf, OFF_NBYTES);
        assert!(nbytes >= 1);
        put_u16(buf, OFF_NBYTES, nbytes - 1);
    });
    let rep = verify_chain(db.store().pool());
    assert!(rep.has_kind("unbalanced-string"), "{rep}");
}

// ---------------------------------------------------------------------
// Succinct-backend injections: canonical-form and tag-code damage in the
// bit-packed page encoding.
// ---------------------------------------------------------------------

/// Like [`tiny_db`] but stored with the bit-packed backend — which packs
/// several times more entries per page, so the document is wider to keep
/// the chain multi-page.
fn tiny_succinct_db() -> XmlDb<MemStorage> {
    let mut xml = String::from("<log>");
    for i in 0..120 {
        xml.push_str(&format!("<rec><msg>m{i}</msg><lvl>info</lvl></rec>"));
    }
    xml.push_str("</log>");
    let db = XmlDb::build_in_memory_with(
        &xml,
        BuildOptions::with_backend(nok_core::BackendKind::Succinct),
        64,
    )
    .unwrap();
    assert!(db.store().chain_len() >= 4, "need a multi-page chain");
    db
}

fn succinct_chain_report(db: &XmlDb<MemStorage>) -> nok_verify::Report {
    nok_verify::verify_chain_with(db.store().pool(), nok_core::BackendKind::Succinct)
}

#[test]
fn succinct_store_starts_clean() {
    let db = tiny_succinct_db();
    let rep = succinct_chain_report(&db);
    assert!(rep.is_clean(), "{rep}");
}

#[test]
fn succinct_padding_bit_is_flagged() {
    let db = tiny_succinct_db();
    // Find a page whose entry count is not a byte multiple, so the last
    // parens byte has padding bits, and set the topmost (always padding
    // when n % 8 != 0).
    let victim = (0..db.store().chain_len() as u32)
        .map(|r| db.store().dir_at(r).unwrap())
        .find(|e| e.entries > 0 && e.entries % 8 != 0)
        .expect("some page has a ragged entry count");
    patch(&db, victim.id, |buf| {
        let n = victim.entries as usize;
        buf[HEADER_SIZE + 2 + (n - 1) / 8] |= 0x80;
    });
    let rep = succinct_chain_report(&db);
    assert!(rep.has_kind("succinct-encoding"), "{rep}");
}

#[test]
fn succinct_zero_count_with_content_is_flagged() {
    let db = tiny_succinct_db();
    let pid = chain_page(&db, 1);
    patch(&db, pid, |buf| {
        // Zero the entry-count word while nbytes still claims content: the
        // canonical empty page has nbytes == 0.
        put_u16(buf, HEADER_SIZE, 0);
    });
    let rep = succinct_chain_report(&db);
    assert!(rep.has_kind("succinct-encoding"), "{rep}");
}

#[test]
fn succinct_truncated_tag_stream_is_flagged() {
    let db = tiny_succinct_db();
    let victim = (0..db.store().chain_len() as u32)
        .map(|r| db.store().dir_at(r).unwrap())
        .find(|e| e.entries > 0)
        .unwrap();
    patch(&db, victim.id, |buf| {
        // Cut the last content byte: the varint tag stream no longer covers
        // every open entry.
        let nbytes = get_u16(buf, OFF_NBYTES);
        assert!(nbytes >= 4);
        put_u16(buf, OFF_NBYTES, nbytes - 1);
    });
    let rep = succinct_chain_report(&db);
    assert!(rep.has_kind("succinct-encoding"), "{rep}");
}

#[test]
fn succinct_tag_code_out_of_range_is_flagged() {
    use nok_core::page::{self, PageHeader, NO_PAGE};
    // Hand-build a single balanced page `()` whose only tag code is 0xFFFF —
    // a wellformed varint, but outside the 15-bit tag-code space.
    let pool = BufferPool::new(MemStorage::with_page_size(64));
    let (_pid, handle) = pool.allocate().unwrap();
    {
        let mut buf = handle.write();
        let content: [u8; 6] = [2, 0, 0x01, 0xFF, 0xFF, 0x03];
        page::write_header(
            &mut buf,
            &PageHeader {
                st: 0,
                lo: 0,
                hi: 1,
                next: NO_PAGE,
                nbytes: content.len() as u16,
            },
        );
        buf[HEADER_SIZE..HEADER_SIZE + content.len()].copy_from_slice(&content);
    }
    let rep = nok_verify::verify_chain_with(&pool, nok_core::BackendKind::Succinct);
    assert!(rep.has_kind("tag-code-out-of-range"), "{rep}");
}

// ---------------------------------------------------------------------
// Index-layer injections (default page size; damage via the index APIs).
// ---------------------------------------------------------------------

#[test]
fn orphaned_data_record_is_flagged_in_strict_mode() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    db.data_cell().lock_data().put("orphan text").unwrap();
    let lenient = verify_db(&db, VerifyOptions::default());
    assert!(
        lenient.is_clean(),
        "lazy deletion makes orphans legal: {lenient}"
    );
    let strict = verify_db(&db, VerifyOptions::strict());
    assert!(strict.has_kind("orphan-value-record"), "{strict}");
}

#[test]
fn orphan_id_entry_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let ghost = Dewey::from_components(vec![0, 99]);
    let rec = IdRecord {
        addr: NodeAddr { page: 0, entry: 0 },
        value: None,
    };
    db.bt_id().insert(&ghost.to_key(), &rec.to_bytes()).unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("orphan-id-entry"), "{rep}");
}

#[test]
fn missing_id_entry_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let victim = db.query("//author").unwrap()[0].dewey.clone();
    db.bt_id().delete(&victim.to_key(), None).unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("missing-id-entry"), "{rep}");
}

#[test]
fn wrong_id_address_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let victim = db.query("//author").unwrap()[0].dewey.clone();
    db.bt_id().delete(&victim.to_key(), None).unwrap();
    let rec = IdRecord {
        addr: NodeAddr {
            page: 0,
            entry: 4_000,
        },
        value: None,
    };
    db.bt_id()
        .insert(&victim.to_key(), &rec.to_bytes())
        .unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("id-addr-mismatch"), "{rep}");
}

#[test]
fn missing_tag_posting_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let (k, v) = db.bt_tag().iter_all().unwrap().next().unwrap().unwrap();
    db.bt_tag().delete(&k, Some(&v)).unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("missing-tag-posting"), "{rep}");
    assert!(rep.has_kind("count-mismatch"), "{rep}");
}

#[test]
fn missing_value_posting_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let (k, v) = db.bt_val().iter_all().unwrap().next().unwrap().unwrap();
    db.bt_val().delete(&k, Some(&v)).unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("missing-value-posting"), "{rep}");
}

#[test]
fn orphan_value_posting_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    // The root element holds no text value, so a posting for it is stray.
    db.bt_val()
        .insert(&hash_key("ghost"), &Dewey::root().to_key())
        .unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("orphan-value-posting"), "{rep}");
}

#[test]
fn wrong_value_hash_is_flagged() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    // A price node carries "65.95"; file a posting for it under a hash
    // that does not hash its value.
    let price = db.query("//price").unwrap()[0].dewey.clone();
    db.bt_val()
        .insert(&hash_key("not the value"), &price.to_key())
        .unwrap();
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("value-hash-mismatch"), "{rep}");
}

#[test]
fn btree_page_corruption_is_flagged() {
    // Build with retained pool handles so the tag tree's pages can be
    // damaged directly (XmlDb exposes no mutable pool access).
    let mk = || Arc::new(BufferPool::new(MemStorage::new()));
    let tag_pool = mk();
    let db = XmlDb::build_with_pools(
        BIB,
        BuildOptions::default(),
        mk(),
        Arc::clone(&tag_pool),
        mk(),
        mk(),
        DataFile::in_memory(),
    )
    .unwrap();

    // META page 0 stores the root id at offset 4 (LE); the tag tree is
    // small enough that the root is a single leaf.
    let root = {
        let meta = tag_pool.get(0).unwrap();
        let root = nok_pager::codec::get_u32(&meta.read(), 4);
        root
    };
    {
        let page = tag_pool.get(root).unwrap();
        let mut buf = page.write();
        // Swap the first and last slots: the keys differ (several distinct
        // tags), so the leaf's key order breaks.
        let ncells = get_u16(&buf, 1) as usize;
        assert!(ncells >= 2);
        let a = get_u16(&buf, 9);
        let b = get_u16(&buf, 9 + 2 * (ncells - 1));
        put_u16(&mut buf, 9, b);
        put_u16(&mut buf, 9 + 2 * (ncells - 1), a);
    }
    let rep = verify_db(&db, VerifyOptions::default());
    assert!(rep.has_kind("btree-structure"), "{rep}");
}

#[test]
fn reports_carry_kinds_and_json() {
    let db = tiny_db();
    let pid = chain_page(&db, 1);
    patch(&db, pid, |buf| {
        let st = get_u16(buf, OFF_ST);
        put_u16(buf, OFF_ST, st + 1);
    });
    let rep = verify_chain(db.store().pool());
    assert!(!rep.is_clean());
    assert!(rep.kinds().contains(&"st-mismatch"));
    let json = rep.to_json();
    assert!(json.contains("\"clean\":false"), "{json}");
    assert!(json.contains("\"kind\":\"st-mismatch\""), "{json}");
}
