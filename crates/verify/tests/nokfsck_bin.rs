//! End-to-end tests for the `nokfsck` binary: exit codes and JSON output
//! over real on-disk databases, including one corrupted at the file level.

use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::process::Command;

use nok_core::XmlDb;

const BIB: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
</bib>"#;

/// struct.pg layout: 16-byte superblock, then fixed-size pages.
const SUPERBLOCK: u64 = 16;

fn fsck(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nokfsck"))
        .args(args)
        .output()
        .unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nokfsck-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn clean_store_exits_zero() {
    let dir = fresh_dir("clean");
    XmlDb::create_on_disk(&dir, BIB).unwrap().flush().unwrap();
    let out = fsck(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("clean"), "{text}");

    let out = fsck(&["--json", "--strict", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.starts_with("{\"clean\":true,"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_exits_one_with_violations() {
    let dir = fresh_dir("corrupt");
    XmlDb::create_on_disk(&dir, BIB).unwrap().flush().unwrap();
    // Flip page 0's st field (bytes 0-1 past the superblock): the chain
    // head must start at level 0.
    let mut f = OpenOptions::new()
        .write(true)
        .open(dir.join("struct.pg"))
        .unwrap();
    f.seek(SeekFrom::Start(SUPERBLOCK)).unwrap();
    f.write_all(&7u16.to_le_bytes()).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let out = fsck(&["--json", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"clean\":false"), "{json}");
    assert!(json.contains("\"kind\":\"st-mismatch\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unopenable_store_with_clean_chain_exits_two() {
    let dir = fresh_dir("degraded");
    XmlDb::create_on_disk(&dir, BIB).unwrap().flush().unwrap();
    // Trash an index file: the database no longer opens, but struct.pg is
    // intact, so nokfsck degrades to a raw chain scan. Even when that scan
    // is clean the exit code must signal the open failure.
    std::fs::write(dir.join("tags.idx"), b"garbage, not a page file").unwrap();

    let out = fsck(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("raw chain scan"), "{err}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("chain scan"), "{text}");
    assert!(text.contains("clean"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_directory_exits_two() {
    let out = fsck(&["/nonexistent/nok-db-dir"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn bad_usage_exits_two() {
    assert_eq!(fsck(&[]).status.code(), Some(2));
    assert_eq!(fsck(&["--bogus-flag", "x"]).status.code(), Some(2));
}
