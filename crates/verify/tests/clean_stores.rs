//! The analyzer must report *zero* violations on every store the system
//! itself produces: fresh builds (all five paper datasets, tiny pages,
//! attribute-heavy documents), stores after randomized update workloads,
//! and on-disk databases reopened from files.

use nok_core::{BackendKind, BuildOptions, Dewey, XmlDb};
use nok_datagen::{generate, DatasetKind};
use nok_pager::MemStorage;
use nok_verify::{verify_chain, verify_db, verify_store, VerifyOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BIB: &str = r#"<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>S.</first></author>
    <author><last>Buneman</last><first>P.</first></author><price>39.95</price></book>
  <article><title>Succinct</title><year>2004</year></article>
</bib>"#;

/// Every layer of the analyzer, strict mode, must come back clean.
fn assert_clean_strict(db: &XmlDb<MemStorage>, what: &str) {
    let chain = verify_chain(db.store().pool());
    assert!(chain.is_clean(), "{what}: chain: {chain}");
    let store = verify_store(db.store());
    assert!(store.is_clean(), "{what}: store: {store}");
    let full = verify_db(db, VerifyOptions::strict());
    assert!(full.is_clean(), "{what}: db: {full}");
    assert!(full.nodes > 0, "{what}: analyzer saw no nodes");
}

#[test]
fn fresh_build_is_clean() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    assert_clean_strict(&db, "bib");
}

#[test]
fn all_paper_datasets_are_clean() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, 0.01);
        let db = XmlDb::build_in_memory(&ds.xml).unwrap();
        assert_clean_strict(&db, kind.name());
    }
}

#[test]
fn tiny_pages_are_clean() {
    // Small structural pages exercise the page-split and st/lo/hi logic
    // hardest: every few entries starts a new page.
    for page_size in [64usize, 96, 128, 256] {
        let db = XmlDb::build_in_memory_with(BIB, BuildOptions::default(), page_size).unwrap();
        assert_clean_strict(&db, &format!("bib@{page_size}"));
    }
}

#[test]
fn randomized_update_workload_stays_clean() {
    let xml = {
        let mut s = String::from("<log>");
        for i in 0..24 {
            s.push_str(&format!("<rec id=\"r{i}\"><msg>event {i}</msg></rec>"));
        }
        s.push_str("</log>");
        s
    };
    let mut db = XmlDb::build_in_memory(&xml).unwrap();
    let mut rng = StdRng::seed_from_u64(0xF5C);
    let mut n_children = 24u32;
    let mut inserts = 0u32;
    for step in 0..40 {
        if rng.gen_bool(0.4) && n_children > 4 {
            // insert_last_child assigns index = current child count, so a
            // deleted middle child's id would be reused on the next insert
            // (a Dewey collision). Deleting only the *last* child keeps the
            // child range contiguous and the ids consistent.
            n_children -= 1;
            db.delete_subtree(&Dewey::from_components(vec![0, n_children]))
                .unwrap();
        } else {
            let tag = if rng.gen_bool(0.5) { "note" } else { "extra" };
            let new = db
                .insert_last_child(
                    &Dewey::root(),
                    &format!("<{tag}><sub>step {step}</sub></{tag}>"),
                )
                .unwrap();
            assert_eq!(*new.components().last().unwrap(), n_children);
            n_children += 1;
            inserts += 1;
        }
        // Lenient mode after updates: data-file deletion is lazy (orphan
        // records are expected) and tag re-append breaks group order.
        let rep = verify_db(&db, VerifyOptions::default());
        assert!(rep.is_clean(), "step {step}: {rep}");
    }
    assert!(inserts > 5);
}

/// Bit-packed stores must satisfy every invariant the classic ones do, plus
/// the succinct-specific ones (canonical encoding, rank/select directory
/// agreement, tag-code bounds) — across all five paper datasets and two
/// page sizes.
#[test]
fn succinct_builds_are_clean() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, 0.01);
        for page_size in [256usize, 1024] {
            let db = XmlDb::build_in_memory_with(
                &ds.xml,
                BuildOptions::with_backend(BackendKind::Succinct),
                page_size,
            )
            .unwrap();
            let what = format!("{}@{page_size}", kind.name());
            let chain = nok_verify::verify_chain_with(db.store().pool(), BackendKind::Succinct);
            assert!(chain.is_clean(), "{what}: chain: {chain}");
            let store = verify_store(db.store());
            assert!(store.is_clean(), "{what}: store: {store}");
            let full = verify_db(&db, VerifyOptions::strict());
            assert!(full.is_clean(), "{what}: db: {full}");
            assert!(full.nodes > 0, "{what}: analyzer saw no nodes");
        }
    }
}

/// Updates against a succinct store must keep it verifiably clean: splices
/// re-encode pages in the bit-packed format, and the analyzer re-parses
/// them canonically.
#[test]
fn succinct_update_workload_stays_clean() {
    let mut xml = String::from("<log>");
    for i in 0..24 {
        xml.push_str(&format!("<rec id=\"r{i}\"><msg>event {i}</msg></rec>"));
    }
    xml.push_str("</log>");
    let mut db =
        XmlDb::build_in_memory_with(&xml, BuildOptions::with_backend(BackendKind::Succinct), 128)
            .unwrap();
    let mut rng = StdRng::seed_from_u64(0x5CC);
    let mut n_children = 24u32;
    for step in 0..30 {
        if rng.gen_bool(0.4) && n_children > 4 {
            n_children -= 1;
            db.delete_subtree(&Dewey::from_components(vec![0, n_children]))
                .unwrap();
        } else {
            db.insert_last_child(
                &Dewey::root(),
                &format!("<note><sub>step {step}</sub></note>"),
            )
            .unwrap();
            n_children += 1;
        }
        let rep = verify_db(&db, VerifyOptions::default());
        assert!(rep.is_clean(), "step {step}: {rep}");
    }
}

#[test]
fn on_disk_store_is_clean_after_reopen() {
    let dir = std::env::temp_dir().join(format!("nok-verify-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = nok_core::XmlDb::create_on_disk(&dir, BIB).unwrap();
        db.flush().unwrap();
        let rep = verify_db(&db, VerifyOptions::strict());
        assert!(rep.is_clean(), "before close: {rep}");
    }
    let db = nok_core::XmlDb::open_dir(&dir).unwrap();
    let rep = verify_db(&db, VerifyOptions::strict());
    assert!(rep.is_clean(), "after reopen: {rep}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_json_shape() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let rep = verify_db(&db, VerifyOptions::strict());
    let json = rep.to_json();
    assert!(json.starts_with("{\"clean\":true,"), "{json}");
    assert!(json.contains("\"violations\":[]"), "{json}");
}
