//! The rule engine: evaluate every rule over the per-function models.
//!
//! Two-phase design:
//!
//! 1. **Local scan** — walk each function's event list with a scope-aware
//!    held-lock set, recording ordered acquisition pairs, call sites with
//!    their held snapshot, and the simple per-event findings (atomic
//!    orderings, panics, macros, raw page IO, plan operators).
//! 2. **Call-graph fixpoint** — compute each function's transitive
//!    may-acquire set and turn call sites made *while holding a lock* into
//!    additional ordered pairs, so an out-of-order acquisition hidden one or
//!    more calls deep is still caught.
//!
//! Pairs are then checked against the declared hierarchy: a lock may only be
//! acquired while every held lock has a strictly smaller rank, and no class
//! may be re-entered (`lock-reentry` — the pool's shard locks and the
//! poison-recovering `Mutex` helpers are not re-entrant).

use std::collections::HashMap;

use crate::comments::CommentMap;
use crate::config::{self, AcqMode, LockClass};
use crate::model::{Event, FnModel};
use crate::report::Finding;

/// Calls with more workspace definitions than this are treated as opaque
/// rather than unioned: propagating through very common names (`new`, `get`,
/// `run`) would manufacture call edges that don't exist.
const MAX_CALL_CANDIDATES: usize = 4;

/// One ordered acquisition observation: `acquired` was taken while `held`
/// was held, at `line` (optionally through a call chain entered at `via`).
#[derive(Debug, Clone)]
struct Pair {
    held: LockClass,
    acquired: LockClass,
    /// How `acquired` was taken. Call-graph pairs (`via` set) default to
    /// `Write` — conservative for the ordering rules, which ignore mode;
    /// the mode-aware `guard-across-writer` rule only consults local pairs.
    acq_mode: AcqMode,
    line: usize,
    via: Option<String>,
}

#[derive(Debug)]
struct CallSite {
    name: String,
    qual: Option<String>,
    recv: Option<String>,
    held: Vec<LockClass>,
    line: usize,
}

#[derive(Debug, Default)]
struct FnScan {
    pairs: Vec<Pair>,
    calls: Vec<CallSite>,
    /// Bitmask over lock ranks of everything acquired locally.
    local_acquires: u64,
}

fn bit(c: LockClass) -> u64 {
    1u64 << c.rank
}

fn classes_of(mask: u64) -> Vec<LockClass> {
    config::ALL_CLASSES
        .iter()
        .copied()
        .filter(|c| mask & bit(*c) != 0)
        .collect()
}

/// Phase 1: scope-aware walk of one function.
fn scan_fn(m: &FnModel) -> FnScan {
    struct Held {
        class: LockClass,
        let_bound: bool,
        var: Option<String>,
        depth: usize,
    }

    let mut scan = FnScan::default();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;

    for ev in &m.events {
        match ev {
            Event::EnterBlock => depth += 1,
            Event::ExitBlock => {
                held.retain(|h| h.depth < depth);
                depth = depth.saturating_sub(1);
            }
            Event::EndStmt => held.retain(|h| !(h.depth == depth && !h.let_bound)),
            Event::Release { var, .. } => {
                // `drop(var)` releases the most recent guard bound to `var`.
                if let Some(pos) = held
                    .iter()
                    .rposition(|h| h.var.as_deref() == Some(var.as_str()))
                {
                    held.remove(pos);
                }
            }
            Event::Acquire {
                class,
                mode,
                let_bound,
                var,
                line,
            } => {
                for h in &held {
                    scan.pairs.push(Pair {
                        held: h.class,
                        acquired: *class,
                        acq_mode: *mode,
                        line: *line,
                        via: None,
                    });
                }
                scan.local_acquires |= bit(*class);
                held.push(Held {
                    class: *class,
                    let_bound: *let_bound,
                    var: var.clone(),
                    depth,
                });
            }
            Event::Call {
                name,
                qual,
                recv,
                line,
            } => scan.calls.push(CallSite {
                name: name.clone(),
                qual: qual.clone(),
                recv: recv.clone(),
                held: held.iter().map(|h| h.class).collect(),
                line: *line,
            }),
            _ => {}
        }
    }
    scan
}

/// Method names that collide with the standard collections/primitives.
/// A bare `x.get(..)` where `x` is a local almost always means
/// HashMap/slice/Option, and resolving it to a same-named workspace
/// function manufactures call edges out of thin air.
const STD_METHOD_NAMES: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "entry",
    "drain",
    "retain",
    "extend",
    "append",
    "split_off",
    "first",
    "last",
    "next",
    "take",
    "replace",
    "join",
    "send",
    "recv",
    "read",
    "write",
    "lock",
    "try_lock",
    "flush",
    "clone",
    "drop",
];

/// Resolve a call site to candidate function indices.
///
/// Precision rules (each one exists because its absence produced concrete
/// false positives on this workspace):
/// - Candidates must live in a crate the caller's crate can depend on.
/// - `drop` never resolves — it is a release, modeled separately.
/// - A qualified call (`Type::f`, `module::f`) resolves only within its
///   qualifier; an empty match means an external/std target, not "anyone".
/// - A bare method call on a non-`self` receiver resolves only for names
///   that don't collide with the standard collections (`STD_METHOD_NAMES`).
fn resolve(
    caller: &FnModel,
    call: &CallSite,
    by_name: &HashMap<&str, Vec<usize>>,
    models: &[FnModel],
) -> Vec<usize> {
    if call.name == "drop" {
        return Vec::new();
    }
    let Some(all) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    let reachable: Vec<usize> = all
        .iter()
        .copied()
        .filter(|i| config::crate_reachable(&caller.krate, &models[*i].krate))
        .collect();

    let cands: Vec<usize> = if let Some(q) = &call.qual {
        if q == "Self" {
            reachable
                .iter()
                .copied()
                .filter(|i| {
                    models[*i].self_ty == caller.self_ty && models[*i].krate == caller.krate
                })
                .collect()
        } else if q.chars().next().is_some_and(char::is_uppercase) {
            // `Type::f` — match by impl type name.
            reachable
                .iter()
                .copied()
                .filter(|i| models[*i].self_ty.as_deref() == Some(q.as_str()))
                .collect()
        } else {
            // `module::f` — a free function; prefer the caller's crate.
            let free: Vec<usize> = reachable
                .iter()
                .copied()
                .filter(|i| models[*i].self_ty.is_none())
                .collect();
            let same_crate: Vec<usize> = free
                .iter()
                .copied()
                .filter(|i| models[*i].krate == caller.krate)
                .collect();
            if same_crate.is_empty() {
                free
            } else {
                same_crate
            }
        }
    } else if call.recv.as_deref() == Some("self") {
        let same_impl: Vec<usize> = reachable
            .iter()
            .copied()
            .filter(|i| models[*i].self_ty == caller.self_ty && models[*i].krate == caller.krate)
            .collect();
        if !same_impl.is_empty() {
            same_impl
        } else {
            reachable
                .iter()
                .copied()
                .filter(|i| models[*i].krate == caller.krate)
                .collect()
        }
    } else if call.recv.is_some() {
        // Method on an arbitrary local: no type information. Resolve only
        // names that cannot be mistaken for std-collection methods.
        if STD_METHOD_NAMES.contains(&call.name.as_str()) {
            Vec::new()
        } else {
            reachable
        }
    } else {
        // Unqualified free call: almost always same-crate.
        let same_crate: Vec<usize> = reachable
            .iter()
            .copied()
            .filter(|i| models[*i].krate == caller.krate)
            .collect();
        if same_crate.is_empty() {
            reachable
        } else {
            same_crate
        }
    };

    if cands.len() > MAX_CALL_CANDIDATES {
        Vec::new()
    } else {
        cands
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "unimplemented"];
const STRAY_MACROS: &[&str] = &["dbg", "todo"];

/// Run every rule. `comments` is keyed by workspace-relative path.
pub fn run(models: &[FnModel], comments: &HashMap<String, CommentMap>) -> (Vec<Finding>, usize) {
    let scans: Vec<FnScan> = models.iter().map(scan_fn).collect();

    // Call-target index over non-test functions.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, m) in models.iter().enumerate() {
        if !m.in_test {
            by_name.entry(m.name.as_str()).or_default().push(i);
        }
    }

    // Cache call resolutions, then compute transitive may-acquire sets.
    let resolved: Vec<Vec<Vec<usize>>> = models
        .iter()
        .enumerate()
        .map(|(i, m)| {
            scans[i]
                .calls
                .iter()
                .map(|c| resolve(m, c, &by_name, models))
                .collect()
        })
        .collect();

    let mut acquires: Vec<u64> = scans.iter().map(|s| s.local_acquires).collect();
    loop {
        let mut changed = false;
        for i in 0..models.len() {
            let mut mask = acquires[i];
            for targets in &resolved[i] {
                for t in targets {
                    mask |= acquires[*t];
                }
            }
            if mask != acquires[i] {
                acquires[i] = mask;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let empty = CommentMap::default();
    let mut allows_used = 0usize;

    let push = |f: Finding,
                comments: &HashMap<String, CommentMap>,
                allows_used: &mut usize,
                findings: &mut Vec<Finding>| {
        let cm = comments.get(&f.file).unwrap_or(&empty);
        if cm.is_allowed(f.rule, f.line) {
            *allows_used += 1;
        } else {
            findings.push(f);
        }
    };

    for (i, m) in models.iter().enumerate() {
        let scan = &scans[i];

        // ---- Lock rules (non-test code only: models and stress tests
        // intentionally poke internals out of order). ----
        if !m.in_test {
            let mut pairs: Vec<Pair> = scan.pairs.clone();
            for (c, targets) in scan.calls.iter().zip(&resolved[i]) {
                if c.held.is_empty() {
                    continue;
                }
                let mut callee_mask = 0u64;
                for t in targets {
                    callee_mask |= acquires[*t];
                }
                for acq in classes_of(callee_mask) {
                    for h in &c.held {
                        pairs.push(Pair {
                            held: *h,
                            acquired: acq,
                            acq_mode: AcqMode::Write,
                            line: c.line,
                            via: Some(c.name.clone()),
                        });
                    }
                }
            }

            let mut seen: Vec<(u32, u32, usize)> = Vec::new();
            for p in &pairs {
                let key = (p.held.rank, p.acquired.rank, p.line);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                let via = p
                    .via
                    .as_ref()
                    .map(|v| format!(" (via call to `{v}`)"))
                    .unwrap_or_default();
                // Mode-aware MVCC rule: a snapshot pin held across a
                // *write*-mode acquisition of the directory (the writer's
                // structural lock) is writer work under a reader guard.
                if p.held.rank == config::PAGER_MVCC_EPOCH.rank
                    && p.acquired.rank == config::CORE_DIRECTORY.rank
                    && p.acq_mode == AcqMode::Write
                    && p.via.is_none()
                {
                    push(
                        Finding {
                            rule: "guard-across-writer",
                            file: m.file.clone(),
                            line: p.line,
                            message: format!(
                                "`{}` takes the directory write lock while holding a \
                                 snapshot pin; the pin keeps retired generations alive \
                                 and its view predates the mutation — drop the guard \
                                 before writer work (see DESIGN.md §14)",
                                m.name
                            ),
                            lock_path: Some(format!("{} -> {}", p.held.name, p.acquired.name)),
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                    continue;
                }
                if p.held.rank == p.acquired.rank {
                    // The epoch pin is a refcount: pinning again under a
                    // held pin is re-entrant by design, not a reentry bug.
                    if p.held.rank == config::PAGER_MVCC_EPOCH.rank {
                        continue;
                    }
                    push(
                        Finding {
                            rule: "lock-reentry",
                            file: m.file.clone(),
                            line: p.line,
                            message: format!(
                                "`{}` re-acquires {} while already holding it{via}; \
                                 the pool shard and helper locks are not re-entrant",
                                m.name, p.held.name
                            ),
                            lock_path: Some(format!("{} -> {}", p.held.name, p.acquired.name)),
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                } else if p.acquired.rank < p.held.rank {
                    push(
                        Finding {
                            rule: "lock-order",
                            file: m.file.clone(),
                            line: p.line,
                            message: format!(
                                "`{}` acquires {} (rank {}) while holding {} (rank {}){via}; \
                                 the declared hierarchy requires strictly increasing rank",
                                m.name, p.acquired.name, p.acquired.rank, p.held.name, p.held.rank
                            ),
                            lock_path: Some(format!("{} -> {}", p.held.name, p.acquired.name)),
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
            }

            // A snapshot pin held across a transaction entry point is the
            // other `guard-across-writer` shape: the writer publishes a new
            // generation while this thread's view pins the old one.
            for c in &scan.calls {
                if config::is_writer_entry(&c.name)
                    && c.held
                        .iter()
                        .any(|h| h.rank == config::PAGER_MVCC_EPOCH.rank)
                {
                    push(
                        Finding {
                            rule: "guard-across-writer",
                            file: m.file.clone(),
                            line: c.line,
                            message: format!(
                                "`{}` calls writer entry point `{}` while holding a \
                                 snapshot pin; drop the guard before beginning a \
                                 transaction (see DESIGN.md §14)",
                                m.name, c.name
                            ),
                            lock_path: Some(format!(
                                "{} -> txn:{}",
                                config::PAGER_MVCC_EPOCH.name,
                                c.name
                            )),
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
            }
        }

        // ---- Per-event rules. ----
        let lock_unwrap_lines: Vec<usize> = m
            .events
            .iter()
            .filter_map(|e| match e {
                Event::LockUnwrap { line } => Some(*line),
                _ => None,
            })
            .collect();

        let mut seqlock_loads: Vec<usize> = Vec::new();
        let mut seqlock_writes = 0usize;

        for ev in &m.events {
            match ev {
                Event::Atomic {
                    field,
                    op,
                    orderings,
                    line,
                } if !m.in_test => {
                    if config::CRITICAL_ATOMICS.contains(&field.as_str())
                        && orderings.iter().any(|o| o == "Relaxed")
                    {
                        push(
                            Finding {
                                rule: "atomic-ordering",
                                file: m.file.clone(),
                                line: *line,
                                message: format!(
                                    "`Ordering::Relaxed` on critical atomic `{field}` in `{}`; \
                                     this field is a synchronization point and requires \
                                     Acquire/Release (see DESIGN.md §13)",
                                    m.name
                                ),
                                lock_path: None,
                            },
                            comments,
                            &mut allows_used,
                            &mut findings,
                        );
                    }
                    if config::SEQLOCK_FIELDS.contains(&field.as_str()) {
                        if op == "load" {
                            seqlock_loads.push(*line);
                        } else {
                            seqlock_writes += 1;
                        }
                    }
                }
                Event::Panicky { name, line, .. } if !m.in_test => {
                    if lock_unwrap_lines.contains(line) {
                        // Reported by the more specific lock-unwrap rule.
                    } else if config::is_hot_path(&m.file) {
                        push(
                            Finding {
                                rule: "hot-path-panic",
                                file: m.file.clone(),
                                line: *line,
                                message: format!(
                                    "`.{name}()` in hot-path function `{}`; corruption must \
                                     surface as an error, never a panic",
                                    m.name
                                ),
                                lock_path: None,
                            },
                            comments,
                            &mut allows_used,
                            &mut findings,
                        );
                    } else if config::is_serve_worker_path(&m.file) {
                        push(
                            Finding {
                                rule: "serve-worker-panic",
                                file: m.file.clone(),
                                line: *line,
                                message: format!(
                                    "`.{name}()` in serve worker path `{}`; a worker panic \
                                     poisons shared state for every connection",
                                    m.name
                                ),
                                lock_path: None,
                            },
                            comments,
                            &mut allows_used,
                            &mut findings,
                        );
                    }
                }
                Event::LockUnwrap { line } if !m.in_test => {
                    push(
                        Finding {
                            rule: "lock-unwrap",
                            file: m.file.clone(),
                            line: *line,
                            message: format!(
                                "panic on a lock result in `{}`; use the poison-recovering \
                                 helpers (`rd`/`wr`/`mutex_lock`/`lock`) instead",
                                m.name
                            ),
                            lock_path: None,
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
                Event::Index { line } if !m.in_test && config::is_serve_worker_path(&m.file) => {
                    push(
                        Finding {
                            rule: "serve-worker-panic",
                            file: m.file.clone(),
                            line: *line,
                            message: format!(
                                "indexing expression in serve worker path `{}` can panic on \
                                 malformed protocol frames; use `.get(..)` and surface a \
                                 protocol error",
                                m.name
                            ),
                            lock_path: None,
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
                Event::MacroUse { name, line } => {
                    if STRAY_MACROS.contains(&name.as_str()) {
                        push(
                            Finding {
                                rule: "stray-debug-macro",
                                file: m.file.clone(),
                                line: *line,
                                message: format!("`{name}!` left in `{}`", m.name),
                                lock_path: None,
                            },
                            comments,
                            &mut allows_used,
                            &mut findings,
                        );
                    } else if PANIC_MACROS.contains(&name.as_str()) && !m.in_test {
                        if config::is_hot_path(&m.file) {
                            push(
                                Finding {
                                    rule: "hot-path-panic",
                                    file: m.file.clone(),
                                    line: *line,
                                    message: format!("`{name}!` in hot-path function `{}`", m.name),
                                    lock_path: None,
                                },
                                comments,
                                &mut allows_used,
                                &mut findings,
                            );
                        } else if config::is_serve_worker_path(&m.file) {
                            push(
                                Finding {
                                    rule: "serve-worker-panic",
                                    file: m.file.clone(),
                                    line: *line,
                                    message: format!("`{name}!` in serve worker path `{}`", m.name),
                                    lock_path: None,
                                },
                                comments,
                                &mut allows_used,
                                &mut findings,
                            );
                        }
                    }
                }
                Event::RawPageIo { name, line } if !config::is_pager_internal(&m.file) => {
                    push(
                        Finding {
                            rule: "raw-page-io",
                            file: m.file.clone(),
                            line: *line,
                            message: format!(
                                "`.{name}(` outside the pager bypasses the buffer pool and \
                                 the WAL (in `{}`)",
                                m.name
                            ),
                            lock_path: None,
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
                Event::SynopsisMutation { name, line }
                    if !config::is_synopsis_internal(&m.file) && !m.in_test =>
                {
                    push(
                        Finding {
                            rule: "synopsis-mutation",
                            file: m.file.clone(),
                            line: *line,
                            message: format!(
                                "`.{name}(` outside core::{{build, update, synopsis}} (in \
                                 `{}`); synopsis counters change only under the WAL and \
                                 publish per MVCC generation",
                                m.name
                            ),
                            lock_path: None,
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
                Event::PlanOp { name, line } if !config::is_plan_internal(&m.file) => {
                    push(
                        Finding {
                            rule: "plan-operator-construction",
                            file: m.file.clone(),
                            line: *line,
                            message: format!(
                                "`{name}::` outside the planner pipeline (in `{}`); plans are \
                                 consumed opaquely via plan_query/execute_plan",
                                m.name
                            ),
                            lock_path: None,
                        },
                        comments,
                        &mut allows_used,
                        &mut findings,
                    );
                }
                _ => {}
            }
        }

        // Seqlock read protocol: one generation load with no validating
        // second load (and no writer-side bump) cannot detect a concurrent
        // directory swap.
        if !m.in_test && seqlock_loads.len() == 1 && seqlock_writes == 0 {
            push(
                Finding {
                    rule: "seqlock-recheck",
                    file: m.file.clone(),
                    line: seqlock_loads[0],
                    message: format!(
                        "`{}` reads the seqlock generation once without a validating \
                         re-check; a concurrent writer can slip between the read and \
                         the use (see DESIGN.md §13)",
                        m.name
                    ),
                    lock_path: None,
                },
                comments,
                &mut allows_used,
                &mut findings,
            );
        }
    }

    // ---- Lexical rules (from the comment/code scan): `unsafe` needs a
    // SAFETY justification within three lines. ----
    for (file, cm) in comments {
        for line in cm.unsafe_sites() {
            if !cm.contains_near(line, 3, "SAFETY:") {
                push(
                    Finding {
                        rule: "undocumented-unsafe",
                        file: file.clone(),
                        line,
                        message: "`unsafe` without a `// SAFETY:` justification on the same \
                                  line or the three lines above"
                            .to_string(),
                        lock_path: None,
                    },
                    comments,
                    &mut allows_used,
                    &mut findings,
                );
            }
        }
    }

    // ---- Directive hygiene: every allow must name known rules and give a
    // reason. ----
    for (file, cm) in comments {
        for a in &cm.allows {
            if a.reason.is_empty() {
                findings.push(Finding {
                    rule: "bare-allow",
                    file: file.clone(),
                    line: a.line,
                    message: "analyze: allow(...) without a reason; every exception must \
                              say why it is sound"
                        .to_string(),
                    lock_path: None,
                });
            }
            for r in &a.rules {
                if !config::ALL_RULES.contains(&r.as_str()) {
                    findings.push(Finding {
                        rule: "unknown-allow",
                        file: file.clone(),
                        line: a.line,
                        message: format!("analyze: allow names unknown rule `{r}`"),
                        lock_path: None,
                    });
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (findings, allows_used)
}
