//! Declarative configuration: the lock hierarchy, the critical-atomics
//! contract, helper-function tables, and path-based rule scopes.
//!
//! This is the single place where the workspace's concurrency design is
//! written down in machine-checkable form; DESIGN.md §13 is the prose twin
//! and the two must be kept in sync.

/// How a lock is acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqMode {
    Read,
    Write,
}

/// A lock class in the declared hierarchy. Locks must be acquired in
/// strictly increasing `rank` order; two locks of the same class must never
/// be held together (see `lock-reentry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass {
    /// Stable id used in reports (`core.directory`, `pager.pool_shard`, ...).
    pub name: &'static str,
    pub rank: u32,
}

/// Field-name → lock-class table. Classification is by the *last field
/// segment* of the receiver/argument (`self.dir` → `dir`,
/// `self.shards[i]` → `shards`) plus the crate the code lives in, because
/// one field name can mean different locks in different crates (`data` is
/// the data-file mutex in `core` and the frame payload in `pager`).
struct LockEntry {
    field: &'static str,
    /// `None` = any crate.
    in_crate: Option<&'static str>,
    class: LockClass,
}

/// The MVCC epoch pin (`EpochArc`/`GenerationTable` in `pager::mvcc`,
/// acquired through `snapshot()`). Rank 0 in the hierarchy: a reader pins
/// its generation before touching anything else, and every other lock may
/// be taken under it. It is a refcount, not a mutex — re-entrant by design
/// (see `guard-across-writer` for the rule that *does* constrain it).
pub const PAGER_MVCC_EPOCH: LockClass = LockClass {
    name: "pager.mvcc_epoch",
    rank: 5,
};
pub const SERVE_QUEUE: LockClass = LockClass {
    name: "serve.queue",
    rank: 10,
};
/// The admission ring's park mutex (`AdmissionQueue.park`): taken only to
/// sleep on / signal the eventcount condvar, never around queue data (the
/// ring itself is lock-free).
pub const SERVE_ADMISSION_PARK: LockClass = LockClass {
    name: "serve.admission_park",
    rank: 11,
};
pub const SERVE_SLOT: LockClass = LockClass {
    name: "serve.slot",
    rank: 12,
};
/// A binary connection's outbound queue (`OutQueue.out` in `serve::conn`):
/// a leaf in practice — workers and the writer thread take it holding no
/// service or pager locks, and never across I/O.
pub const SERVE_CONN_OUT: LockClass = LockClass {
    name: "serve.conn_out",
    rank: 13,
};
pub const SERVE_PLAN_CACHE: LockClass = LockClass {
    name: "serve.plan_cache",
    rank: 14,
};
pub const CORE_DECODE_CACHE: LockClass = LockClass {
    name: "core.decode_cache",
    rank: 20,
};
pub const CORE_SKIP_INDEX: LockClass = LockClass {
    name: "core.skip_index",
    rank: 22,
};
pub const CORE_DIRECTORY: LockClass = LockClass {
    name: "core.directory",
    rank: 24,
};
pub const CORE_DATA_FILE: LockClass = LockClass {
    name: "core.data_file",
    rank: 30,
};
pub const PAGER_POOL_SHARD: LockClass = LockClass {
    name: "pager.pool_shard",
    rank: 40,
};
pub const PAGER_STORAGE: LockClass = LockClass {
    name: "pager.storage",
    rank: 44,
};
pub const PAGER_FRAME: LockClass = LockClass {
    name: "pager.frame",
    rank: 48,
};

/// Every lock class, in hierarchy (rank) order.
pub const ALL_CLASSES: &[LockClass] = &[
    PAGER_MVCC_EPOCH,
    SERVE_QUEUE,
    SERVE_ADMISSION_PARK,
    SERVE_SLOT,
    SERVE_CONN_OUT,
    SERVE_PLAN_CACHE,
    CORE_DECODE_CACHE,
    CORE_SKIP_INDEX,
    CORE_DIRECTORY,
    CORE_DATA_FILE,
    PAGER_POOL_SHARD,
    PAGER_STORAGE,
    PAGER_FRAME,
];

const LOCK_TABLE: &[LockEntry] = &[
    LockEntry {
        field: "queue",
        in_crate: Some("serve"),
        class: SERVE_QUEUE,
    },
    LockEntry {
        field: "park",
        in_crate: Some("serve"),
        class: SERVE_ADMISSION_PARK,
    },
    LockEntry {
        field: "result",
        in_crate: Some("serve"),
        class: SERVE_SLOT,
    },
    LockEntry {
        field: "out",
        in_crate: Some("serve"),
        class: SERVE_CONN_OUT,
    },
    LockEntry {
        field: "inner",
        in_crate: Some("serve"),
        class: SERVE_PLAN_CACHE,
    },
    LockEntry {
        field: "decoded",
        in_crate: Some("core"),
        class: CORE_DECODE_CACHE,
    },
    LockEntry {
        field: "skip",
        in_crate: Some("core"),
        class: CORE_SKIP_INDEX,
    },
    LockEntry {
        field: "dir",
        in_crate: Some("core"),
        class: CORE_DIRECTORY,
    },
    LockEntry {
        field: "data",
        in_crate: Some("core"),
        class: CORE_DATA_FILE,
    },
    LockEntry {
        field: "shards",
        in_crate: Some("pager"),
        class: PAGER_POOL_SHARD,
    },
    LockEntry {
        field: "storage",
        in_crate: Some("pager"),
        class: PAGER_STORAGE,
    },
    LockEntry {
        field: "data",
        in_crate: Some("pager"),
        class: PAGER_FRAME,
    },
    // `handle.read()` / `handle.write()` on a pinned PageHandle locks the
    // frame payload; the variable-name convention is part of the contract.
    LockEntry {
        field: "handle",
        in_crate: None,
        class: PAGER_FRAME,
    },
];

/// Resolve a field segment to a lock class for code living in `krate`.
pub fn lock_for_field(krate: &str, field: &str) -> Option<LockClass> {
    LOCK_TABLE
        .iter()
        .find(|e| e.field == field && e.in_crate.is_none_or(|c| c == krate))
        .map(|e| e.class)
}

/// Poison-recovering lock helpers: free functions whose argument names the
/// lock field and whose return value is a guard.
pub fn helper_mode(name: &str) -> Option<AcqMode> {
    match name {
        "rd" | "read_lock" => Some(AcqMode::Read),
        "wr" | "write_lock" | "mutex_lock" | "lock" => Some(AcqMode::Write),
        _ => None,
    }
}

/// Guard-returning methods: `recv.lock()/.read()/.write()` classify by the
/// receiver field; `lock_data()` is the DataFile mutex helper trait.
pub fn method_mode(name: &str) -> Option<AcqMode> {
    match name {
        "read" => Some(AcqMode::Read),
        "write" | "lock" | "lock_data" => Some(AcqMode::Write),
        _ => None,
    }
}

/// Functions that *return* a held guard to their caller, so a call makes the
/// caller hold the lock for the rest of the statement (or the block, when
/// let-bound).
pub fn guard_returning_fn(name: &str) -> Option<LockClass> {
    match name {
        "dir_mut" => Some(CORE_DIRECTORY),
        // The admission ring's poison-recovering park-lock helper.
        "lock_park" => Some(SERVE_ADMISSION_PARK),
        // `db.snapshot()` / `source.snapshot()` return a pinned
        // `SnapshotGuard`-backed view: the caller holds the epoch pin for
        // as long as the binding lives.
        "snapshot" => Some(PAGER_MVCC_EPOCH),
        _ => None,
    }
}

/// Writer entry points: calling one starts (or contains) a transaction,
/// which must never happen while the calling thread holds a snapshot pin
/// (`guard-across-writer`) — the guard pins retired generations and its
/// view predates the commit the writer is about to publish.
pub fn is_writer_entry(name: &str) -> bool {
    matches!(
        name,
        "txn_begin" | "insert_last_child" | "delete_subtree" | "checkpoint"
    )
}

/// Atomics under the `atomic-ordering` contract: `Ordering::Relaxed` on any
/// of these fields is an error (each is a publication/synchronization
/// point, not a counter). Everything else — IO statistics, service metrics,
/// clock hands, `last_used` stamps — is advisory and exempt.
pub const CRITICAL_ATOMICS: &[&str] = &[
    "dir_generation", // seqlock generation for the page directory
    "txn_active",     // no-steal barrier between pool and WAL commit
    "shutdown",       // service stop flag gating queue drain
    "dirty",          // frame dirty bit read by flush without the frame lock
    "frames",         // pool occupancy accounting used by make_room
    "ctrl",           // EpochArc control word: pin registration vs swing
    "debt",           // EpochArc repaid-pin counter gating slot reclamation
    "enqueue_pos",    // admission ring producer cursor (Vyukov MPMC)
    "dequeue_pos",    // admission ring consumer cursor (Vyukov MPMC)
    "sleepers",       // admission eventcount register: SeqCst on both sides
];

/// The seqlock generation field: reads of it participate in the
/// `seqlock-recheck` rule (a reader must validate with a second load).
pub const SEQLOCK_FIELDS: &[&str] = &["dir_generation"];

/// Files whose non-test code must not contain panic paths (ports the old
/// `hot-path-panic` scope verbatim).
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/cursor.rs",
    "crates/core/src/page.rs",
    "crates/core/src/store.rs",
    "crates/core/src/physical.rs",
    "crates/core/src/nok.rs",
];

const HOT_PATH_DIRS: &[&str] = &["crates/pager/src/", "crates/btree/src/"];

pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_FILES.iter().any(|f| rel == *f) || HOT_PATH_DIRS.iter().any(|d| rel.starts_with(d))
}

/// Worker-path files in the serve crate: request handling must degrade, not
/// panic. Binaries (`src/bin/`) are CLI entry points and exempt.
pub fn is_serve_worker_path(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/") && !rel.starts_with("crates/serve/src/bin/")
}

/// Raw page IO (`write_page` / `allocate_page`) is the pager's business.
pub fn is_pager_internal(rel: &str) -> bool {
    rel.starts_with("crates/pager/src/")
}

/// Plan operators are constructed only by the planner and executed by the
/// executor.
pub fn is_plan_internal(rel: &str) -> bool {
    rel == "crates/core/src/plan.rs"
        || rel == "crates/core/src/planner.rs"
        || rel == "crates/core/src/exec.rs"
}

/// Synopsis counters are mutated only under the WAL by the bulk-build and
/// incremental-update paths (plus the synopsis module itself); everyone
/// else reads an immutable per-generation snapshot (DESIGN.md §17).
pub fn is_synopsis_internal(rel: &str) -> bool {
    rel == "crates/core/src/build.rs"
        || rel == "crates/core/src/update.rs"
        || rel == "crates/core/src/synopsis.rs"
}

/// Integration tests, benches and examples are test code wholesale.
pub fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

/// The crate short name (`core`, `pager`, ...) for a workspace-relative
/// path, or `""` outside `crates/`.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Direct crate dependencies (normal + dev), mirroring the `Cargo.toml`s.
/// Call-graph edges may only follow this graph: a name match in a crate the
/// caller cannot depend on is a coincidence, not a call target.
const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("xml", &[]),
    ("pager", &[]),
    ("btree", &["pager"]),
    ("core", &["xml", "pager", "btree", "verify"]),
    ("verify", &["core", "btree", "pager", "datagen"]),
    ("datagen", &["xml", "core"]),
    ("serve", &["pager", "core", "datagen", "verify"]),
    ("baselines", &["xml", "pager", "btree", "core"]),
    (
        "bench",
        &[
            "xml",
            "pager",
            "btree",
            "core",
            "baselines",
            "datagen",
            "serve",
            "verify",
        ],
    ),
    ("analyze", &[]),
    ("xtask", &["analyze"]),
];

/// Can code in crate `from` call code in crate `to`? (Reflexive, transitive
/// over `CRATE_DEPS`; unknown crates only reach themselves. Dev-dependency
/// edges make the graph cyclic — `core`'s tests use `verify` — so this walks
/// with a visited set.)
pub fn crate_reachable(from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![from];
    while let Some(c) = stack.pop() {
        if c == to {
            return true;
        }
        if let Some((_, deps)) = CRATE_DEPS.iter().find(|(k, _)| *k == c) {
            for d in *deps {
                if !seen.contains(d) {
                    seen.push(d);
                    stack.push(d);
                }
            }
        }
    }
    false
}

/// Every rule id the analyzer can emit; `allow` directives naming anything
/// else are themselves flagged (`unknown-allow`).
pub const ALL_RULES: &[&str] = &[
    "lock-order",
    "lock-reentry",
    "atomic-ordering",
    "seqlock-recheck",
    "serve-worker-panic",
    "lock-unwrap",
    "hot-path-panic",
    "stray-debug-macro",
    "undocumented-unsafe",
    "raw-page-io",
    "plan-operator-construction",
    "synopsis-mutation",
    "guard-across-writer",
    "bare-allow",
    "unknown-allow",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_classification_is_crate_sensitive() {
        assert_eq!(
            lock_for_field("core", "data").map(|c| c.name),
            Some("core.data_file")
        );
        assert_eq!(
            lock_for_field("pager", "data").map(|c| c.name),
            Some("pager.frame")
        );
        assert_eq!(lock_for_field("serve", "data"), None);
        assert_eq!(
            lock_for_field("core", "handle").map(|c| c.name),
            Some("pager.frame")
        );
    }

    #[test]
    fn hierarchy_ranks_are_distinct() {
        let all = [
            PAGER_MVCC_EPOCH,
            SERVE_QUEUE,
            SERVE_ADMISSION_PARK,
            SERVE_SLOT,
            SERVE_CONN_OUT,
            SERVE_PLAN_CACHE,
            CORE_DECODE_CACHE,
            CORE_SKIP_INDEX,
            CORE_DIRECTORY,
            CORE_DATA_FILE,
            PAGER_POOL_SHARD,
            PAGER_STORAGE,
            PAGER_FRAME,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.rank, b.rank, "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn crate_reachability_follows_dependencies() {
        assert!(crate_reachable("serve", "core"));
        assert!(crate_reachable("serve", "pager"), "transitive");
        assert!(crate_reachable("core", "core"), "reflexive");
        assert!(
            !crate_reachable("pager", "core"),
            "pager cannot call upward into core"
        );
        assert!(
            !crate_reachable("btree", "serve"),
            "btree cannot call into serve"
        );
        // The dev-dep cycle core <-> verify must terminate, not recurse.
        assert!(crate_reachable("core", "verify"));
        assert!(!crate_reachable("core", "serve"));
    }

    #[test]
    fn path_scopes() {
        assert!(is_hot_path("crates/pager/src/pool.rs"));
        assert!(!is_hot_path("crates/core/src/naive.rs"));
        assert!(is_serve_worker_path("crates/serve/src/service.rs"));
        assert!(!is_serve_worker_path("crates/serve/src/bin/nokd.rs"));
        assert!(is_test_path("crates/core/tests/loom_seqlock.rs"));
        assert_eq!(crate_of("crates/core/src/store.rs"), "core");
    }
}
