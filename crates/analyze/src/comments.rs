//! Comment extraction and `analyze: allow(...)` directives.
//!
//! The token parser (`syn`) drops comments, but two rule mechanisms live in
//! them: `// SAFETY:` justifications for `unsafe`, and
//! `// analyze: allow(rule-id, ...): reason` suppressions. This module runs
//! a small comment-aware state machine over the raw source and returns the
//! concatenated comment text per line, plus the parsed allow directives.
//!
//! Directive grammar (one per comment):
//!
//! ```text
//! // analyze: allow(rule-a, rule-b): why this exception is sound
//! ```
//!
//! A directive suppresses findings of the named rules on its own line and on
//! the line directly below (so it can sit on its own line above a long
//! expression). A directive with an empty reason is itself reported as a
//! `bare-allow` finding: every exception must say why.

use std::collections::HashMap;

/// One parsed `analyze: allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive comment is on.
    pub line: usize,
    /// Rule ids listed in the parentheses.
    pub rules: Vec<String>,
    /// Justification text after the closing parenthesis (trimmed of
    /// separator punctuation). Empty = `bare-allow` violation.
    pub reason: String,
}

/// Per-file comment map: comment text by 1-based line, plus directives and
/// the *code* text per line (comments and string/char contents blanked).
#[derive(Debug, Default)]
pub struct CommentMap {
    comments: HashMap<usize, String>,
    code: Vec<String>,
    pub allows: Vec<AllowDirective>,
}

impl CommentMap {
    /// The comment text on `line` (empty string when none).
    pub fn on_line(&self, line: usize) -> &str {
        self.comments.get(&line).map_or("", String::as_str)
    }

    /// Lines (1-based) whose code text contains the word `unsafe` — exact
    /// with respect to strings and comments, so `"unsafe"` in a literal or
    /// a doc comment never counts.
    pub fn unsafe_sites(&self) -> Vec<usize> {
        self.code
            .iter()
            .enumerate()
            .filter(|(_, l)| contains_word(l, "unsafe"))
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// Does any comment on `line` or the `above` lines before it contain
    /// `needle`?
    pub fn contains_near(&self, line: usize, above: usize, needle: &str) -> bool {
        let lo = line.saturating_sub(above);
        (lo..=line).any(|l| self.on_line(l).contains(needle))
    }

    /// Is a finding of `rule` on `line` suppressed by an allow directive
    /// (same line or the line directly above)?
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Extract comments per line. This intentionally re-lexes rather than
/// reusing `syn`: the parser throws comments away by design.
pub fn scan_comments(source: &str) -> CommentMap {
    let mut map = CommentMap::default();
    let mut state = LexState::Normal;

    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let mut comment = String::new();
        let mut code = String::new();
        let mut is_doc = false;
        let mut chars = raw_line.chars().peekable();

        if state == LexState::LineComment {
            state = LexState::Normal;
        }

        while let Some(c) = chars.next() {
            match state {
                LexState::LineComment => comment.push(c),
                LexState::BlockComment(n) => {
                    if c == '*' && chars.peek() == Some(&'/') {
                        chars.next();
                        state = if n == 1 {
                            LexState::Normal
                        } else {
                            LexState::BlockComment(n - 1)
                        };
                    } else if c == '/' && chars.peek() == Some(&'*') {
                        chars.next();
                        state = LexState::BlockComment(n + 1);
                    } else {
                        comment.push(c);
                    }
                }
                LexState::Str => {
                    code.push(' ');
                    if c == '\\' {
                        chars.next();
                    } else if c == '"' {
                        state = LexState::Normal;
                    }
                }
                LexState::RawStr(hashes) => {
                    code.push(' ');
                    if c == '"' {
                        let mut n = 0;
                        while n < hashes && chars.peek() == Some(&'#') {
                            chars.next();
                            n += 1;
                        }
                        if n == hashes {
                            state = LexState::Normal;
                        }
                    }
                }
                LexState::Char => {
                    code.push(' ');
                    if c == '\\' {
                        chars.next();
                    } else if c == '\'' {
                        state = LexState::Normal;
                    }
                }
                LexState::Normal => match c {
                    '/' if chars.peek() == Some(&'/') => {
                        chars.next();
                        // `///` and `//!` are doc comments: prose, not
                        // directives. Their text still lands in the comment
                        // map, but `analyze: allow` examples inside docs
                        // must not act as suppressions.
                        if matches!(chars.peek(), Some('/') | Some('!')) {
                            is_doc = true;
                        }
                        state = LexState::LineComment;
                    }
                    '/' if chars.peek() == Some(&'*') => {
                        chars.next();
                        state = LexState::BlockComment(1);
                    }
                    '"' => {
                        code.push(' ');
                        state = LexState::Str;
                    }
                    'r' | 'b' if matches!(chars.peek(), Some('"') | Some('#')) => {
                        code.push(c);
                        let mut hashes = 0u32;
                        while chars.peek() == Some(&'#') {
                            chars.next();
                            code.push(' ');
                            hashes += 1;
                        }
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            code.push(' ');
                            state = if hashes == 0 {
                                LexState::Str
                            } else {
                                LexState::RawStr(hashes)
                            };
                        }
                    }
                    '\'' => {
                        code.push(' ');
                        let mut look = chars.clone();
                        let first = look.next();
                        let second = look.next();
                        if matches!(first, Some('\\')) || matches!(second, Some('\'')) {
                            state = LexState::Char;
                        }
                    }
                    _ => code.push(c),
                },
            }
        }

        if !comment.is_empty() {
            if !is_doc {
                if let Some(directive) = parse_allow(&comment, lineno) {
                    map.allows.push(directive);
                }
            }
            map.comments.insert(lineno, comment);
        }
        map.code.push(code);
    }
    map
}

/// Does `line` contain `word` with non-identifier characters (or the line
/// boundary) on both sides?
fn contains_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !line[at + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Parse `analyze: allow(rule, ...): reason` out of a comment.
fn parse_allow(comment: &str, line: usize) -> Option<AllowDirective> {
    let at = comment.find("analyze:")?;
    let rest = comment[at + "analyze:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..]
        .trim_start_matches([':', '-', '—', ' ', '\u{2014}'])
        .trim()
        .to_string();
    Some(AllowDirective {
        line,
        rules,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_extracted_per_line() {
        let m = scan_comments("let x = 1; // tail comment\n/* block */ let y = 2;\n");
        assert!(m.on_line(1).contains("tail comment"));
        assert!(m.on_line(2).contains("block"));
        assert_eq!(m.on_line(3), "");
    }

    #[test]
    fn comment_patterns_inside_strings_ignored() {
        let m = scan_comments("let s = \"// not a comment\";\n");
        assert_eq!(m.on_line(1), "");
    }

    #[test]
    fn allow_directive_parsed_with_reason() {
        let m = scan_comments("x(); // analyze: allow(atomic-ordering): counter is advisory\n");
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].rules, vec!["atomic-ordering"]);
        assert_eq!(m.allows[0].reason, "counter is advisory");
        assert!(m.is_allowed("atomic-ordering", 1));
        assert!(m.is_allowed("atomic-ordering", 2), "covers the next line");
        assert!(!m.is_allowed("lock-order", 1));
    }

    #[test]
    fn allow_directive_multiple_rules_and_empty_reason() {
        let m = scan_comments("// analyze: allow(lock-order, lock-reentry)\n");
        assert_eq!(m.allows[0].rules.len(), 2);
        assert!(m.allows[0].reason.is_empty());
    }

    #[test]
    fn unsafe_sites_are_word_exact() {
        let m = scan_comments(
            "unsafe { x() }\nlet s = \"unsafe\";\n// unsafe in a comment\nlet unsafer = 1;\nunsafe fn f() {}\n",
        );
        assert_eq!(m.unsafe_sites(), vec![1, 5]);
    }

    #[test]
    fn safety_near_lookup() {
        let m = scan_comments("// SAFETY: checked above\n\nlet x = 1;\n");
        assert!(m.contains_near(3, 3, "SAFETY:"));
        assert!(!m.contains_near(3, 1, "SAFETY:"));
    }
}
