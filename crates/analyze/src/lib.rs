//! Static concurrency analysis for the workspace.
//!
//! `cargo xtask analyze` drives this crate. It parses every `crates/**/*.rs`
//! file with the vendored `syn` shim, builds per-function models of lock
//! acquisitions, atomic operations and panicking constructs, and enforces:
//!
//! - **`lock-order` / `lock-reentry`** — the declared lock hierarchy
//!   (service queue → plan cache → directory seqlock → data-file mutex →
//!   pool shard → storage → frame; see `config::ALL_CLASSES` and DESIGN.md
//!   §13), with call-graph propagation so an acquisition hidden behind a
//!   call chain is still checked against the locks its caller holds.
//! - **`atomic-ordering`** — `Ordering::Relaxed` is an error on the named
//!   critical atomics (`dir_generation`, `txn_active`, `shutdown`, `dirty`,
//!   `frames`); statistics counters are exempt.
//! - **`seqlock-recheck`** — a reader of the directory generation must load
//!   it twice (validate) or be a writer.
//! - **`serve-worker-panic` / `lock-unwrap`** — no `.unwrap()`/`.expect()`/
//!   indexing panics on worker paths or lock results.
//! - The five historical lint rules (`hot-path-panic`, `stray-debug-macro`,
//!   `undocumented-unsafe`, `raw-page-io`, `plan-operator-construction`),
//!   re-implemented on the AST so multi-line and oddly-spaced forms are
//!   caught and substring look-alikes are not.
//! - **`synopsis-mutation`** — the planner synopsis's counter-mutation API
//!   (`add_path_count` & co.) is called only from
//!   `core::{build, update, synopsis}`; everyone else reads the immutable
//!   per-generation snapshot.
//!
//! Exceptions are written in the code as `// analyze: allow(rule-id): why`;
//! an allow without a reason is itself a finding (`bare-allow`).

pub mod comments;
pub mod config;
pub mod model;
pub mod report;
pub mod rules;
pub mod selftest;

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use report::Report;

/// Analyze in-memory sources. Each entry is (workspace-relative path,
/// source text). Used by the self-test fixtures and unit tests.
pub fn analyze_sources(files: &[(&str, &str)]) -> Result<Report, String> {
    let mut models = Vec::new();
    let mut comment_maps: HashMap<String, comments::CommentMap> = HashMap::new();
    for (rel, src) in files {
        let ast = syn::parse_file(src).map_err(|e| format!("{rel}: parse error: {e}"))?;
        models.extend(model::collect(rel, &ast));
        comment_maps.insert((*rel).to_string(), comments::scan_comments(src));
    }
    let functions_modeled = models.len();
    let (findings, allows_used) = rules::run(&models, &comment_maps);
    Ok(Report {
        findings,
        files_scanned: files.len(),
        functions_modeled,
        allows_used,
    })
}

/// Analyze every `crates/**/*.rs` under `root` (the workspace root).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();

    let mut sources = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    analyze_sources(&borrowed).map_err(io::Error::other)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if entry.file_name() != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let r = analyze_sources(&[(
            "crates/core/src/naive.rs",
            "pub fn walk(n: usize) -> usize { n + 1 }\n",
        )])
        .expect("analyze");
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.functions_modeled, 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        let e = analyze_sources(&[("crates/core/src/bad.rs", "fn broken( {")]);
        assert!(e.is_err());
    }
}
