//! Findings and their human / JSON renderings.

use std::fmt;

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`lock-order`, `atomic-ordering`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation.
    pub message: String,
    /// For lock rules: the offending acquisition order, `held -> acquired`.
    pub lock_path: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if let Some(p) = &self.lock_path {
            write!(f, " (lock path: {p})")?;
        }
        Ok(())
    }
}

/// Summary of one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub functions_modeled: usize,
    pub allows_used: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render for terminals: one line per finding plus a summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "analyze: {} finding(s) in {} file(s), {} function(s) modeled, {} allow(s) honored\n",
            self.findings.len(),
            self.files_scanned,
            self.functions_modeled,
            self.allows_used
        ));
        out
    }

    /// Machine-readable output for `cargo xtask analyze --json`.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            if let Some(p) = &f.lock_path {
                out.push_str(&format!(", \"lock_path\": {}", json_str(p)));
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"functions_modeled\": {},\n",
            self.functions_modeled
        ));
        out.push_str(&format!("  \"allows_used\": {}\n", self.allows_used));
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escape (no external deps in the workspace).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let r = Report {
            findings: vec![Finding {
                rule: "lock-order",
                file: "crates/pager/src/pool.rs".to_string(),
                line: 42,
                message: "out of order".to_string(),
                lock_path: Some("pager.storage -> pager.pool_shard".to_string()),
            }],
            files_scanned: 1,
            functions_modeled: 3,
            allows_used: 0,
        };
        let j = r.json();
        assert!(j.contains("\"rule\": \"lock-order\""));
        assert!(j.contains("\"line\": 42"));
        assert!(j.contains("\"lock_path\": \"pager.storage -> pager.pool_shard\""));
        assert!(j.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
