//! Per-function models: walk `syn` token trees and extract the events the
//! rules reason about — lock acquisitions, atomic operations, calls,
//! panicking constructs, raw page IO, plan-operator references.
//!
//! The walk is scope-aware: brace groups open nested scopes, `;` ends
//! statements, and each acquisition records whether it was `let`-bound
//! (guard lives to the end of the enclosing block) or a temporary (guard
//! dies at the end of the statement). That approximation matches how every
//! guard in this workspace is actually used and is what makes the held-set
//! computation in `rules.rs` precise enough to be quiet on correct code.

use crate::config::{self, AcqMode, LockClass};
use syn::{Delimiter, Group, Item, ItemFn, TokenTree};

/// One extracted event, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    EnterBlock,
    ExitBlock,
    EndStmt,
    /// A lock acquisition (helper call, guard-returning method, or
    /// guard-returning function from the summary table).
    Acquire {
        class: LockClass,
        mode: AcqMode,
        let_bound: bool,
        /// The `let` variable holding the guard, when known — lets an
        /// explicit `drop(var)` release it early.
        var: Option<String>,
        line: usize,
    },
    /// `drop(var)` — the idiomatic early guard release.
    Release {
        var: String,
        line: usize,
    },
    /// A call that could not be classified as anything more specific.
    Call {
        name: String,
        /// `Foo` in `Foo::name(...)`, when path-qualified.
        qual: Option<String>,
        /// Last receiver segment in `recv.name(...)`, when a method call.
        recv: Option<String>,
        line: usize,
    },
    /// An atomic operation with explicit `Ordering` arguments.
    Atomic {
        field: String,
        op: String,
        orderings: Vec<String>,
        line: usize,
    },
    /// `.unwrap()` / `.expect(...)`.
    Panicky {
        name: String,
        recv: Option<String>,
        line: usize,
    },
    /// `.unwrap()`/`.expect()` directly on a lock acquisition result.
    LockUnwrap {
        line: usize,
    },
    /// `name!(...)` macro invocation.
    MacroUse {
        name: String,
        line: usize,
    },
    /// `.write_page(` / `.allocate_page(`.
    RawPageIo {
        name: String,
        line: usize,
    },
    /// `PlanStep::` / `SeedChoice::` reference.
    PlanOp {
        name: String,
        line: usize,
    },
    /// A synopsis counter mutation (`add_path_count`, `sub_tag_count`, ...).
    SynopsisMutation {
        name: String,
        line: usize,
    },
    /// `expr[...]` indexing in expression position.
    Index {
        line: usize,
    },
}

/// The model of one function (or one opaque item's initializer tokens).
#[derive(Debug)]
pub struct FnModel {
    /// Workspace-relative path.
    pub file: String,
    /// Short crate name (`core`, `pager`, ...).
    pub krate: String,
    pub name: String,
    /// `impl` self type, when the fn lives in an impl block.
    pub self_ty: Option<String>,
    pub line: usize,
    /// Inside `#[cfg(test)]` / `#[test]` / a tests directory.
    pub in_test: bool,
    pub events: Vec<Event>,
}

const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The synopsis mutation API: calls to these from outside
/// `core::{build, update, synopsis}` violate the maintenance contract
/// (mutations happen under the WAL and publish per generation).
const SYNOPSIS_MUTATORS: &[&str] = &[
    "add_tag_count",
    "sub_tag_count",
    "add_value_count",
    "sub_value_count",
    "add_path_count",
    "sub_path_count",
];

/// Idents that precede a bracket group in non-indexing positions (array
/// literals after `return`/`mut`, slice types after `dyn`, ...).
const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "mut", "return", "in", "else", "match", "if", "while", "loop", "move", "as", "break", "dyn",
    "const",
];

/// Collect models for every function in a parsed file, tests included
/// (rules decide what test code is exempt from).
pub fn collect(file_rel: &str, ast: &syn::File) -> Vec<FnModel> {
    let krate = config::crate_of(file_rel).to_string();
    let file_is_test = config::is_test_path(file_rel);
    let mut out = Vec::new();
    collect_items(&ast.items, file_rel, &krate, None, file_is_test, &mut out);
    out
}

fn attrs_mark_test(attrs: &[syn::Attribute]) -> bool {
    attrs
        .iter()
        .any(|a| a.cfg_mentions("test") || a.path == "test" || a.path.ends_with("::test"))
}

fn collect_items(
    items: &[Item],
    file: &str,
    krate: &str,
    self_ty: Option<&str>,
    in_test: bool,
    out: &mut Vec<FnModel>,
) {
    for item in items {
        let item_test = in_test || attrs_mark_test(item.attrs());
        match item {
            Item::Fn(f) => out.push(model_fn(f, file, krate, self_ty, item_test)),
            Item::Mod(m) => {
                if let Some(content) = &m.content {
                    collect_items(content, file, krate, self_ty, item_test, out);
                }
            }
            Item::Impl(i) => {
                for f in &i.fns {
                    let fn_test = item_test || attrs_mark_test(&f.attrs);
                    out.push(model_fn(f, file, krate, Some(&i.self_ty), fn_test));
                }
            }
            Item::Trait(t) => {
                for f in &t.fns {
                    let fn_test = item_test || attrs_mark_test(&f.attrs);
                    out.push(model_fn(f, file, krate, Some(&t.ident.text), fn_test));
                }
            }
            Item::Other(o) => {
                // Scan const/static/macro initializer tokens too so stray
                // macros and plan-operator references can't hide there.
                // Bracket groups in type declarations are slice/array types,
                // never runtime indexing — drop those events.
                let mut events = Vec::new();
                extract(&o.tokens.0, krate, &mut events, false);
                events.retain(|e| !matches!(e, Event::Index { .. }));
                if !events.is_empty() {
                    out.push(FnModel {
                        file: file.to_string(),
                        krate: krate.to_string(),
                        name: format!("<{}>", o.keyword.as_deref().unwrap_or("item")),
                        self_ty: self_ty.map(str::to_string),
                        line: o.span.line,
                        in_test: item_test,
                        events,
                    });
                }
            }
        }
    }
}

fn model_fn(f: &ItemFn, file: &str, krate: &str, self_ty: Option<&str>, in_test: bool) -> FnModel {
    let in_test = in_test || attrs_mark_test(&f.attrs);
    let mut events = Vec::new();
    if let Some(block) = &f.block {
        extract(&block.stream.0, krate, &mut events, true);
    }
    FnModel {
        file: file.to_string(),
        krate: krate.to_string(),
        name: f.ident.text.clone(),
        self_ty: self_ty.map(str::to_string),
        line: f.ident.span.line,
        in_test,
        events,
    }
}

/// The receiver's last field segment for the method call whose `.` sits at
/// `dot` — skipping index brackets, and resolving a call-result receiver to
/// the called function's name (`lock(&x).take()` → `lock`).
fn recv_segment(toks: &[TokenTree], dot: usize) -> Option<String> {
    let mut j = dot;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &toks[j] {
            TokenTree::Group(g) if g.delimiter == Delimiter::Bracket => continue,
            TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => {
                return match toks.get(j.wrapping_sub(1)) {
                    Some(TokenTree::Ident(i)) if j >= 1 => Some(i.text.clone()),
                    _ => None,
                };
            }
            TokenTree::Ident(i) => return Some(i.text.clone()),
            _ => return None,
        }
    }
}

/// The last top-level field segment inside a helper-call argument group:
/// `&self.dir` → `dir`, `&self.shards[i]` → `shards`, `&frame.data` →
/// `data`. Nested groups are skipped so index expressions don't win.
fn arg_field(group: &Group) -> Option<String> {
    let mut last = None;
    for t in group.stream.iter() {
        if let TokenTree::Ident(i) = t {
            last = Some(i.text.clone());
        }
    }
    last
}

/// Ordering idents (`Relaxed`, `Acquire`, ...) that appear as
/// `Ordering::Name` anywhere inside `group`, in order.
fn orderings_in(group: &Group) -> Vec<String> {
    let mut out = Vec::new();
    collect_orderings(&group.stream.0, &mut out);
    out
}

fn collect_orderings(toks: &[TokenTree], out: &mut Vec<String>) {
    for (k, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Ident(i) if ORDERING_NAMES.contains(&i.text.as_str()) => {
                // Require a preceding `Ordering ::`.
                if k >= 3
                    && matches!(&toks[k - 1], TokenTree::Punct(p) if p.ch == ':')
                    && matches!(&toks[k - 2], TokenTree::Punct(p) if p.ch == ':')
                    && matches!(&toks[k - 3], TokenTree::Ident(q) if q.text == "Ordering")
                {
                    out.push(i.text.clone());
                }
            }
            TokenTree::Group(g) => collect_orderings(&g.stream.0, out),
            _ => {}
        }
    }
}

/// Is the token after `i` (a call's argument group) a `.unwrap()` /
/// `.expect(...)` chain link?
fn chained_unwrap(toks: &[TokenTree], group_idx: usize) -> bool {
    matches!(
        (toks.get(group_idx + 1), toks.get(group_idx + 2)),
        (Some(TokenTree::Punct(p)), Some(TokenTree::Ident(m)))
            if p.ch == '.' && (m.text == "unwrap" || m.text == "expect")
    )
}

/// Does the chain after a guard-producing call consume the guard? Any
/// chained method except `.unwrap()`/`.expect()` (which return the guard on
/// a poisoned-lock result) yields a non-guard value, so `let` then binds
/// that result and the guard itself dies at the end of the statement.
fn chain_consumes_guard(toks: &[TokenTree], group_idx: usize) -> bool {
    matches!(
        (toks.get(group_idx + 1), toks.get(group_idx + 2)),
        (Some(TokenTree::Punct(p)), Some(TokenTree::Ident(m)))
            if p.ch == '.' && m.text != "unwrap" && m.text != "expect"
    )
}

/// Walk one token slice. `stmt_ctx` is true for brace-block interiors where
/// `;` separates statements; false inside parenthesis/bracket/macro groups.
fn extract(toks: &[TokenTree], krate: &str, out: &mut Vec<Event>, stmt_ctx: bool) {
    let mut stmt_let = false;
    let mut stmt_var: Option<String> = None;
    let mut at_stmt_start = true;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.ch == ';' && stmt_ctx => {
                out.push(Event::EndStmt);
                stmt_let = false;
                stmt_var = None;
                at_stmt_start = true;
                i += 1;
                continue;
            }
            TokenTree::Ident(id) if id.text == "let" && at_stmt_start => {
                stmt_let = true;
                // `let [mut] name = ...` — capture simple-ident bindings so
                // `drop(name)` can release the guard; patterns stay None.
                let mut j = i + 1;
                if matches!(toks.get(j), Some(TokenTree::Ident(m)) if m.text == "mut") {
                    j += 1;
                }
                stmt_var = match toks.get(j) {
                    Some(TokenTree::Ident(v)) if v.text != "mut" => Some(v.text.clone()),
                    _ => None,
                };
            }
            TokenTree::Ident(id) if id.text == "unsafe" => {
                // The undocumented-unsafe rule runs on the lexical pass
                // (comments.rs); nothing to record here.
                let _ = id;
            }
            // `name!(...)` macro invocation.
            TokenTree::Ident(id)
                if matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.ch == '!')
                    && matches!(toks.get(i + 2), Some(TokenTree::Group(_))) =>
            {
                out.push(Event::MacroUse {
                    name: id.text.clone(),
                    line: id.span.line,
                });
                if let Some(TokenTree::Group(g)) = toks.get(i + 2) {
                    extract(&g.stream.0, krate, out, false);
                }
                i += 3;
                at_stmt_start = false;
                continue;
            }
            // `PlanStep::` / `SeedChoice::` reference.
            TokenTree::Ident(id)
                if (id.text == "PlanStep" || id.text == "SeedChoice")
                    && matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.ch == ':')
                    && matches!(toks.get(i + 2), Some(TokenTree::Punct(p)) if p.ch == ':') =>
            {
                out.push(Event::PlanOp {
                    name: id.text.clone(),
                    line: id.span.line,
                });
            }
            // `name(...)`: free call, path call, or method call.
            TokenTree::Ident(id) if matches!(toks.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis) =>
            {
                let Some(TokenTree::Group(args)) = toks.get(i + 1) else {
                    unreachable!()
                };
                let name = id.text.as_str();
                let line = id.span.line;
                let is_method =
                    i >= 1 && matches!(&toks[i - 1], TokenTree::Punct(p) if p.ch == '.');
                let qual = if !is_method
                    && i >= 2
                    && matches!(&toks[i - 1], TokenTree::Punct(p) if p.ch == ':')
                    && matches!(&toks[i - 2], TokenTree::Punct(p) if p.ch == ':')
                {
                    match toks.get(i.wrapping_sub(3)) {
                        Some(TokenTree::Ident(q)) => Some(q.text.clone()),
                        _ => None,
                    }
                } else {
                    None
                };
                let recv = if is_method {
                    recv_segment(toks, i - 1)
                } else {
                    None
                };

                let classified = classify_call(
                    name, is_method, &qual, &recv, args, krate, stmt_let, &stmt_var, line, out,
                );
                if classified && chained_unwrap(toks, i + 1) {
                    // `.lock().unwrap()` on a modeled lock: flagged as a
                    // panic on a lock result regardless of receiver name.
                    if matches!(out.last(), Some(Event::Acquire { .. })) {
                        out.push(Event::LockUnwrap { line });
                    }
                }
                if classified && chain_consumes_guard(toks, i + 1) {
                    // `mutex_lock(&x).allocate_page()?` — the chain consumes
                    // the guard and the `let` binds the *result*, so the
                    // guard is a statement temporary, not block-scoped.
                    if let Some(Event::Acquire { let_bound, var, .. }) = out.last_mut() {
                        *let_bound = false;
                        *var = None;
                    }
                }
                extract(&args.stream.0, krate, out, false);
                i += 2;
                at_stmt_start = false;
                continue;
            }
            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                out.push(Event::EnterBlock);
                extract(&g.stream.0, krate, out, true);
                out.push(Event::ExitBlock);
                // A block in statement position ends the statement without a
                // `;` (if/match/loop statements): scrutinee temporaries drop
                // here. Struct literals mid-expression (followed by `.`/`?`)
                // and `let x = S { .. };` (followed by `;`) are excluded.
                let ends_stmt = stmt_ctx
                    && !matches!(
                        toks.get(i + 1),
                        Some(TokenTree::Punct(p)) if p.ch == '.' || p.ch == '?' || p.ch == ';'
                    );
                if ends_stmt {
                    out.push(Event::EndStmt);
                    stmt_let = false;
                    at_stmt_start = true;
                } else {
                    at_stmt_start = false;
                }
                i += 1;
                continue;
            }
            TokenTree::Group(g) if g.delimiter == Delimiter::Bracket => {
                // Indexing when the bracket follows an ident or a group
                // (call result / prior index); array literals and types
                // follow punctuation and stay silent. A preceding lifetime
                // (`&'a [u8]`) or keyword (`return [..]`, `&mut [..]`) means
                // a slice type or array literal, not indexing.
                let prev_is_expr = match toks.get(i.wrapping_sub(1)) {
                    Some(TokenTree::Ident(p)) if i >= 1 => {
                        !KEYWORDS_BEFORE_BRACKET.contains(&p.text.as_str())
                            && !matches!(
                                toks.get(i.wrapping_sub(2)),
                                Some(TokenTree::Punct(q)) if i >= 2 && q.ch == '\''
                            )
                    }
                    Some(TokenTree::Group(_)) if i >= 1 => true,
                    _ => false,
                };
                if prev_is_expr {
                    out.push(Event::Index { line: g.span.line });
                }
                extract(&g.stream.0, krate, out, false);
                i += 1;
                at_stmt_start = false;
                continue;
            }
            TokenTree::Group(g) => {
                extract(&g.stream.0, krate, out, false);
                i += 1;
                at_stmt_start = false;
                continue;
            }
            _ => {}
        }
        if !matches!(&toks[i], TokenTree::Punct(_)) {
            at_stmt_start = false;
        }
        i += 1;
    }
}

/// Classify one call. Returns true when the call became an `Acquire`.
#[allow(clippy::too_many_arguments)]
fn classify_call(
    name: &str,
    is_method: bool,
    qual: &Option<String>,
    recv: &Option<String>,
    args: &Group,
    krate: &str,
    stmt_let: bool,
    stmt_var: &Option<String>,
    line: usize,
    out: &mut Vec<Event>,
) -> bool {
    // Poison-recovering helper: `rd(&self.dir)`, `write_lock(&frame.data)`.
    if !is_method {
        if let Some(mode) = config::helper_mode(name) {
            if let Some(field) = arg_field(args) {
                if let Some(class) = config::lock_for_field(krate, &field) {
                    out.push(Event::Acquire {
                        class,
                        mode,
                        let_bound: stmt_let,
                        var: if stmt_let { stmt_var.clone() } else { None },
                        line,
                    });
                    return true;
                }
            }
            // A lock helper over an unmodeled field is still an
            // acquisition of *something*; record as a call so the
            // call-graph can stay conservative.
        }

        // `drop(guard)` / `mem::drop(guard)` — explicit early release.
        if name == "drop" {
            if let Some(var) = arg_field(args) {
                out.push(Event::Release { var, line });
            }
            return false;
        }
    }

    if is_method {
        // Atomic operation with explicit Ordering arguments.
        if ATOMIC_OPS.contains(&name) {
            let orderings = orderings_in(args);
            if !orderings.is_empty() {
                out.push(Event::Atomic {
                    field: recv.clone().unwrap_or_default(),
                    op: name.to_string(),
                    orderings,
                    line,
                });
                return false;
            }
        }

        // Guard-returning method on a modeled lock field.
        if let Some(mode) = config::method_mode(name) {
            if let Some(r) = recv {
                if let Some(class) = config::lock_for_field(krate, r) {
                    out.push(Event::Acquire {
                        class,
                        mode,
                        let_bound: stmt_let,
                        var: if stmt_let { stmt_var.clone() } else { None },
                        line,
                    });
                    return true;
                }
            }
        }

        if name == "unwrap" || name == "expect" {
            if matches!(recv.as_deref(), Some("lock") | Some("try_lock")) {
                out.push(Event::LockUnwrap { line });
            }
            out.push(Event::Panicky {
                name: name.to_string(),
                recv: recv.clone(),
                line,
            });
            return false;
        }

        if name == "write_page" || name == "allocate_page" {
            out.push(Event::RawPageIo {
                name: name.to_string(),
                line,
            });
            return false;
        }
    }

    if SYNOPSIS_MUTATORS.contains(&name) {
        out.push(Event::SynopsisMutation {
            name: name.to_string(),
            line,
        });
        return false;
    }

    // Guard-returning function from the summary table (`dir_mut`).
    if let Some(class) = config::guard_returning_fn(name) {
        out.push(Event::Acquire {
            class,
            mode: AcqMode::Write,
            let_bound: stmt_let,
            var: if stmt_let { stmt_var.clone() } else { None },
            line,
        });
        return true;
    }

    // A method chained directly onto a guard producer operates on the
    // *guarded value* (`mutex_lock(&x).read_page(..)`, `rd(&d).get(..)`);
    // its name must not resolve to same-named workspace functions.
    if is_method {
        if let Some(r) = recv.as_deref() {
            if config::helper_mode(r).is_some()
                || config::method_mode(r).is_some()
                || config::guard_returning_fn(r).is_some()
                || r == "unwrap"
                || r == "expect"
            {
                return false;
            }
        }
    }

    out.push(Event::Call {
        name: name.to_string(),
        qual: qual.clone(),
        recv: recv.clone(),
        line,
    });
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(src: &str) -> Vec<FnModel> {
        let ast = syn::parse_file(src).expect("parse");
        collect("crates/core/src/store.rs", &ast)
    }

    fn events(src: &str) -> Vec<Event> {
        models(src).remove(0).events
    }

    #[test]
    fn helper_acquire_with_let_binding() {
        let ev = events("fn f(&self) { let g = wr(&self.dir); g.push(1); }");
        let acq = ev
            .iter()
            .find_map(|e| match e {
                Event::Acquire {
                    class, let_bound, ..
                } => Some((class.name, *let_bound)),
                _ => None,
            })
            .expect("acquire");
        assert_eq!(acq, ("core.directory", true));
    }

    #[test]
    fn temporary_acquire_not_let_bound() {
        let ev = events("fn f(&self) { *wr(&self.skip) = None; }");
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Acquire {
                class, let_bound: false, ..
            } if class.name == "core.skip_index"
        )));
    }

    #[test]
    fn shard_index_classifies_to_shard_not_index_var() {
        let ast =
            syn::parse_file("fn f(&self) { let s = write_lock(&self.shards[shard_of(id)]); }")
                .expect("parse");
        let m = collect("crates/pager/src/pool.rs", &ast);
        assert!(m[0].events.iter().any(|e| matches!(
            e,
            Event::Acquire { class, .. } if class.name == "pager.pool_shard"
        )));
    }

    #[test]
    fn atomic_op_with_ordering_extracted() {
        let ev = events("fn f(&self) { let g = self.dir_generation.load(Ordering::Acquire); }");
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Atomic { field, op, orderings, .. }
                if field == "dir_generation" && op == "load" && orderings == &["Acquire"]
        )));
    }

    #[test]
    fn fully_qualified_ordering_extracted() {
        let ev = events("fn f(&self) { c.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }");
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Atomic { orderings, .. } if orderings == &["Relaxed"]
        )));
    }

    #[test]
    fn multiline_unwrap_is_one_event() {
        let ev = events("fn f() { some_result\n    .unwrap\n    () ; }");
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::Panicky { name, .. } if name == "unwrap")));
    }

    #[test]
    fn unwrap_inside_string_not_flagged() {
        let ev = events("fn f() { let s = \".unwrap()\"; }");
        assert!(!ev.iter().any(|e| matches!(e, Event::Panicky { .. })));
    }

    #[test]
    fn lock_unwrap_detected_on_unknown_receiver() {
        let ev = events("fn f(m: &Mutex<u8>) { let g = m.lock().unwrap(); }");
        assert!(ev.iter().any(|e| matches!(e, Event::LockUnwrap { .. })));
    }

    #[test]
    fn chained_unwrap_on_modeled_lock_detected() {
        let ev = events("fn f(&self) { let g = self.dir.read().unwrap(); }");
        assert!(ev.iter().any(|e| matches!(e, Event::LockUnwrap { .. })));
    }

    #[test]
    fn io_read_unwrap_is_panicky_but_not_lock_unwrap() {
        let ev = events("fn f(r: &mut File) { r.read_exact(&mut b).unwrap(); }");
        assert!(ev.iter().any(|e| matches!(e, Event::Panicky { .. })));
        assert!(!ev.iter().any(|e| matches!(e, Event::LockUnwrap { .. })));
    }

    #[test]
    fn macro_and_plan_ops_extracted() {
        let ev = events("fn f() { dbg!(x); let p = PlanStep::Child { axis }; }");
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::MacroUse { name, .. } if name == "dbg")));
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::PlanOp { name, .. } if name == "PlanStep")));
    }

    #[test]
    fn raw_page_io_extracted_multiline() {
        let ev = events("fn f(s: &mut dyn Storage) { s\n  .write_page\n  (id, &buf).ok(); }");
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::RawPageIo { name, .. } if name == "write_page")));
    }

    #[test]
    fn indexing_expression_vs_array_literal() {
        let ev = events("fn f(b: &[u8]) { let x = b[0]; let a = [0u8; 4]; }");
        assert_eq!(
            ev.iter()
                .filter(|e| matches!(e, Event::Index { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn cfg_test_marks_models() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n";
        let ms = models(src);
        assert!(!ms[0].in_test);
        assert!(ms[1].in_test);
    }

    #[test]
    fn guard_returning_fn_summary_applies() {
        let ev = events("fn f(&self) { self.store.dir_mut().insert_after(a, b); }");
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Acquire { class, let_bound: false, .. } if class.name == "core.directory"
        )));
    }
}
