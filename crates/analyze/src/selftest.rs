//! Built-in fixtures proving each rule fires on seeded violations and stays
//! quiet on conforming code — including the cases the old line-regex lint
//! got wrong in both directions (multi-line calls it missed, substring
//! look-alikes it flagged).
//!
//! `cargo xtask analyze --self-test` runs these; `ci.sh` runs them on every
//! build so a rule that silently stops firing fails the pipeline.

use crate::analyze_sources;

/// A fixture that must produce at least the listed rules.
struct FailFixture {
    name: &'static str,
    path: &'static str,
    source: &'static str,
    expect: &'static [&'static str],
}

/// A fixture that must be completely clean.
struct PassFixture {
    name: &'static str,
    path: &'static str,
    source: &'static str,
}

const FAIL: &[FailFixture] = &[
    FailFixture {
        name: "hot-path unwrap",
        path: "crates/core/src/cursor.rs",
        source: "pub fn next(&mut self) -> u64 { self.pos.checked_add(1).unwrap() }\n",
        expect: &["hot-path-panic"],
    },
    FailFixture {
        // The old regex scanned single lines; `.unwrap\n()` slipped through.
        name: "hot-path multi-line unwrap (old false negative)",
        path: "crates/core/src/page.rs",
        source: "pub fn get(&self) -> u64 {\n    self.slot\n        .unwrap\n        ()\n}\n",
        expect: &["hot-path-panic"],
    },
    FailFixture {
        name: "hot-path spaced expect (old false negative)",
        path: "crates/pager/src/pool.rs",
        source: "pub fn pick(&self) -> u64 { self.slot . expect (\"slot\") }\n",
        expect: &["hot-path-panic"],
    },
    FailFixture {
        name: "panic macro in hot path",
        path: "crates/btree/src/lib.rs",
        source: "pub fn descend(&self) { if self.depth > 64 { panic!(\"deep\"); } }\n",
        expect: &["hot-path-panic"],
    },
    FailFixture {
        name: "stray dbg even in tests",
        path: "crates/core/src/naive.rs",
        source: "#[cfg(test)]\nmod tests {\n    fn t() { dbg!(1); }\n}\n",
        expect: &["stray-debug-macro"],
    },
    FailFixture {
        name: "undocumented unsafe",
        path: "crates/core/src/values.rs",
        source: "pub fn peek(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        expect: &["undocumented-unsafe"],
    },
    FailFixture {
        // Multi-line raw page IO, the other old false negative.
        name: "raw page io outside pager, multi-line",
        path: "crates/core/src/build.rs",
        source: "pub fn flush(s: &mut S, id: u64, b: &[u8]) {\n    s\n        .write_page\n        (id, b)\n        .ok();\n}\n",
        expect: &["raw-page-io"],
    },
    FailFixture {
        name: "plan operator outside planner",
        path: "crates/serve/src/service.rs",
        source: "pub fn fabricate() -> u32 { PlanStep::COUNT }\n",
        expect: &["plan-operator-construction"],
    },
    FailFixture {
        // The planner reads path supports; mutating a counter from there
        // would desynchronize the published per-generation synopsis.
        name: "synopsis mutation outside build/update",
        path: "crates/core/src/planner.rs",
        source: "pub fn cheat(s: &mut Synopsis, tags: &[TagCode]) {\n    s.add_path_count(tags, 1);\n}\n",
        expect: &["synopsis-mutation"],
    },
    FailFixture {
        // Multi-line mutator calls must be caught too (the old regex lint's
        // classic blind spot).
        name: "synopsis mutation outside core, multi-line",
        path: "crates/serve/src/service.rs",
        source: "pub fn drift(s: &mut Synopsis) {\n    s\n        .sub_tag_count\n        (TagCode(3), 1);\n}\n",
        expect: &["synopsis-mutation"],
    },
    FailFixture {
        // The seeded out-of-order acquisition: storage mutex held while
        // taking a shard lock inverts the declared hierarchy.
        name: "lock-order inversion (storage then shard)",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn bad(&self, id: u64) {\n        let st = mutex_lock(&self.storage);\n        let sh = write_lock(&self.shards[0]);\n        let _ = (st, sh, id);\n    }\n}\n",
        expect: &["lock-order"],
    },
    FailFixture {
        name: "lock-order inversion through a call",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn outer(&self) {\n        let st = mutex_lock(&self.storage);\n        self.grab_shard();\n        let _ = st;\n    }\n    fn grab_shard(&self) {\n        let sh = write_lock(&self.shards[1]);\n        let _ = sh;\n    }\n}\n",
        expect: &["lock-order"],
    },
    FailFixture {
        name: "shard lock re-entry",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn double(&self) {\n        let a = write_lock(&self.shards[0]);\n        let b = write_lock(&self.shards[1]);\n        let _ = (a, b);\n    }\n}\n",
        expect: &["lock-reentry"],
    },
    FailFixture {
        // Leaf inversion: a connection's outbound queue (rank 13) must
        // never be held while parking on the admission eventcount (rank 11).
        name: "lock-order inversion (conn out-queue then admission park)",
        path: "crates/serve/src/conn.rs",
        source: "impl OutQueue {\n    fn bad(&self, q: &AdmissionQueue) {\n        let g = lock(&self.out);\n        let p = lock_park(q);\n        let _ = (g, p);\n    }\n}\n",
        expect: &["lock-order"],
    },
    FailFixture {
        // The ring cursors look like counters but are part of the MPMC
        // protocol: an unexplained Relaxed is flagged.
        name: "relaxed on admission ring cursor",
        path: "crates/serve/src/admission.rs",
        source: "impl AdmissionQueue {\n    fn cursor(&self) -> usize {\n        self.enqueue_pos.load(Ordering::Relaxed)\n    }\n}\n",
        expect: &["atomic-ordering"],
    },
    FailFixture {
        name: "relaxed load of critical atomic",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn generation(&self) -> u64 {\n        self.dir_generation.load(Ordering::Relaxed)\n    }\n}\n",
        expect: &["atomic-ordering", "seqlock-recheck"],
    },
    FailFixture {
        name: "seqlock read without validation",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn peek(&self) -> u64 {\n        let g = self.dir_generation.load(Ordering::Acquire);\n        g\n    }\n}\n",
        expect: &["seqlock-recheck"],
    },
    FailFixture {
        name: "unwrap on serve worker path",
        path: "crates/serve/src/service.rs",
        source: "fn respond(r: Result<u32, ()>) -> u32 { r.unwrap() }\n",
        expect: &["serve-worker-panic"],
    },
    FailFixture {
        name: "protocol frame indexing on serve worker path",
        path: "crates/serve/src/proto.rs",
        source: "fn kind(buf: &[u8]) -> u8 { buf[0] }\n",
        expect: &["serve-worker-panic"],
    },
    FailFixture {
        name: "unwrap on a lock result",
        path: "crates/core/src/values.rs",
        source: "fn with_lock(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
        expect: &["lock-unwrap"],
    },
    FailFixture {
        name: "snapshot pin held across txn begin",
        path: "crates/core/src/update.rs",
        source: "impl XmlDb {\n    fn bad(&mut self, parent: &Dewey) {\n        let snap = self.snapshot();\n        self.insert_last_child(parent, \"<x/>\").ok();\n        let _ = snap;\n    }\n}\n",
        expect: &["guard-across-writer"],
    },
    FailFixture {
        name: "snapshot pin held across directory write lock",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn bad(&self) {\n        let snap = self.snapshot();\n        let d = wr(&self.dir);\n        let _ = (snap, d);\n    }\n}\n",
        expect: &["guard-across-writer"],
    },
    FailFixture {
        name: "allow without a reason",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn generation(&self) -> u64 {\n        // analyze: allow(atomic-ordering, seqlock-recheck)\n        self.dir_generation.load(Ordering::Relaxed)\n    }\n}\n",
        expect: &["bare-allow"],
    },
    FailFixture {
        name: "allow naming an unknown rule",
        path: "crates/core/src/naive.rs",
        source: "fn f() {\n    // analyze: allow(no-such-rule): misspelled\n    let _x = 1;\n}\n",
        expect: &["unknown-allow"],
    },
];

const PASS: &[PassFixture] = &[
    PassFixture {
        name: "unwrap in cfg(test) of a hot file",
        path: "crates/core/src/cursor.rs",
        source: "pub fn step(x: Option<u64>) -> Option<u64> { x }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::step(Some(1)).unwrap(); }\n}\n",
    },
    PassFixture {
        // The old regex flagged `my_dbg!(` because it contains `dbg!(`.
        name: "substring macro look-alike (old false positive)",
        path: "crates/core/src/naive.rs",
        source: "macro_rules! my_dbg { ($e:expr) => { $e } }\nfn f() -> u32 { my_dbg!(1) }\n",
    },
    PassFixture {
        name: "patterns inside strings and comments",
        path: "crates/core/src/page.rs",
        source: "// mentions .unwrap() and panic!( and unsafe in prose\npub fn doc() -> &'static str {\n    \".unwrap() panic!( .write_page( PlanStep:: dbg!( unsafe\"\n}\n",
    },
    PassFixture {
        name: "correct lock order (shard then storage then frame)",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn evict(&self, i: usize) {\n        let sh = write_lock(&self.shards[i]);\n        let st = mutex_lock(&self.storage);\n        let fr = read_lock(&frame.data);\n        let _ = (sh, st, fr);\n    }\n}\n",
    },
    PassFixture {
        // Statement-scoped temporaries drop before the next acquisition:
        // no pair, no finding, even though skip < dir would be fine anyway
        // and dir -> skip reversed would not.
        name: "sequential statement guards do not overlap",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn invalidate(&self) {\n        *wr(&self.dir) = Directory::new();\n        *wr(&self.skip) = None;\n    }\n}\n",
    },
    PassFixture {
        name: "relaxed on an exempt statistics counter",
        path: "crates/serve/src/metrics.rs",
        source: "impl Metrics {\n    fn bump(&self) {\n        self.rejected.fetch_add(1, Ordering::Relaxed);\n    }\n}\n",
    },
    PassFixture {
        // Regression: a `thread_local!` item must end at its brace group —
        // the parser once scanned on to the next top-level `;`, swallowing
        // the following test module and losing its `#[cfg(test)]` marker.
        name: "thread_local item does not swallow the following test module",
        path: "crates/pager/src/local_cache.rs",
        source: "thread_local! {\n    static T: u32 = 0;\n}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
    },
    PassFixture {
        // The eventcount shape: SeqCst sleepers check, then the park mutex
        // taken with nothing else held.
        name: "admission park taken alone after SeqCst sleepers check",
        path: "crates/serve/src/admission.rs",
        source: "impl AdmissionQueue {\n    fn wake(&self) {\n        if self.sleepers.load(Ordering::SeqCst) > 0 {\n            let g = lock_park(self);\n            let _ = g;\n        }\n    }\n}\n",
    },
    PassFixture {
        // The conn out-queue is a leaf: workers push completed frames under
        // it with no other lock held.
        name: "conn out-queue held alone is a leaf",
        path: "crates/serve/src/conn.rs",
        source: "impl OutQueue {\n    fn complete(&self, frame: Vec<u8>) {\n        let mut g = lock(&self.out);\n        g.frames.push_back(frame);\n    }\n}\n",
    },
    PassFixture {
        name: "allowed with a reason",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn cache_key(&self) -> u64 {\n        // analyze: allow(atomic-ordering, seqlock-recheck): advisory cache key, value re-validated under the directory lock\n        self.dir_generation.load(Ordering::Relaxed)\n    }\n}\n",
    },
    PassFixture {
        name: "seqlock reader with validation re-check",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn read_consistent(&self) -> Option<u64> {\n        let g0 = self.dir_generation.load(Ordering::Acquire);\n        let v = self.snapshot();\n        let g1 = self.dir_generation.load(Ordering::Acquire);\n        if g0 == g1 && g0 & 1 == 0 {\n            Some(v)\n        } else {\n            None\n        }\n    }\n}\n",
    },
    PassFixture {
        name: "plan operators inside the planner",
        path: "crates/core/src/planner.rs",
        source: "pub fn seed() -> u32 { SeedChoice::COUNT }\n",
    },
    PassFixture {
        name: "synopsis mutation inside the update path",
        path: "crates/core/src/update.rs",
        source: "pub fn on_delete(s: &mut Synopsis, tags: &[TagCode]) {\n    s.sub_path_count(tags, 1);\n}\n",
    },
    PassFixture {
        // Read-only synopsis use is fine anywhere: the planner consumes
        // the published snapshot through the support queries.
        name: "synopsis read API outside core",
        path: "crates/serve/src/service.rs",
        source: "pub fn gauge(s: &Synopsis) -> u64 { s.distinct_paths() }\n",
    },
    PassFixture {
        // Test code may assemble synopses to exercise the read API.
        name: "synopsis mutation in cfg(test)",
        path: "crates/core/src/planner.rs",
        source: "#[cfg(test)]\nmod tests {\n    fn mk(s: &mut Synopsis) { s.add_tag_count(TagCode(1), 2); }\n}\n",
    },
    PassFixture {
        name: "raw page io inside the pager",
        path: "crates/pager/src/wal.rs",
        source: "pub fn replay(s: &mut S, id: u64, b: &[u8]) { s.write_page(id, b).ok(); }\n",
    },
    PassFixture {
        name: "documented unsafe",
        path: "crates/core/src/values.rs",
        source: "pub fn peek(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n",
    },
    PassFixture {
        name: "bounds-checked protocol access on serve worker path",
        path: "crates/serve/src/proto.rs",
        source: "fn kind(buf: &[u8]) -> Option<u8> { buf.first().copied() }\n",
    },
    PassFixture {
        // `drop(guard)` is the idiomatic early release; without it this
        // would be a storage -> shard inversion.
        name: "explicit drop releases the guard before the next lock",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn stepwise(&self) {\n        let st = mutex_lock(&self.storage);\n        drop(st);\n        let sh = write_lock(&self.shards[0]);\n        let _ = sh;\n    }\n}\n",
    },
    PassFixture {
        // The `let` binds the chain's *result* (a PageId), not the guard:
        // the guard is a statement temporary, gone before the shard lock.
        name: "guard consumed by a method chain is a statement temporary",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn alloc(&self) -> PagerResult<()> {\n        let id = mutex_lock(&self.storage).allocate_page()?;\n        let sh = write_lock(&self.shards[0]);\n        let _ = (id, sh);\n        Ok(())\n    }\n}\n",
    },
    PassFixture {
        // `map.get(..)` on a local must not resolve to the same-named
        // workspace function (which here would re-enter the shard lock).
        name: "collection method name does not resolve to workspace fn",
        path: "crates/pager/src/pool.rs",
        source: "impl BufferPool {\n    fn get(&self, id: u64) {\n        let sh = write_lock(&self.shards[0]);\n        let _ = (sh, id);\n    }\n    fn probe(&self, map: &HashMap<u64, u64>) -> Option<u64> {\n        let sh = write_lock(&self.shards[1]);\n        let v = map.get(&1).copied();\n        let _ = sh;\n        v\n    }\n}\n",
    },
    PassFixture {
        // Read-path locks under a snapshot pin are the normal reader shape;
        // only *write*-mode directory acquisition is writer work.
        name: "snapshot pin over read-path locks is fine",
        path: "crates/core/src/store.rs",
        source: "impl StructStore {\n    fn ok(&self) -> u64 {\n        let snap = self.snapshot();\n        let d = rd(&self.dir);\n        let _ = (snap, d);\n        0\n    }\n}\n",
    },
    PassFixture {
        // Dropping the guard first is the prescribed fix for
        // guard-across-writer.
        name: "snapshot pin dropped before the writer runs",
        path: "crates/core/src/update.rs",
        source: "impl XmlDb {\n    fn ok(&mut self, parent: &Dewey) {\n        let snap = self.snapshot();\n        drop(snap);\n        self.insert_last_child(parent, \"<x/>\").ok();\n    }\n}\n",
    },
    PassFixture {
        // The epoch pin is a refcount: re-pinning under a held pin is not
        // lock re-entry.
        name: "nested snapshot pins are re-entrant refcounts",
        path: "crates/serve/src/service.rs",
        source: "impl QueryService {\n    fn ok(&self) {\n        let a = self.snapshot();\n        let b = self.snapshot();\n        let _ = (a, b);\n    }\n}\n",
    },
    PassFixture {
        // Slice types in struct declarations (`&'a [u8]`) are not indexing.
        name: "slice type in a struct declaration is not indexing",
        path: "crates/serve/src/json.rs",
        source: "struct Parser<'a> {\n    bytes: &'a [u8],\n    pos: usize,\n}\n",
    },
];

/// Run every fixture; returns a human-readable failure list on error.
pub fn run() -> Result<(), String> {
    let mut errors = Vec::new();

    for f in FAIL {
        match analyze_sources(&[(f.path, f.source)]) {
            Err(e) => errors.push(format!("fail-fixture `{}`: {e}", f.name)),
            Ok(report) => {
                for rule in f.expect {
                    if !report.findings.iter().any(|x| x.rule == *rule) {
                        errors.push(format!(
                            "fail-fixture `{}`: expected rule `{rule}` did not fire (got: {:?})",
                            f.name,
                            report.findings.iter().map(|x| x.rule).collect::<Vec<_>>()
                        ));
                    }
                }
            }
        }
    }

    for p in PASS {
        match analyze_sources(&[(p.path, p.source)]) {
            Err(e) => errors.push(format!("pass-fixture `{}`: {e}", p.name)),
            Ok(report) => {
                if !report.is_clean() {
                    errors.push(format!(
                        "pass-fixture `{}`: unexpected findings: {}",
                        p.name,
                        report
                            .findings
                            .iter()
                            .map(|x| x.to_string())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ));
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_fixtures_behave() {
        if let Err(e) = super::run() {
            panic!("self-test failures:\n{e}");
        }
    }
}
