//! The concurrent query service: a fixed worker pool draining a bounded
//! admission queue, each worker evaluating against a pinned MVCC
//! [`Snapshot`] of the database.
//!
//! Design notes:
//!
//! * **Snapshot pinning.** Every worker pins the newest published
//!   generation (see DESIGN.md §14) and serves queries against that
//!   immutable view; when a committed update publishes a newer generation
//!   the worker re-pins before its next job. Pinning is lock-free, so a
//!   concurrent writer — updating through `&mut XmlDb` while the service
//!   reads through a [`SnapshotSource`] — never blocks the read path.
//! * **Batched admission.** Jobs flow through a bounded lock-free MPMC
//!   ring ([`crate::admission::AdmissionQueue`]); producers fail fast with
//!   [`QueryError::QueueFull`] at `queue_cap`, and workers drain the ring
//!   in batches so one wakeup amortizes across several queued jobs instead
//!   of paying a mutex handoff per query (DESIGN.md §15).
//! * **Two submission shapes.** [`QueryService::query_with_timeout`]
//!   blocks the caller on a response slot — the classic one-request-per
//!   round-trip shape. [`QueryService::query_async`] hands the service a
//!   completion callback instead, which is what lets a pipelined
//!   connection keep many requests in flight without a thread per request.
//! * **Graceful timeout.** A query that misses its deadline returns
//!   [`QueryError::Timeout`] to the caller; the worker thread is never
//!   killed. If the worker was mid-evaluation, its eventual result lands in
//!   an abandoned response slot and is dropped. Async jobs get their
//!   deadline checked when a worker picks them up (expired-in-queue jobs
//!   complete with `Timeout` without touching the engine).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nok_core::{QueryMatch, QueryOptions, QueryScratch, Snapshot, SnapshotSource, XmlDb};
use nok_pager::{GenerationStats, Storage};

use crate::admission::{AdmissionQueue, PushError};
use crate::metrics::ServerMetrics;
use crate::plan_cache::{normalize_query, PlanCache};

/// How many jobs one worker wakeup drains from the admission ring at most.
/// Small enough that a batch cannot starve idle workers, large enough that
/// a deep queue is drained with a fraction of the wakeups.
const DRAIN_BATCH: usize = 4;

/// Errors surfaced to a query submitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The admission queue was full; try again later.
    QueueFull,
    /// The query did not complete before its deadline.
    Timeout,
    /// The engine rejected or failed the query (parse error, I/O error).
    Engine(String),
    /// The service is shutting down.
    Shutdown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::QueueFull => write!(f, "admission queue full"),
            QueryError::Timeout => write!(f, "query deadline exceeded"),
            QueryError::Engine(msg) => write!(f, "query failed: {msg}"),
            QueryError::Shutdown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads. 0 is allowed (useful in tests: nothing is ever
    /// executed, so admission and timeout behavior become deterministic).
    pub workers: usize,
    /// Maximum queued (admitted but unstarted) queries.
    pub queue_cap: usize,
    /// Deadline applied when the caller does not pass one.
    pub default_timeout: Duration,
    /// Maximum cached query plans (0 disables the plan cache).
    pub plan_cache_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_cap: 128,
            default_timeout: Duration::from_secs(10),
            plan_cache_cap: 256,
        }
    }
}

/// One-shot result slot: the submitting thread waits on it, the worker
/// fills it.
struct ResponseSlot {
    result: Mutex<Option<Result<Vec<QueryMatch>, QueryError>>>,
    cv: Condvar,
}

/// Where a completed job's result goes.
enum Sink {
    /// A blocked submitter waits on the slot.
    Wait(Arc<ResponseSlot>),
    /// A pipelined submitter gets called back (on the worker thread).
    Callback(Box<dyn FnOnce(Result<Vec<QueryMatch>, QueryError>) + Send + 'static>),
}

struct Job {
    path: String,
    opts: QueryOptions,
    enqueued: Instant,
    deadline: Instant,
    sink: Sink,
}

struct Inner<S: Storage> {
    /// The live handle, when the service was started over one. Absent for
    /// services started from a bare [`SnapshotSource`] (a writer elsewhere
    /// owns the database exclusively).
    db: Option<Arc<XmlDb<S>>>,
    /// Pins worker snapshots; never borrows the database.
    source: SnapshotSource<S>,
    queue: AdmissionQueue<Job>,
    shutdown: AtomicBool,
    metrics: ServerMetrics,
    plan_cache: PlanCache,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running query service. Dropping it shuts the workers down.
pub struct QueryService<S: Storage + Send + 'static> {
    inner: Arc<Inner<S>>,
    default_timeout: Duration,
    workers: Vec<JoinHandle<()>>,
}

impl<S: Storage + Send + 'static> QueryService<S> {
    /// Start `config.workers` worker threads over a shared database.
    pub fn start(db: Arc<XmlDb<S>>, config: ServiceConfig) -> Self {
        let source = db.snapshot_source();
        Self::start_inner(Some(db), source, config)
    }

    /// Start the service from a bare [`SnapshotSource`], with no handle to
    /// the live database. Use this when a writer owns the `XmlDb`
    /// exclusively (`&mut`) and commits updates while the service reads:
    /// workers keep pinning the newest published generation, lock-free.
    pub fn start_from_source(source: SnapshotSource<S>, config: ServiceConfig) -> Self {
        Self::start_inner(None, source, config)
    }

    fn start_inner(
        db: Option<Arc<XmlDb<S>>>,
        source: SnapshotSource<S>,
        config: ServiceConfig,
    ) -> Self {
        let inner = Arc::new(Inner {
            db,
            source,
            queue: AdmissionQueue::new(config.queue_cap),
            shutdown: AtomicBool::new(false),
            metrics: ServerMetrics::default(),
            plan_cache: PlanCache::new(config.plan_cache_cap),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nok-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .unwrap_or_else(|e| {
                        // Thread spawn only fails on resource exhaustion at
                        // startup; surface it loudly rather than serving
                        // with a silently smaller pool.
                        eprintln!("nok-serve: failed to spawn worker {i}: {e}");
                        std::process::exit(1);
                    })
            })
            .collect();
        QueryService {
            inner,
            default_timeout: config.default_timeout,
            workers,
        }
    }

    /// Default deadline applied when a caller does not pass one.
    pub fn default_timeout(&self) -> Duration {
        self.default_timeout
    }

    /// Submit a query and wait for its result with the default deadline.
    pub fn query(&self, path: &str) -> Result<Vec<QueryMatch>, QueryError> {
        self.query_with_timeout(path, QueryOptions::default(), self.default_timeout)
    }

    /// Submit a query and wait for its result, failing with
    /// [`QueryError::Timeout`] if `timeout` elapses first.
    pub fn query_with_timeout(
        &self,
        path: &str,
        opts: QueryOptions,
        timeout: Duration,
    ) -> Result<Vec<QueryMatch>, QueryError> {
        let inner = &self.inner;
        let now = Instant::now();
        let slot = Arc::new(ResponseSlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        });
        self.submit(path, opts, now, timeout, Sink::Wait(Arc::clone(&slot)))?;

        // Wait for the worker, bounded by the deadline.
        let mut guard = lock(&slot.result);
        while guard.is_none() {
            let remaining = timeout.saturating_sub(now.elapsed());
            if remaining.is_zero() {
                inner.metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(QueryError::Timeout);
            }
            let (g, _timed_out) = slot
                .cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        // The worker has delivered (take() so the slot can be dropped).
        match guard.take() {
            Some(r) => r,
            None => Err(QueryError::Shutdown),
        }
    }

    /// Submit a query without blocking: `on_done` runs on a worker thread
    /// once the query completes (or expires in the queue). Admission
    /// failures — [`QueryError::QueueFull`], [`QueryError::Shutdown`] —
    /// are returned immediately instead of invoking the callback, so a
    /// connection loop can answer them in-line. This is the submission
    /// shape behind the pipelined binary protocol: one connection keeps
    /// many queries in flight with no per-request thread.
    pub fn query_async<F>(
        &self,
        path: &str,
        opts: QueryOptions,
        timeout: Option<Duration>,
        on_done: F,
    ) -> Result<(), QueryError>
    where
        F: FnOnce(Result<Vec<QueryMatch>, QueryError>) + Send + 'static,
    {
        let timeout = timeout.unwrap_or(self.default_timeout);
        self.submit(
            path,
            opts,
            Instant::now(),
            timeout,
            Sink::Callback(Box::new(on_done)),
        )
    }

    fn submit(
        &self,
        path: &str,
        opts: QueryOptions,
        now: Instant,
        timeout: Duration,
        sink: Sink,
    ) -> Result<(), QueryError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(QueryError::Shutdown);
        }
        let job = Job {
            path: path.to_string(),
            opts,
            enqueued: now,
            deadline: now + timeout,
            sink,
        };
        match inner.queue.push(job) {
            Ok(()) => {
                inner
                    .metrics
                    .queue_depth
                    .store(inner.queue.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(QueryError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(QueryError::Shutdown),
        }
    }

    /// Aggregate server metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.inner.metrics
    }

    /// Buffer-pool hit ratio of the structural store (the shared pool the
    /// serving layer exists to exercise).
    pub fn pool_hit_ratio(&self) -> f64 {
        match self.inner.source.snapshot() {
            Ok(s) => s.store().pool().stats().hit_ratio(),
            Err(_) => 0.0,
        }
    }

    /// The shared database handle, when the service was started over one
    /// (`None` for source-started services — a writer owns the database).
    pub fn db(&self) -> Option<&Arc<XmlDb<S>>> {
        self.inner.db.as_ref()
    }

    /// Pin a snapshot of the newest published generation (for read-only
    /// side channels such as `explain` that bypass the worker pool).
    pub fn snapshot(&self) -> Result<Snapshot<S>, QueryError> {
        self.inner
            .source
            .snapshot()
            .map_err(|e| QueryError::Engine(e.to_string()))
    }

    /// Generation reclamation gauges (pinned readers, live/retired counts).
    pub fn generation_stats(&self) -> &Arc<GenerationStats> {
        self.inner.source.generation_stats()
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.inner.plan_cache.len()
    }

    /// Stop accepting work, finish nothing further, and join the workers.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<S: Storage + Send + 'static> Drop for QueryService<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<S: Storage + Send + 'static>(inner: &Inner<S>, worker: usize) {
    // Per-worker scratch: stats vectors and the result buffer live for the
    // worker's lifetime, so steady-state queries avoid fresh allocations
    // for bookkeeping.
    let mut scratch = QueryScratch::new();
    let mut results: Vec<QueryMatch> = Vec::new();
    // The worker's pinned snapshot. Kept across jobs (re-assembling the
    // view per query would throw away its decode caches) and re-pinned
    // only when a commit has published a newer generation.
    let mut snap: Option<Snapshot<S>> = None;
    let mut batch: Vec<Job> = Vec::with_capacity(DRAIN_BATCH);
    while inner.queue.pop_wait_batch(&mut batch, DRAIN_BATCH) {
        inner
            .metrics
            .queue_depth
            .store(inner.queue.len() as u64, Ordering::Relaxed);
        for job in batch.drain(..) {
            let now = Instant::now();
            if now >= job.deadline {
                // Expired while queued: don't waste engine time on it.
                inner.metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                deliver(job.sink, Err(QueryError::Timeout));
                continue;
            }
            let current = inner.source.current_epoch();
            if snap.as_ref().map(|s| s.epoch()) != Some(current) {
                match inner.source.snapshot() {
                    Ok(s) => snap = Some(s),
                    Err(e) => {
                        inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                        deliver(job.sink, Err(QueryError::Engine(e.to_string())));
                        continue;
                    }
                }
            }
            let Some(view) = snap.as_ref() else {
                // Unreachable: the branch above either pinned or continued.
                deliver(job.sink, Err(QueryError::Shutdown));
                continue;
            };
            let outcome = run_query(inner, view, &job, &mut scratch, &mut results);
            match outcome {
                Ok(()) => {
                    inner.metrics.served.fetch_add(1, Ordering::Relaxed);
                    inner
                        .metrics
                        .latency
                        .record_shard(worker, job.enqueued.elapsed());
                    deliver(job.sink, Ok(results.clone()));
                }
                Err(e) => {
                    inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    deliver(job.sink, Err(QueryError::Engine(e.to_string())));
                }
            }
        }
    }
}

/// Evaluate one job against the worker's pinned snapshot: look the plan up
/// in the shared cache (keyed by the forced strategy + normalized query
/// text, tagged with the snapshot's commit epoch), planning from scratch
/// on a miss, then execute it with the worker's pooled scratch buffers.
/// The cache-hit path parses nothing and plans nothing — it goes straight
/// to the operator executor.
fn run_query<S: Storage + Send + 'static>(
    inner: &Inner<S>,
    view: &Snapshot<S>,
    job: &Job,
    scratch: &mut QueryScratch,
    results: &mut Vec<QueryMatch>,
) -> nok_core::CoreResult<()> {
    let key = format!("{:?}|{}", job.opts.strategy, normalize_query(&job.path));
    let epoch = view.epoch();
    let looked = inner.plan_cache.lookup(&key, epoch);
    if looked.stale {
        inner.metrics.plan_stale.fetch_add(1, Ordering::Relaxed);
    }
    let planned = match looked.plan {
        Some(p) => {
            inner.metrics.plan_hits.fetch_add(1, Ordering::Relaxed);
            p
        }
        None => {
            inner.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
            let p = Arc::new(view.plan_query(&job.path, job.opts)?);
            inner.plan_cache.insert(key, epoch, Arc::clone(&p));
            p
        }
    };
    view.execute_plan(&planned, scratch, results)?;
    if scratch.stats().proven_empty {
        inner.metrics.empty_proofs.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

fn deliver(sink: Sink, result: Result<Vec<QueryMatch>, QueryError>) {
    match sink {
        Sink::Wait(slot) => {
            let mut guard = lock(&slot.result);
            *guard = Some(result);
            slot.cv.notify_all();
        }
        Sink::Callback(cb) => cb(result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nok_pager::MemStorage;

    const BIB: &str = r#"<bib>
        <book year="1994"><title>TCP/IP</title><price>65.95</price></book>
        <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
    </bib>"#;

    fn service(workers: usize, queue_cap: usize) -> QueryService<MemStorage> {
        let db = Arc::new(XmlDb::build_in_memory(BIB).unwrap());
        QueryService::start(
            db,
            ServiceConfig {
                workers,
                queue_cap,
                default_timeout: Duration::from_secs(5),
                plan_cache_cap: 64,
            },
        )
    }

    #[test]
    fn serves_a_query() {
        let svc = service(2, 16);
        let hits = svc.query("//book/title").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(svc.metrics().served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn engine_errors_are_reported_not_fatal() {
        let svc = service(1, 16);
        let err = svc.query("not a path").unwrap_err();
        assert!(matches!(err, QueryError::Engine(_)));
        // The worker survives and serves the next query.
        assert_eq!(svc.query("//book").unwrap().len(), 2);
        assert_eq!(svc.metrics().failed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_workers_time_out_gracefully() {
        let svc = service(0, 16);
        let err = svc
            .query_with_timeout("//book", QueryOptions::default(), Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, QueryError::Timeout);
        assert_eq!(svc.metrics().timed_out.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_rejects() {
        let svc = service(0, 2);
        // With no workers the queue never drains: the 3rd submit must be
        // rejected. Submit via threads since submits block on their slot.
        let svc = Arc::new(svc);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let _ = svc.query_with_timeout(
                    "//book",
                    QueryOptions::default(),
                    Duration::from_millis(300),
                );
            }));
        }
        // Wait until both jobs are queued.
        while svc.metrics().queue_depth.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        let err = svc
            .query_with_timeout("//book", QueryOptions::default(), Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err, QueryError::QueueFull);
        assert_eq!(svc.metrics().rejected.load(Ordering::Relaxed), 1);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_submissions_all_answer() {
        let svc = Arc::new(service(4, 64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let hits = svc.query("//book[price<50]").unwrap();
                        assert_eq!(hits.len(), 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(svc.metrics().served.load(Ordering::Relaxed), 200);
        assert!(svc.metrics().latency.count() == 200);
        assert!(svc.pool_hit_ratio() > 0.0);
    }

    #[test]
    fn async_submissions_complete_via_callback() {
        let svc = service(2, 64);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            svc.query_async("//book/title", QueryOptions::default(), None, move |r| {
                let _ = tx.send((i, r));
            })
            .unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let (i, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(r.unwrap().len(), 2);
            assert!(seen.insert(i), "each callback fires exactly once");
        }
        assert_eq!(svc.metrics().served.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn async_expired_jobs_complete_with_timeout() {
        // No workers: nothing drains until shutdown, so an async job with a
        // tiny deadline is dead on arrival once a worker exists. Use one
        // worker plus a queue-stuffing long job? Simplest deterministic
        // shape: zero-duration timeout, one worker — the job is expired by
        // the time it is drained.
        let svc = service(1, 16);
        let (tx, rx) = std::sync::mpsc::channel();
        svc.query_async(
            "//book",
            QueryOptions::default(),
            Some(Duration::ZERO),
            move |r| {
                let _ = tx.send(r);
            },
        )
        .unwrap();
        let r = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(r.unwrap_err(), QueryError::Timeout);
    }

    #[test]
    fn async_admission_failures_return_inline() {
        let mut svc = service(0, 1);
        svc.query_async("//book", QueryOptions::default(), None, |_| {})
            .unwrap();
        let invoked = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&invoked);
        let err = svc
            .query_async("//book", QueryOptions::default(), None, move |_| {
                flag.store(true, Ordering::Release);
            })
            .unwrap_err();
        assert_eq!(err, QueryError::QueueFull);
        assert!(
            !invoked.load(Ordering::Acquire),
            "callback must not run for rejected submissions"
        );
        svc.shutdown();
        let err = svc
            .query_async("//book", QueryOptions::default(), None, |_| {})
            .unwrap_err();
        assert_eq!(err, QueryError::Shutdown);
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let svc = service(1, 16);
        for _ in 0..5 {
            // Whitespace variants normalize to the same cache key.
            assert_eq!(svc.query("//book/title").unwrap().len(), 2);
            assert_eq!(svc.query(" //book / title ").unwrap().len(), 2);
        }
        let m = svc.metrics();
        assert_eq!(m.plan_misses.load(Ordering::Relaxed), 1);
        assert_eq!(m.plan_hits.load(Ordering::Relaxed), 9);
        assert_eq!(svc.plan_cache_len(), 1);
    }

    #[test]
    fn distinct_queries_occupy_distinct_slots() {
        let svc = service(1, 16);
        svc.query("//book").unwrap();
        svc.query("//title").unwrap();
        svc.query("//book").unwrap();
        let m = svc.metrics();
        assert_eq!(m.plan_misses.load(Ordering::Relaxed), 2);
        assert_eq!(m.plan_hits.load(Ordering::Relaxed), 1);
        assert_eq!(svc.plan_cache_len(), 2);
    }

    #[test]
    fn empty_proofs_are_counted() {
        let svc = service(1, 16);
        // title has no book descendants: the synopsis proves the path
        // unsupported and the worker answers without starting a fragment.
        assert!(svc.query("//title//book").unwrap().is_empty());
        assert_eq!(svc.metrics().empty_proofs.load(Ordering::Relaxed), 1);
        // A non-empty query leaves the counter alone.
        assert_eq!(svc.query("//book/title").unwrap().len(), 2);
        assert_eq!(svc.metrics().empty_proofs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn commits_invalidate_proven_empty_plans() {
        let mut db = XmlDb::build_in_memory(BIB).unwrap();
        let svc = QueryService::start_from_source(
            db.snapshot_source(),
            ServiceConfig {
                workers: 1,
                queue_cap: 16,
                default_timeout: Duration::from_secs(5),
                plan_cache_cap: 64,
            },
        );
        // No <note> exists yet: the plan is proven empty and cached under
        // the current generation.
        assert!(svc.query("//book//note").unwrap().is_empty());
        assert_eq!(svc.metrics().empty_proofs.load(Ordering::Relaxed), 1);
        // The writer makes the path real and publishes a new generation.
        let book = db.query("//book").unwrap()[0].dewey.clone();
        db.insert_last_child(&book, "<note>n</note>").unwrap();
        // The cached proven-empty plan is stale; the replanned query sees
        // the updated synopsis and finds the node.
        assert_eq!(svc.query("//book//note").unwrap().len(), 1);
        assert_eq!(svc.metrics().plan_stale.load(Ordering::Relaxed), 1);
        assert_eq!(svc.metrics().empty_proofs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn source_started_service_serves_while_writer_commits() {
        let mut db = XmlDb::build_in_memory(BIB).unwrap();
        let svc = QueryService::start_from_source(
            db.snapshot_source(),
            ServiceConfig {
                workers: 1,
                queue_cap: 16,
                default_timeout: Duration::from_secs(5),
                plan_cache_cap: 64,
            },
        );
        assert!(svc.db().is_none(), "source-started service holds no db");
        assert_eq!(svc.query("//book").unwrap().len(), 2);
        // The writer still owns `db` exclusively and commits an update…
        let book = db.query("//book").unwrap()[0].dewey.clone();
        db.insert_last_child(&book, "<note>n</note>").unwrap();
        // …and the worker re-pins the new generation at its next job.
        assert_eq!(svc.query("//note").unwrap().len(), 1);
        // The //book plan cached under epoch 0 is now stale: dropped and
        // replanned, counted once.
        assert_eq!(svc.query("//book").unwrap().len(), 2);
        let m = svc.metrics();
        assert_eq!(m.plan_stale.load(Ordering::Relaxed), 1);
        assert_eq!(m.plan_misses.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn shutdown_joins_workers() {
        let mut svc = service(3, 8);
        svc.query("//book").unwrap();
        svc.shutdown();
        assert_eq!(svc.query("//book").unwrap_err(), QueryError::Shutdown);
    }
}
