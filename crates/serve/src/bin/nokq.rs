//! nokq — the query client.
//!
//! Three modes, all emitting the same canonical one-line-per-query format
//! (`path<TAB>count<TAB>dewey;dewey;...`) so outputs diff byte-for-byte:
//!
//! * **server**: `nokq --addr HOST:PORT [query ...]` sends each query over
//!   the wire protocol (reads queries from stdin when none are given, one
//!   per line, `#` comments and blanks skipped).
//! * **offline**: `nokq --offline <db-dir> [query ...]` evaluates the same
//!   queries in-process against the database directory — the e2e oracle.
//! * **workload**: `nokq --workload <dataset>` prints the paper's Q1–Q12
//!   workload paths for a dataset, including the `//` descendant variants,
//!   one per line — pipe it back into either mode above.
//!
//! Extras for scripting: `--stats` and `--shutdown` (server mode only),
//! `--timeout-ms N` per-query deadline, and `--explain` (server and
//! offline modes) which prints each query's plan — one row per operator
//! with estimated vs actual cardinalities — instead of the result line.
//!
//! Server mode can also speak the pipelined binary protocol: `--binary`
//! switches the wire format, and `--pipeline N` keeps up to `N` queries in
//! flight on the one connection. Responses may return out of order; nokq
//! reorders by request id before printing, so the output stays
//! byte-identical to the sequential JSON and `--offline` modes.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use nok_core::{QueryOptions, XmlDb};
use nok_serve::binproto::{BinClient, BinResponse};
use nok_serve::proto::{
    parse_explain_response, parse_query_response, read_frame, result_line, write_frame, Request,
    WireMatch,
};
use nok_serve::Json;

struct Args {
    addr: Option<String>,
    offline: Option<String>,
    workload: Option<String>,
    timeout_ms: Option<u64>,
    stats: bool,
    shutdown: bool,
    explain: bool,
    binary: bool,
    pipeline: usize,
    queries: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        offline: None,
        workload: None,
        timeout_ms: None,
        stats: false,
        shutdown: false,
        explain: false,
        binary: false,
        pipeline: 1,
        queries: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => args.addr = Some(take("--addr")?),
            "--offline" => args.offline = Some(take("--offline")?),
            "--workload" => args.workload = Some(take("--workload")?),
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    take("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms must be an integer".to_string())?,
                );
            }
            "--stats" => args.stats = true,
            "--shutdown" => args.shutdown = true,
            "--explain" => args.explain = true,
            "--binary" => args.binary = true,
            "--pipeline" => {
                args.pipeline = take("--pipeline")?
                    .parse()
                    .map_err(|_| "--pipeline must be an integer".to_string())?;
                if args.pipeline == 0 {
                    return Err("--pipeline must be at least 1".to_string());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: nokq --addr HOST:PORT [--timeout-ms N] [--stats] [--shutdown] [--explain]\n\
                     \x20           [--binary] [--pipeline N] [query ...]\n\
                     \x20      nokq --offline <db-dir> [--explain] [query ...]\n\
                     \x20      nokq --workload <dataset>   (author|address|catalog|treebank|dblp)\n\
                     queries are read from stdin when none are given"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            q => args.queries.push(q.to_string()),
        }
    }
    let modes =
        args.addr.is_some() as u8 + args.offline.is_some() as u8 + args.workload.is_some() as u8;
    if modes != 1 {
        return Err("pick exactly one of --addr, --offline, --workload".to_string());
    }
    if (args.binary || args.pipeline > 1) && args.addr.is_none() {
        return Err("--binary/--pipeline need server mode (--addr)".to_string());
    }
    if args.pipeline > 1 && !args.binary {
        return Err("--pipeline needs the binary protocol (--binary)".to_string());
    }
    Ok(args)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("nokq: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(dataset) = &args.workload {
        return print_workload(dataset);
    }
    // No explicit queries: read them from stdin — always for a pipe, and
    // for an interactive terminal only when not doing a pure
    // --stats/--shutdown call.
    let stdin_piped = !std::io::IsTerminal::is_terminal(&std::io::stdin());
    let queries = if args.queries.is_empty() && (stdin_piped || (!args.stats && !args.shutdown)) {
        read_queries_from_stdin()?
    } else {
        args.queries.clone()
    };
    if let Some(dir) = &args.offline {
        return run_offline(dir, &queries, args.explain);
    }
    if let Some(addr) = &args.addr {
        return run_server(addr, &queries, &args);
    }
    Ok(())
}

fn read_queries_from_stdin() -> Result<Vec<String>, String> {
    let stdin = std::io::stdin();
    let mut queries = Vec::new();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        queries.push(line.to_string());
    }
    Ok(queries)
}

fn print_workload(dataset: &str) -> Result<(), String> {
    let kind = nok_datagen::DatasetKind::ALL
        .iter()
        .find(|k| k.name() == dataset)
        .copied()
        .ok_or_else(|| {
            format!("unknown dataset `{dataset}` (try: author address catalog treebank dblp)")
        })?;
    let mut out = std::io::stdout().lock();
    for (_, spec) in nok_datagen::workload(kind) {
        let Some(spec) = spec else { continue };
        writeln!(out, "{}", spec.path).map_err(|e| e.to_string())?;
        if spec.descendant_variant != spec.path {
            writeln!(out, "{}", spec.descendant_variant).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn run_offline(dir: &str, queries: &[String], explain: bool) -> Result<(), String> {
    let db = XmlDb::open_dir(dir).map_err(|e| format!("open {dir}: {e}"))?;
    let mut out = std::io::stdout().lock();
    for q in queries {
        if explain {
            let (matches, plan) = db
                .explain(q, QueryOptions::default())
                .map_err(|e| format!("{q}: {e}"))?;
            writeln!(out, "{q}  ({} matches)\n{plan}", matches.len()).map_err(|e| e.to_string())?;
            continue;
        }
        let matches = db.query(q).map_err(|e| format!("{q}: {e}"))?;
        let wire: Vec<WireMatch> = matches
            .iter()
            .map(|m| WireMatch {
                dewey: m.dewey.to_string(),
                addr: m.addr.to_string(),
            })
            .collect();
        writeln!(out, "{}", result_line(q, &wire)).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn run_server(addr: &str, queries: &[String], args: &Args) -> Result<(), String> {
    if args.binary {
        return run_server_binary(addr, queries, args);
    }
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok(); // request/response: don't wait out Nagle
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    let mut out = std::io::stdout().lock();
    let mut id = 0u64;
    let mut round_trip = |req: Request| -> Result<Json, String> {
        write_frame(&mut writer, &req.to_json().to_string_compact()).map_err(|e| e.to_string())?;
        let payload = read_frame(&mut reader)
            .map_err(|e| e.to_string())?
            .ok_or("server closed connection")?;
        Json::parse(&payload)
    };
    for q in queries {
        id += 1;
        if args.explain {
            let resp = round_trip(Request::Explain {
                id,
                path: q.clone(),
            })?;
            let text = parse_explain_response(&resp).map_err(|e| format!("{q}: {e}"))?;
            let count = resp.get("count").and_then(Json::as_num).unwrap_or(0.0) as u64;
            writeln!(out, "{q}  ({count} matches)\n{text}").map_err(|e| e.to_string())?;
            continue;
        }
        let resp = round_trip(Request::Query {
            id,
            path: q.clone(),
            timeout_ms: args.timeout_ms,
        })?;
        let matches = parse_query_response(&resp).map_err(|e| format!("{q}: {e}"))?;
        writeln!(out, "{}", result_line(q, &matches)).map_err(|e| e.to_string())?;
    }
    if args.stats {
        id += 1;
        let resp = round_trip(Request::Stats { id })?;
        writeln!(out, "{}", resp.to_string_compact()).map_err(|e| e.to_string())?;
    }
    if args.shutdown {
        id += 1;
        let resp = round_trip(Request::Shutdown { id })?;
        writeln!(out, "{}", resp.to_string_compact()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Binary-protocol server mode: keep up to `--pipeline N` queries in
/// flight, reorder responses by id, and print the exact lines the
/// sequential modes print.
fn run_server_binary(addr: &str, queries: &[String], args: &Args) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut client = BinClient::new(stream).map_err(|e| e.to_string())?;
    let mut out = std::io::stdout().lock();

    // Query index i travels as request id i+1 (0 is reserved for "id was
    // unreadable" in error frames).
    let mut lines: Vec<Option<String>> = vec![None; queries.len()];
    let mut next = 0usize;
    let mut outstanding = 0usize;
    let mut completed = 0usize;
    while completed < queries.len() {
        while next < queries.len() && outstanding < args.pipeline {
            let id = next as u64 + 1;
            let req = if args.explain {
                Request::Explain {
                    id,
                    path: queries[next].clone(),
                }
            } else {
                Request::Query {
                    id,
                    path: queries[next].clone(),
                    timeout_ms: args.timeout_ms,
                }
            };
            client.send(&req).map_err(|e| e.to_string())?;
            next += 1;
            outstanding += 1;
        }
        client.flush().map_err(|e| e.to_string())?;
        let resp = client
            .recv()
            .map_err(|e| e.to_string())?
            .ok_or("server closed connection")?;
        let idx = (resp.id() as usize)
            .checked_sub(1)
            .filter(|i| *i < queries.len() && lines[*i].is_none())
            .ok_or_else(|| format!("server answered unknown request id {}", resp.id()))?;
        let q = &queries[idx];
        lines[idx] = Some(match resp {
            BinResponse::QueryOk { matches, .. } => result_line(q, &matches),
            BinResponse::ExplainOk { count, text, .. } => format!("{q}  ({count} matches)\n{text}"),
            BinResponse::Error { message, .. } => return Err(format!("{q}: {message}")),
            other => return Err(format!("{q}: unexpected response {other:?}")),
        });
        outstanding -= 1;
        completed += 1;
    }
    for line in lines.into_iter().flatten() {
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }

    let mut id = queries.len() as u64;
    if args.stats {
        id += 1;
        client
            .send(&Request::Stats { id })
            .map_err(|e| e.to_string())?;
        client.flush().map_err(|e| e.to_string())?;
        match client.recv().map_err(|e| e.to_string())? {
            Some(BinResponse::StatsOk { json, .. }) => {
                writeln!(out, "{json}").map_err(|e| e.to_string())?;
            }
            other => return Err(format!("stats: unexpected response {other:?}")),
        }
    }
    if args.shutdown {
        id += 1;
        client
            .send(&Request::Shutdown { id })
            .map_err(|e| e.to_string())?;
        client.flush().map_err(|e| e.to_string())?;
        match client.recv().map_err(|e| e.to_string())? {
            Some(BinResponse::Stopping { .. }) => {
                writeln!(out, r#"{{"stopping":true}}"#).map_err(|e| e.to_string())?;
            }
            other => return Err(format!("shutdown: unexpected response {other:?}")),
        }
    }
    Ok(())
}
