//! nokd — the query daemon.
//!
//! Opens a database directory read-only (structural pool capped at 256
//! frames by default so serving exercises eviction), starts a
//! [`QueryService`] worker pool, and serves TCP connections. Each
//! connection speaks either the length-prefixed newline-JSON protocol or
//! the pipelined binary protocol — auto-detected from the first byte (see
//! `nok_serve::conn`). One thread per connection; all connections share
//! the service's bounded admission queue.
//!
//! ```text
//! nokd <db-dir> [--addr 127.0.0.1:0] [--port-file PATH]
//!      [--workers N] [--queue N] [--timeout-ms N] [--pool-frames N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (with `--addr
//! 127.0.0.1:0` the kernel picks the port; `--port-file` writes it where
//! scripts can read it).

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nok_core::XmlDb;
use nok_serve::conn::serve_connection;
use nok_serve::{QueryService, ServiceConfig, SERVE_POOL_FRAMES};

struct Args {
    db_dir: String,
    addr: String,
    port_file: Option<String>,
    workers: usize,
    queue: usize,
    timeout_ms: u64,
    pool_frames: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        db_dir: String::new(),
        addr: "127.0.0.1:0".to_string(),
        port_file: None,
        workers: 4,
        queue: 128,
        timeout_ms: 10_000,
        pool_frames: SERVE_POOL_FRAMES,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--port-file" => args.port_file = Some(take("--port-file")?),
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--queue" => {
                args.queue = take("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?;
            }
            "--timeout-ms" => {
                args.timeout_ms = take("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms must be an integer".to_string())?;
            }
            "--pool-frames" => {
                args.pool_frames = take("--pool-frames")?
                    .parse()
                    .map_err(|_| "--pool-frames must be an integer".to_string())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: nokd <db-dir> [--addr A] [--port-file F] [--workers N] \
                     [--queue N] [--timeout-ms N] [--pool-frames N]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => {
                if args.db_dir.is_empty() {
                    args.db_dir = positional.to_string();
                } else {
                    return Err(format!("unexpected argument {positional}"));
                }
            }
        }
    }
    if args.db_dir.is_empty() {
        return Err("usage: nokd <db-dir> [flags]".to_string());
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    Ok(args)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("nokd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let db = Arc::new(
        XmlDb::open_dir_with_capacity(&args.db_dir, args.pool_frames)
            .map_err(|e| format!("open {}: {e}", args.db_dir))?,
    );
    if let Some(r) = db.recovery_report() {
        if r.was_dirty() {
            eprintln!(
                "nokd: recovered {}: {} txn(s) replayed, {} page(s) restored, \
                 {} data byte(s) truncated, {} tombstone(s) re-applied",
                args.db_dir,
                r.replayed_txns,
                r.pages_applied,
                r.data_truncated_by,
                r.deads_reapplied
            );
        }
    }
    let svc = Arc::new(QueryService::start(
        db,
        ServiceConfig {
            workers: args.workers,
            queue_cap: args.queue,
            default_timeout: Duration::from_millis(args.timeout_ms),
            ..ServiceConfig::default()
        },
    ));

    let listener = TcpListener::bind(&args.addr).map_err(|e| format!("bind {}: {e}", args.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(pf) = &args.port_file {
        std::fs::write(pf, format!("{}\n", local.port()))
            .map_err(|e| format!("write {pf}: {e}"))?;
    }
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("nokd: accept: {e}");
                continue;
            }
        };
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("nokd-conn".to_string())
            .spawn(move || {
                if let Err(e) = serve_connection(&stream, &svc, &stop, local) {
                    // A dropped connection is routine, not fatal.
                    eprintln!("nokd: connection: {e}");
                }
            });
        if let Err(e) = spawned {
            eprintln!("nokd: spawn: {e}");
        }
    }
    eprintln!("nokd: {}", svc.metrics().summary());
    Ok(())
}
