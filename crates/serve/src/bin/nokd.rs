//! nokd — the query daemon.
//!
//! Opens a database directory read-only (structural pool capped at 256
//! frames by default so serving exercises eviction), starts a
//! [`QueryService`] worker pool, and speaks the length-prefixed
//! newline-JSON protocol over TCP. One thread per connection; all
//! connections share the service's bounded admission queue.
//!
//! ```text
//! nokd <db-dir> [--addr 127.0.0.1:0] [--port-file PATH]
//!      [--workers N] [--queue N] [--timeout-ms N] [--pool-frames N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (with `--addr
//! 127.0.0.1:0` the kernel picks the port; `--port-file` writes it where
//! scripts can read it).

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nok_core::{QueryOptions, XmlDb};
use nok_pager::FileStorage;
use nok_serve::proto::{
    error_response, explain_ok, query_ok, read_frame, write_frame, Request, WireMatch,
};
use nok_serve::{Json, QueryError, QueryService, ServiceConfig, SERVE_POOL_FRAMES};

struct Args {
    db_dir: String,
    addr: String,
    port_file: Option<String>,
    workers: usize,
    queue: usize,
    timeout_ms: u64,
    pool_frames: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        db_dir: String::new(),
        addr: "127.0.0.1:0".to_string(),
        port_file: None,
        workers: 4,
        queue: 128,
        timeout_ms: 10_000,
        pool_frames: SERVE_POOL_FRAMES,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--port-file" => args.port_file = Some(take("--port-file")?),
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--queue" => {
                args.queue = take("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?;
            }
            "--timeout-ms" => {
                args.timeout_ms = take("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms must be an integer".to_string())?;
            }
            "--pool-frames" => {
                args.pool_frames = take("--pool-frames")?
                    .parse()
                    .map_err(|_| "--pool-frames must be an integer".to_string())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: nokd <db-dir> [--addr A] [--port-file F] [--workers N] \
                     [--queue N] [--timeout-ms N] [--pool-frames N]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => {
                if args.db_dir.is_empty() {
                    args.db_dir = positional.to_string();
                } else {
                    return Err(format!("unexpected argument {positional}"));
                }
            }
        }
    }
    if args.db_dir.is_empty() {
        return Err("usage: nokd <db-dir> [flags]".to_string());
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    Ok(args)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("nokd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let db = Arc::new(
        XmlDb::open_dir_with_capacity(&args.db_dir, args.pool_frames)
            .map_err(|e| format!("open {}: {e}", args.db_dir))?,
    );
    if let Some(r) = db.recovery_report() {
        if r.was_dirty() {
            eprintln!(
                "nokd: recovered {}: {} txn(s) replayed, {} page(s) restored, \
                 {} data byte(s) truncated, {} tombstone(s) re-applied",
                args.db_dir,
                r.replayed_txns,
                r.pages_applied,
                r.data_truncated_by,
                r.deads_reapplied
            );
        }
    }
    let svc = Arc::new(QueryService::start(
        db,
        ServiceConfig {
            workers: args.workers,
            queue_cap: args.queue,
            default_timeout: Duration::from_millis(args.timeout_ms),
            ..ServiceConfig::default()
        },
    ));

    let listener = TcpListener::bind(&args.addr).map_err(|e| format!("bind {}: {e}", args.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(pf) = &args.port_file {
        std::fs::write(pf, format!("{}\n", local.port()))
            .map_err(|e| format!("write {pf}: {e}"))?;
    }
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("nokd: accept: {e}");
                continue;
            }
        };
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("nokd-conn".to_string())
            .spawn(move || {
                if let Err(e) = serve_connection(&stream, &svc, &stop, local) {
                    // A dropped connection is routine, not fatal.
                    eprintln!("nokd: connection: {e}");
                }
            });
        if let Err(e) = spawned {
            eprintln!("nokd: spawn: {e}");
        }
    }
    eprintln!("nokd: {}", svc.metrics().summary());
    Ok(())
}

fn serve_connection(
    stream: &TcpStream,
    svc: &QueryService<FileStorage>,
    stop: &AtomicBool,
    local: std::net::SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    while let Some(payload) = read_frame(&mut reader)? {
        let (response, stopping) = match Json::parse(&payload) {
            Err(e) => (
                error_response(0, "bad_request", &format!("bad json: {e}")),
                false,
            ),
            Ok(v) => match Request::from_json(&v) {
                Err(e) => (error_response(0, "bad_request", &e), false),
                Ok(req) => dispatch(req, svc),
            },
        };
        // The response must reach the client before the accept loop is
        // released: once it wakes it exits the process, and an unflushed
        // shutdown acknowledgement would be lost with it.
        write_frame(&mut writer, &response.to_string_compact())?;
        if stopping {
            stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(local);
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(())
}

/// Handle one request; the bool asks the connection loop to initiate
/// server shutdown after the response is flushed.
fn dispatch(req: Request, svc: &QueryService<FileStorage>) -> (Json, bool) {
    match req {
        Request::Query {
            id,
            path,
            timeout_ms,
        } => {
            let result = match timeout_ms {
                Some(ms) => svc.query_with_timeout(
                    &path,
                    QueryOptions::default(),
                    Duration::from_millis(ms),
                ),
                None => svc.query(&path),
            };
            let response = match result {
                Ok(matches) => {
                    let wire: Vec<WireMatch> = matches
                        .iter()
                        .map(|m| WireMatch {
                            dewey: m.dewey.to_string(),
                            addr: m.addr.to_string(),
                        })
                        .collect();
                    query_ok(id, &wire)
                }
                Err(e) => {
                    let code = match e {
                        QueryError::Timeout => "timeout",
                        QueryError::QueueFull => "queue_full",
                        QueryError::Engine(_) => "engine",
                        QueryError::Shutdown => "shutdown",
                    };
                    error_response(id, code, &e.to_string())
                }
            };
            (response, false)
        }
        Request::Explain { id, path } => {
            // Explain runs on the connection thread, not through the worker
            // queue: it is a diagnostic, planned and executed afresh (on its
            // own pinned snapshot) so the estimated-vs-actual comparison
            // reflects this exact run.
            let response = match svc.snapshot().map_err(|e| e.to_string()).and_then(|snap| {
                snap.explain(&path, QueryOptions::default())
                    .map_err(|e| e.to_string())
            }) {
                Ok((matches, explain)) => explain_ok(id, matches.len(), &explain),
                Err(e) => error_response(id, "engine", &e),
            };
            (response, false)
        }
        Request::Stats { id } => {
            let m = svc.metrics();
            let g = svc.generation_stats();
            let snap = svc.snapshot().ok();
            let (entries_examined, dir_entries_examined) = snap
                .as_ref()
                .map(|s| {
                    let io = s.store().pool().stats();
                    (io.entries_examined(), io.dir_entries_examined())
                })
                .unwrap_or((0, 0));
            let response = Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::Str("ok".into())),
                (
                    "stats",
                    Json::obj(vec![
                        ("served", Json::Num(m.served.load(Ordering::Relaxed) as f64)),
                        (
                            "rejected",
                            Json::Num(m.rejected.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "timed_out",
                            Json::Num(m.timed_out.load(Ordering::Relaxed) as f64),
                        ),
                        ("failed", Json::Num(m.failed.load(Ordering::Relaxed) as f64)),
                        (
                            "queue_depth",
                            Json::Num(m.queue_depth.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "plan_cache_hits",
                            Json::Num(m.plan_hits.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "plan_cache_misses",
                            Json::Num(m.plan_misses.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "plan_cache_stale",
                            Json::Num(m.plan_stale.load(Ordering::Relaxed) as f64),
                        ),
                        ("plan_cache_size", Json::Num(svc.plan_cache_len() as f64)),
                        ("generations_live", Json::Num(g.live_generations() as f64)),
                        (
                            "generations_retired",
                            Json::Num(g.retired_generations() as f64),
                        ),
                        ("pinned_readers", Json::Num(g.pinned_readers() as f64)),
                        ("p50_us", Json::Num(m.latency.quantile_micros(0.50) as f64)),
                        ("p99_us", Json::Num(m.latency.quantile_micros(0.99) as f64)),
                        ("mean_us", Json::Num(m.latency.mean_micros() as f64)),
                        ("pool_hit_ratio", Json::Num(svc.pool_hit_ratio())),
                        ("entries_examined", Json::Num(entries_examined as f64)),
                        (
                            "dir_entries_examined",
                            Json::Num(dir_entries_examined as f64),
                        ),
                    ]),
                ),
            ]);
            (response, false)
        }
        Request::Ping { id } => (
            Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::Str("ok".into())),
                ("pong", Json::Bool(true)),
            ]),
            false,
        ),
        Request::Shutdown { id } => (
            Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::Str("ok".into())),
                ("stopping", Json::Bool(true)),
            ]),
            true,
        ),
    }
}
