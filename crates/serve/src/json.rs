//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The build environment is offline, so the protocol layer cannot lean on
//! serde; the wire format only needs objects, arrays, strings, numbers,
//! booleans and null, which this module covers in full (including string
//! escapes and `\uXXXX`, with surrogate pairs).

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser — the protocol uses depth
/// ≤ 4, so this only bounds hostile input.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects use a `BTreeMap` so serialization is deterministic
/// (stable key order makes the e2e output diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as f64; the protocol's integers are small)
    Num(f64),
    /// A string
    Str(String),
    /// An array
    Arr(Vec<Json>),
    /// An object
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize to a compact string (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing non-whitespace is an error).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        let matches = self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(lit.as_bytes()));
        if matches {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected , or ] at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(":")?;
                    let val = self.value(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected , or }} at offset {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or_default())
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at offset {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or("bad unicode escape")?);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multibyte-safe).
                    let rest = std::str::from_utf8(self.bytes.get(self.pos..).unwrap_or_default())
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let Some(c) = rest.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(digits).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            r#""hello""#,
            r#"["a",1,null]"#,
            r#"{"a":1,"b":[true,"x"]}"#,
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\nquote\"tab\tüñîçøde\u{1}".to_string());
        let s = v.to_string_compact();
        assert_eq!(Json::parse(&s).unwrap(), v);
        // \uXXXX and surrogate pairs parse too.
        assert_eq!(
            Json::parse(r#""A😀""#).unwrap(),
            Json::Str("A😀".to_string())
        );
    }

    #[test]
    fn object_order_is_deterministic() {
        let a = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = Json::parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(a.to_string_compact(), b.to_string_compact());
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in ["", "{", "[1,", r#""unterminated"#, "{\"a\"}", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"q":"//a","n":3,"items":[1]}"#).unwrap();
        assert_eq!(v.get("q").and_then(Json::as_str), Some("//a"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(
            v.get("items").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
