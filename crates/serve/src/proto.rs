//! Wire protocol: length-prefixed newline-JSON frames plus the typed
//! request/response shapes that ride in them.
//!
//! A frame is:
//!
//! ```text
//! <decimal ASCII payload byte length> '\n' <payload bytes> '\n'
//! ```
//!
//! The explicit length makes framing robust against newlines inside JSON
//! strings, while the trailing newline keeps a captured session readable
//! (`nc` output is one JSON document per line). The payload is always a
//! single JSON object.

use std::io::{self, BufRead, Write};

use crate::json::Json;

/// Hard cap on a single frame's payload, to bound memory on hostile input.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    write!(w, "{}\n{}\n", payload.len(), payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF (connection closed
/// between frames); a torn frame is an error.
pub fn read_frame<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad frame length"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut nl = [0u8; 1];
    r.read_exact(&mut nl)?;
    if nl != [b'\n'] {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame missing trailing newline",
        ));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not utf-8"))
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate a path query.
    Query {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The path expression.
        path: String,
        /// Per-request deadline override in milliseconds.
        timeout_ms: Option<u64>,
    },
    /// Plan a path query and evaluate it, returning per-operator
    /// estimated vs actual cardinalities alongside the match count.
    Explain {
        /// Correlation id.
        id: u64,
        /// The path expression.
        path: String,
    },
    /// Fetch aggregate server metrics.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: u64,
    },
    /// Ask the server to exit gracefully.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// Serialize to the wire JSON.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Query {
                id,
                path,
                timeout_ms,
            } => {
                let mut pairs = vec![
                    ("id", Json::Num(*id as f64)),
                    ("op", Json::Str("query".into())),
                    ("path", Json::Str(path.clone())),
                ];
                if let Some(t) = timeout_ms {
                    pairs.push(("timeout_ms", Json::Num(*t as f64)));
                }
                Json::obj(pairs)
            }
            Request::Explain { id, path } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("op", Json::Str("explain".into())),
                ("path", Json::Str(path.clone())),
            ]),
            Request::Stats { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("op", Json::Str("stats".into())),
            ]),
            Request::Ping { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("op", Json::Str("ping".into())),
            ]),
            Request::Shutdown { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("op", Json::Str("shutdown".into())),
            ]),
        }
    }

    /// Parse from the wire JSON.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = v
            .get("id")
            .and_then(Json::as_num)
            .ok_or("missing numeric `id`")? as u64;
        let op = v.get("op").and_then(Json::as_str).ok_or("missing `op`")?;
        match op {
            "query" => {
                let path = v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("query without `path`")?
                    .to_string();
                let timeout_ms = v.get("timeout_ms").and_then(Json::as_num).map(|n| n as u64);
                Ok(Request::Query {
                    id,
                    path,
                    timeout_ms,
                })
            }
            "explain" => {
                let path = v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("explain without `path`")?
                    .to_string();
                Ok(Request::Explain { id, path })
            }
            "stats" => Ok(Request::Stats { id }),
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// One match in a query response: the Dewey id and physical address,
/// rendered in their canonical display forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMatch {
    /// `a.b.c` Dewey path.
    pub dewey: String,
    /// `page:entry` physical address.
    pub addr: String,
}

/// Build a successful query response.
pub fn query_ok(id: u64, matches: &[WireMatch]) -> Json {
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("status", Json::Str("ok".into())),
        ("count", Json::Num(matches.len() as f64)),
        (
            "matches",
            Json::Arr(
                matches
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("dewey", Json::Str(m.dewey.clone())),
                            ("addr", Json::Str(m.addr.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Build a successful explain response: the match count, one JSON row per
/// plan operator (est/actual are `null` when not applicable), and the
/// rendered table under `text` for direct display.
pub fn explain_ok(id: u64, count: usize, explain: &nok_core::Explain) -> Json {
    let opt = |v: Option<u64>| match v {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    };
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("status", Json::Str("ok".into())),
        ("count", Json::Num(count as f64)),
        (
            "plan",
            Json::Arr(
                explain
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("op", Json::Str(r.op.clone())),
                            ("detail", Json::Str(r.detail.clone())),
                            ("est", opt(r.est)),
                            ("actual", opt(r.actual)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("text", Json::Str(explain.to_string())),
    ])
}

/// Extract the rendered plan table from an explain response, or the error
/// text.
pub fn parse_explain_response(v: &Json) -> Result<String, String> {
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => Ok(v
            .get("text")
            .and_then(Json::as_str)
            .ok_or("explain response without text")?
            .to_string()),
        Some("error") => Err(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown error")
            .to_string()),
        _ => Err("malformed response".into()),
    }
}

/// Build an error response. `code` is a stable machine-readable tag
/// (`timeout`, `queue_full`, `engine`, `shutdown`, `bad_request`).
pub fn error_response(id: u64, code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("status", Json::Str("error".into())),
        ("code", Json::Str(code.into())),
        ("error", Json::Str(message.into())),
    ])
}

/// Extract the matches from a query response, or the error text.
pub fn parse_query_response(v: &Json) -> Result<Vec<WireMatch>, String> {
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => {
            let arr = v.get("matches").and_then(Json::as_arr).unwrap_or(&[]);
            let mut out = Vec::with_capacity(arr.len());
            for m in arr {
                out.push(WireMatch {
                    dewey: m
                        .get("dewey")
                        .and_then(Json::as_str)
                        .ok_or("match without dewey")?
                        .to_string(),
                    addr: m
                        .get("addr")
                        .and_then(Json::as_str)
                        .ok_or("match without addr")?
                        .to_string(),
                });
            }
            Ok(out)
        }
        Some("error") => Err(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown error")
            .to_string()),
        _ => Err("malformed response".into()),
    }
}

/// Canonical one-line rendering of a query result, shared by `nokq`'s
/// server and `--offline` modes so their outputs diff byte-identically:
/// `path<TAB>count<TAB>dewey;dewey;...`.
pub fn result_line(path: &str, matches: &[WireMatch]) -> String {
    let deweys: Vec<&str> = matches.iter().map(|m| m.dewey.as_str()).collect();
    format!("{path}\t{}\t{}", matches.len(), deweys.join(";"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"id":1}"#).unwrap();
        write_frame(&mut buf, "with\nnewline").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"id":1}"#);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "with\nnewline");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn torn_frames_error() {
        // Truncated payload.
        let mut r = BufReader::new(&b"10\nshort"[..]);
        assert!(read_frame(&mut r).is_err());
        // Bad length header.
        let mut r = BufReader::new(&b"xyz\nbody\n"[..]);
        assert!(read_frame(&mut r).is_err());
        // Missing trailing newline.
        let mut r = BufReader::new(&b"4\nbodyX"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Query {
                id: 7,
                path: "//a/b".into(),
                timeout_ms: Some(250),
            },
            Request::Query {
                id: 8,
                path: "/x".into(),
                timeout_ms: None,
            },
            Request::Explain {
                id: 9,
                path: "//a[b]".into(),
            },
            Request::Stats { id: 1 },
            Request::Ping { id: 2 },
            Request::Shutdown { id: 3 },
        ] {
            let json = req.to_json();
            let text = json.to_string_compact();
            let parsed = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let matches = vec![
            WireMatch {
                dewey: "1.2.3".into(),
                addr: "4:7".into(),
            },
            WireMatch {
                dewey: "1.9".into(),
                addr: "2:0".into(),
            },
        ];
        let ok = query_ok(42, &matches);
        let parsed = parse_query_response(&Json::parse(&ok.to_string_compact()).unwrap()).unwrap();
        assert_eq!(parsed, matches);

        let err = error_response(42, "timeout", "query deadline exceeded");
        let msg =
            parse_query_response(&Json::parse(&err.to_string_compact()).unwrap()).unwrap_err();
        assert_eq!(msg, "query deadline exceeded");
    }

    #[test]
    fn explain_responses_round_trip() {
        let explain = nok_core::Explain {
            rows: vec![
                nok_core::ExplainRow {
                    op: "eval".into(),
                    detail: "fragment 0".into(),
                    est: Some(3),
                    actual: Some(2),
                },
                nok_core::ExplainRow {
                    op: "collect".into(),
                    detail: "returning fragment 0".into(),
                    est: None,
                    actual: Some(2),
                },
            ],
        };
        let ok = explain_ok(5, 2, &explain);
        let parsed = Json::parse(&ok.to_string_compact()).unwrap();
        let text = parse_explain_response(&parsed).unwrap();
        assert!(text.contains("eval"));
        let plan = parsed.get("plan").and_then(Json::as_arr).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(matches!(plan[1].get("est"), Some(Json::Null)));
        // Errors surface through the same parser.
        let err = error_response(5, "engine", "no such tag");
        let msg =
            parse_explain_response(&Json::parse(&err.to_string_compact()).unwrap()).unwrap_err();
        assert_eq!(msg, "no such tag");
    }

    #[test]
    fn result_lines_are_stable() {
        let matches = vec![
            WireMatch {
                dewey: "1.2".into(),
                addr: "0:1".into(),
            },
            WireMatch {
                dewey: "1.4".into(),
                addr: "0:2".into(),
            },
        ];
        assert_eq!(result_line("//a", &matches), "//a\t2\t1.2;1.4");
        assert_eq!(result_line("//b", &[]), "//b\t0\t");
    }
}
