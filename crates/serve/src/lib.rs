//! nok-serve: a concurrent query service over the succinct XML store.
//!
//! The paper's engine ([`nok_core::XmlDb`]) evaluates one query at a time;
//! this crate turns a read-only database directory into a *service*:
//!
//! * [`QueryService`] — a worker-pool executor whose workers serve from
//!   pinned MVCC snapshots over the thread-safe buffer pool, with a
//!   bounded admission queue, per-query deadlines, and aggregate metrics.
//! * [`admission`] — the bounded MPMC ring behind the service: producers
//!   fail fast at capacity, workers drain in batches, and the parking path
//!   is only touched when the ring runs empty (DESIGN.md §15).
//! * [`proto`] — the length-prefixed newline-JSON wire protocol spoken by
//!   the `nokd` server binary and the `nokq` client binary.
//! * [`binproto`] — the pipelined binary protocol (magic + opcode +
//!   request id framing) spoken alongside it; one connection keeps many
//!   requests in flight and responses are matched by id.
//! * [`conn`] — the connection loops shared by `nokd` and the in-process
//!   benchmarks: protocol auto-detection, per-connection response queue,
//!   batched response writes.
//! * [`metrics`] — lock-free counters and a log2-bucket latency histogram
//!   (p50/p99 without per-request allocation), sharded per worker and
//!   merged on read.
//! * [`plan_cache`] — a bounded cache of planned queries keyed by
//!   normalized query text; each entry is tagged with the commit
//!   generation it was planned under and dropped individually when a
//!   lookup arrives from a newer snapshot.
//! * [`json`] — the minimal JSON reader/writer the protocol rides on
//!   (the build is offline, so no serde).
//!
//! Concurrency model in one paragraph: every worker pins an immutable
//! MVCC generation (lock-free — two atomic RMWs) and serves queries from
//! that snapshot, re-pinning only when the commit generation moves; a
//! single writer may commit new generations concurrently (see
//! [`QueryService::start_from_source`]). Workers read pages through the
//! sharded buffer pool, which evicts unpinned LRU frames when the
//! configured capacity (`nokd` caps the structural pool at 256 frames) is
//! exceeded. Overload degrades gracefully: a full queue rejects with
//! [`QueryError::QueueFull`], a missed deadline returns
//! [`QueryError::Timeout`], and worker threads survive both engine errors
//! and timeouts. See DESIGN.md §9 and §14 for the full treatment.

pub mod admission;
pub mod binproto;
pub mod conn;
pub mod json;
pub mod metrics;
pub mod plan_cache;
pub mod proto;
pub mod service;

pub use admission::{AdmissionQueue, PushError};
pub use json::Json;
pub use metrics::{LatencyHistogram, ServerMetrics, ShardedLatency};
pub use plan_cache::{normalize_query, PlanCache};
pub use proto::{read_frame, result_line, write_frame, Request, WireMatch};
pub use service::{QueryError, QueryService, ServiceConfig};

/// Default frame capacity `nokd` imposes on the shared structural buffer
/// pool — small enough that the paper's datasets do not fit resident, so
/// concurrent serving actually exercises eviction.
pub const SERVE_POOL_FRAMES: usize = 256;
