//! nok-serve: a concurrent query service over the succinct XML store.
//!
//! The paper's engine ([`nok_core::XmlDb`]) evaluates one query at a time;
//! this crate turns a read-only database directory into a *service*:
//!
//! * [`QueryService`] — a worker-pool executor sharing one
//!   `Arc<XmlDb<S>>` snapshot behind the thread-safe buffer pool, with a
//!   bounded admission queue, per-query deadlines, and aggregate metrics.
//! * [`proto`] — the length-prefixed newline-JSON wire protocol spoken by
//!   the `nokd` server binary and the `nokq` client binary.
//! * [`metrics`] — lock-free counters and a log2-bucket latency histogram
//!   (p50/p99 without per-request allocation).
//! * [`plan_cache`] — a bounded cache of planned queries keyed by
//!   normalized query text, invalidated by the store's commit generation.
//! * [`json`] — the minimal JSON reader/writer the protocol rides on
//!   (the build is offline, so no serde).
//!
//! Concurrency model in one paragraph: the database is opened once and
//! never mutated while served. Every worker reads pages through the sharded
//! buffer pool, which evicts unpinned LRU frames when the configured
//! capacity (`nokd` caps the structural pool at 256 frames) is exceeded.
//! Overload degrades gracefully: a full queue rejects with
//! [`QueryError::QueueFull`], a missed deadline returns
//! [`QueryError::Timeout`], and worker threads survive both engine errors
//! and timeouts. See DESIGN.md §9 for the full treatment.

pub mod json;
pub mod metrics;
pub mod plan_cache;
pub mod proto;
pub mod service;

pub use json::Json;
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use plan_cache::{normalize_query, PlanCache};
pub use proto::{read_frame, result_line, write_frame, Request, WireMatch};
pub use service::{QueryError, QueryService, ServiceConfig};

/// Default frame capacity `nokd` imposes on the shared structural buffer
/// pool — small enough that the paper's datasets do not fit resident, so
/// concurrent serving actually exercises eviction.
pub const SERVE_POOL_FRAMES: usize = 256;
