//! Connection serving shared by `nokd` and the in-process benchmarks.
//!
//! One TCP connection is served by [`serve_connection`], which peeks the
//! first byte to pick a protocol: an ASCII digit is a newline-JSON frame
//! header ([`crate::proto`]), the byte `N` is the binary preamble
//! ([`crate::binproto`]). Both protocols run against the same
//! [`QueryService`].
//!
//! The JSON loop is strictly request/response: read a frame, dispatch
//! synchronously (queries block the connection thread on the service's
//! response slot), write a frame. Exactly the PR-7 behavior, byte for byte.
//!
//! The binary loop is pipelined. The connection thread reads frames and
//! submits queries through [`QueryService::query_async`]; completions
//! arrive on worker threads, which encode the response frame and push it
//! onto a per-connection outbound queue. A dedicated writer thread drains
//! that queue — *everything* available in one lock acquisition — and
//! flushes the socket once per drain, so a burst of pipelined completions
//! costs one syscall, not one per response. Responses therefore leave in
//! completion order, not submission order; the request id is the only
//! correlation (clients that need submission order reorder on their side).
//!
//! Lock discipline: the outbound-queue mutex (`conn.out`) is a leaf — a
//! worker thread grabs it inside the completion callback while holding no
//! service or pager lock (delivery in `service::worker_loop` happens after
//! every lock is released), and the connection/writer threads hold it only
//! around queue edits, never across I/O or service calls.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use nok_core::QueryOptions;
use nok_pager::Storage;

use crate::binproto::{self, BinResponse, ErrCode, MAGIC, VERSION};
use crate::json::Json;
use crate::proto::{
    error_response, explain_ok, query_ok, read_frame, write_frame, Request, WireMatch,
};
use crate::service::{QueryError, QueryService};
use crate::ServerMetrics;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serve one accepted connection until the peer disconnects or asks for
/// shutdown. Auto-detects the protocol from the first byte. On a shutdown
/// request, flushes the acknowledgement, sets `stop`, and pokes `local`
/// with a throwaway connection so the accept loop wakes and exits.
pub fn serve_connection<S: Storage + Send + Sync + 'static>(
    stream: &TcpStream,
    svc: &Arc<QueryService<S>>,
    stop: &AtomicBool,
    local: SocketAddr,
) -> io::Result<()> {
    // Both protocols are request/response with small frames; Nagle's
    // algorithm would serialize them against delayed ACKs (~40ms stalls).
    stream.set_nodelay(true).ok();
    let mut first = [0u8; 1];
    // peek() blocks until one byte (or EOF) without consuming it, so the
    // protocol loops below still see a complete stream.
    if stream.peek(&mut first)? == 0 {
        return Ok(()); // connected and left without a word
    }
    // analyze: allow(serve-worker-panic): peek returned 1 byte; MAGIC is a fixed array
    if first[0] == MAGIC[0] {
        serve_binary(stream, svc, stop, local)
    } else {
        serve_json(stream, svc, stop, local)
    }
}

// ---------------------------------------------------------------------------
// JSON (request/response) path.

fn serve_json<S: Storage + Send + Sync + 'static>(
    stream: &TcpStream,
    svc: &Arc<QueryService<S>>,
    stop: &AtomicBool,
    local: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    while let Some(payload) = read_frame(&mut reader)? {
        let (response, stopping) = match Json::parse(&payload) {
            Err(e) => (
                error_response(0, "bad_request", &format!("bad json: {e}")),
                false,
            ),
            Ok(v) => match Request::from_json(&v) {
                Err(e) => (error_response(0, "bad_request", &e), false),
                Ok(req) => dispatch(req, svc),
            },
        };
        // The response must reach the client before the accept loop is
        // released: once it wakes it exits the process, and an unflushed
        // shutdown acknowledgement would be lost with it.
        write_frame(&mut writer, &response.to_string_compact())?;
        if stopping {
            stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(local);
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(())
}

/// Handle one JSON request; the bool asks the connection loop to initiate
/// server shutdown after the response is flushed.
pub fn dispatch<S: Storage + Send + Sync + 'static>(
    req: Request,
    svc: &QueryService<S>,
) -> (Json, bool) {
    match req {
        Request::Query {
            id,
            path,
            timeout_ms,
        } => {
            let result = match timeout_ms {
                Some(ms) => svc.query_with_timeout(
                    &path,
                    QueryOptions::default(),
                    Duration::from_millis(ms),
                ),
                None => svc.query(&path),
            };
            let response = match result {
                Ok(matches) => {
                    let wire: Vec<WireMatch> = matches
                        .iter()
                        .map(|m| WireMatch {
                            dewey: m.dewey.to_string(),
                            addr: m.addr.to_string(),
                        })
                        .collect();
                    query_ok(id, &wire)
                }
                Err(e) => error_response(id, err_code(&e).as_str(), &e.to_string()),
            };
            (response, false)
        }
        Request::Explain { id, path } => {
            let response = match explain(svc, &path) {
                Ok((count, ref ex)) => explain_ok(id, count, ex),
                Err(e) => error_response(id, "engine", &e),
            };
            (response, false)
        }
        Request::Stats { id } => (
            Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::Str("ok".into())),
                ("stats", stats_json(svc)),
            ]),
            false,
        ),
        Request::Ping { id } => (
            Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::Str("ok".into())),
                ("pong", Json::Bool(true)),
            ]),
            false,
        ),
        Request::Shutdown { id } => (
            Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::Str("ok".into())),
                ("stopping", Json::Bool(true)),
            ]),
            true,
        ),
    }
}

fn err_code(e: &QueryError) -> ErrCode {
    match e {
        QueryError::Timeout => ErrCode::Timeout,
        QueryError::QueueFull => ErrCode::QueueFull,
        QueryError::Engine(_) => ErrCode::Engine,
        QueryError::Shutdown => ErrCode::Shutdown,
    }
}

/// Explain runs on the connection thread, not through the worker queue: it
/// is a diagnostic, planned and executed afresh (on its own pinned
/// snapshot) so the estimated-vs-actual comparison reflects this exact run.
fn explain<S: Storage + Send + Sync + 'static>(
    svc: &QueryService<S>,
    path: &str,
) -> Result<(usize, nok_core::Explain), String> {
    let snap = svc.snapshot().map_err(|e| e.to_string())?;
    let (matches, ex) = snap
        .explain(path, QueryOptions::default())
        .map_err(|e| e.to_string())?;
    Ok((matches.len(), ex))
}

/// The stats object served by both protocols (the JSON protocol wraps it
/// under `"stats"`, the binary protocol ships it as the `StatsOk` payload).
/// Key set and order are part of the wire contract — scripts parse this.
pub fn stats_json<S: Storage + Send + Sync + 'static>(svc: &QueryService<S>) -> Json {
    let m: &ServerMetrics = svc.metrics();
    let g = svc.generation_stats();
    let snap = svc.snapshot().ok();
    let (entries_examined, dir_entries_examined) = snap
        .as_ref()
        .map(|s| {
            let io = s.store().pool().stats();
            (io.entries_examined(), io.dir_entries_examined())
        })
        .unwrap_or((0, 0));
    let (distinct_paths, synopsis_bytes) = snap
        .as_ref()
        .map(|s| {
            let g = s.generation();
            (
                g.synopsis().distinct_paths(),
                g.synopsis().encoded_len(g.node_count()) as u64,
            )
        })
        .unwrap_or((0, 0));
    Json::obj(vec![
        ("served", Json::Num(m.served.load(Ordering::Relaxed) as f64)),
        (
            "rejected",
            Json::Num(m.rejected.load(Ordering::Relaxed) as f64),
        ),
        (
            "timed_out",
            Json::Num(m.timed_out.load(Ordering::Relaxed) as f64),
        ),
        ("failed", Json::Num(m.failed.load(Ordering::Relaxed) as f64)),
        (
            "queue_depth",
            Json::Num(m.queue_depth.load(Ordering::Relaxed) as f64),
        ),
        (
            "plan_cache_hits",
            Json::Num(m.plan_hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "plan_cache_misses",
            Json::Num(m.plan_misses.load(Ordering::Relaxed) as f64),
        ),
        (
            "plan_cache_stale",
            Json::Num(m.plan_stale.load(Ordering::Relaxed) as f64),
        ),
        ("plan_cache_size", Json::Num(svc.plan_cache_len() as f64)),
        ("generations_live", Json::Num(g.live_generations() as f64)),
        (
            "generations_retired",
            Json::Num(g.retired_generations() as f64),
        ),
        ("pinned_readers", Json::Num(g.pinned_readers() as f64)),
        ("p50_us", Json::Num(m.latency.quantile_micros(0.50) as f64)),
        ("p99_us", Json::Num(m.latency.quantile_micros(0.99) as f64)),
        ("mean_us", Json::Num(m.latency.mean_micros() as f64)),
        ("pool_hit_ratio", Json::Num(svc.pool_hit_ratio())),
        ("entries_examined", Json::Num(entries_examined as f64)),
        (
            "dir_entries_examined",
            Json::Num(dir_entries_examined as f64),
        ),
        ("distinct_paths", Json::Num(distinct_paths as f64)),
        ("synopsis_bytes", Json::Num(synopsis_bytes as f64)),
        (
            "empty_proofs",
            Json::Num(m.empty_proofs.load(Ordering::Relaxed) as f64),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Binary (pipelined) path.

/// Mutex-protected outbound state of one binary connection.
struct OutState {
    /// Encoded response frames awaiting the writer thread.
    frames: VecDeque<Vec<u8>>,
    /// Queries accepted by the service whose callbacks have not fired yet.
    /// The writer refuses to exit while any are outstanding, so every
    /// admitted request gets its response flushed before the connection
    /// closes — including across a shutdown.
    in_flight: usize,
    /// The reader has stopped submitting (peer EOF or shutdown request).
    done: bool,
}

/// Per-connection outbound queue feeding the writer thread.
struct OutQueue {
    out: Mutex<OutState>,
    cv: Condvar,
}

impl OutQueue {
    fn new() -> Self {
        OutQueue {
            out: Mutex::new(OutState {
                frames: VecDeque::new(),
                in_flight: 0,
                done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queue one encoded frame (inline responses: ping, stats, errors).
    fn push(&self, frame: Vec<u8>) {
        let mut g = lock(&self.out);
        g.frames.push_back(frame);
        drop(g);
        self.cv.notify_one();
    }

    /// Reserve an in-flight slot before submitting to the service.
    fn begin(&self) {
        lock(&self.out).in_flight += 1;
    }

    /// Queue the response for an in-flight request and release its slot.
    fn complete(&self, frame: Vec<u8>) {
        let mut g = lock(&self.out);
        g.frames.push_back(frame);
        g.in_flight = g.in_flight.saturating_sub(1);
        drop(g);
        self.cv.notify_one();
    }

    /// Release an in-flight slot without a frame (submission failed and the
    /// error frame was pushed separately, or bookkeeping is being undone).
    fn abort(&self) {
        let mut g = lock(&self.out);
        g.in_flight = g.in_flight.saturating_sub(1);
        drop(g);
        self.cv.notify_one();
    }

    /// The reader is finished; the writer drains what remains (waiting out
    /// in-flight completions) and exits.
    fn finish(&self) {
        lock(&self.out).done = true;
        self.cv.notify_all();
    }

    /// Writer side: block until frames are available, then take all of
    /// them. Returns `None` once done, drained, and nothing is in flight.
    fn take_all(&self, into: &mut Vec<Vec<u8>>) -> Option<()> {
        let mut g = lock(&self.out);
        loop {
            if !g.frames.is_empty() {
                into.extend(g.frames.drain(..));
                return Some(());
            }
            if g.done && g.in_flight == 0 {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn serve_binary<S: Storage + Send + Sync + 'static>(
    stream: &TcpStream,
    svc: &Arc<QueryService<S>>,
    stop: &AtomicBool,
    local: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer_stream = stream.try_clone()?;

    // Validate the preamble before spawning anything.
    let mut preamble = [0u8; 5];
    reader.read_exact(&mut preamble)?;
    // analyze: allow(serve-worker-panic): preamble is a [u8; 5], fully read
    if preamble[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad binary preamble",
        ));
    }
    // analyze: allow(serve-worker-panic): preamble is a [u8; 5], fully read
    if preamble[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            // analyze: allow(serve-worker-panic): preamble is a [u8; 5], fully read
            format!("unsupported binary protocol version {}", preamble[4]),
        ));
    }

    let queue = Arc::new(OutQueue::new());
    let writer_queue = Arc::clone(&queue);
    let writer = std::thread::Builder::new()
        .name("nok-conn-writer".to_string())
        .spawn(move || write_loop(&writer_queue, writer_stream))
        .map_err(|e| io::Error::new(io::ErrorKind::Other, format!("spawn writer: {e}")))?;

    let result = binary_read_loop(&mut reader, svc, stop, local, &queue);
    // Reader is done (EOF, shutdown, or error): let the writer drain every
    // outstanding response, then surface its I/O verdict if ours was clean.
    queue.finish();
    let writer_result = writer.join().unwrap_or_else(|_| {
        Err(io::Error::new(
            io::ErrorKind::Other,
            "connection writer panicked",
        ))
    });
    result.and(writer_result)
}

fn binary_read_loop<S: Storage + Send + Sync + 'static>(
    reader: &mut BufReader<TcpStream>,
    svc: &Arc<QueryService<S>>,
    stop: &AtomicBool,
    local: SocketAddr,
    queue: &Arc<OutQueue>,
) -> io::Result<()> {
    while let Some((opcode, id, payload)) = binproto::read_bin_frame(reader)? {
        let req = match binproto::decode_request(opcode, id, &payload) {
            Ok(req) => req,
            Err(e) => {
                queue.push(encode_one(&BinResponse::Error {
                    id,
                    code: ErrCode::BadRequest,
                    message: e.to_string(),
                }));
                continue;
            }
        };
        match req {
            Request::Query {
                id,
                path,
                timeout_ms,
            } => {
                let cb_queue = Arc::clone(queue);
                queue.begin();
                let submitted = svc.query_async(
                    &path,
                    QueryOptions::default(),
                    timeout_ms.map(Duration::from_millis),
                    move |result| {
                        let resp = match result {
                            Ok(matches) => BinResponse::QueryOk {
                                id,
                                matches: matches
                                    .iter()
                                    .map(|m| WireMatch {
                                        dewey: m.dewey.to_string(),
                                        addr: m.addr.to_string(),
                                    })
                                    .collect(),
                            },
                            Err(e) => BinResponse::Error {
                                id,
                                code: err_code(&e),
                                message: e.to_string(),
                            },
                        };
                        cb_queue.complete(encode_one(&resp));
                    },
                );
                if let Err(e) = submitted {
                    // Admission failed: the callback will never run, so
                    // answer inline and release the in-flight slot.
                    queue.push(encode_one(&BinResponse::Error {
                        id,
                        code: err_code(&e),
                        message: e.to_string(),
                    }));
                    queue.abort();
                }
            }
            Request::Explain { id, path } => {
                let resp = match explain(svc.as_ref(), &path) {
                    Ok((count, ex)) => BinResponse::ExplainOk {
                        id,
                        count: count as u32,
                        text: ex.to_string(),
                    },
                    Err(e) => BinResponse::Error {
                        id,
                        code: ErrCode::Engine,
                        message: e,
                    },
                };
                queue.push(encode_one(&resp));
            }
            Request::Stats { id } => {
                queue.push(encode_one(&BinResponse::StatsOk {
                    id,
                    json: stats_json(svc.as_ref()).to_string_compact(),
                }));
            }
            Request::Ping { id } => queue.push(encode_one(&BinResponse::Pong { id })),
            Request::Shutdown { id } => {
                queue.push(encode_one(&BinResponse::Stopping { id }));
                stop.store(true, Ordering::Release);
                let _ = TcpStream::connect(local);
                return Ok(());
            }
        }
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
    }
    Ok(())
}

fn encode_one(resp: &BinResponse) -> Vec<u8> {
    let mut buf = Vec::new();
    binproto::encode_response(&mut buf, resp);
    buf
}

/// The connection's writer thread: drain *all* queued frames per wakeup,
/// write them back-to-back, flush once. Pipelined bursts coalesce into one
/// syscall instead of one per response.
fn write_loop(queue: &OutQueue, stream: TcpStream) -> io::Result<()> {
    let mut w = BufWriter::new(stream);
    let mut batch: Vec<Vec<u8>> = Vec::new();
    while queue.take_all(&mut batch).is_some() {
        for frame in batch.drain(..) {
            w.write_all(&frame)?;
        }
        w.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use nok_core::XmlDb;
    use nok_pager::MemStorage;
    use std::net::TcpListener;

    const BIB: &str = r#"<bib>
        <book year="1994"><title>TCP/IP</title><price>65.95</price></book>
        <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
    </bib>"#;

    fn spawn_server(workers: usize) -> (SocketAddr, Arc<AtomicBool>) {
        let db = Arc::new(XmlDb::build_in_memory(BIB).unwrap());
        let svc = Arc::new(QueryService::start(
            db,
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let local = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop2);
                std::thread::spawn(move || {
                    let _ = serve_connection(&stream, &svc, &stop, local);
                });
            }
        });
        (local, stop)
    }

    fn bin_client(addr: SocketAddr) -> binproto::BinClient {
        binproto::BinClient::new(TcpStream::connect(addr).unwrap()).unwrap()
    }

    #[test]
    fn pipelined_binary_queries_map_responses_to_ids() {
        let (addr, stop) = spawn_server(2);
        let mut c = bin_client(addr);
        // Pipeline a window of queries with distinct ids, flush once.
        let paths = ["//book", "//book/title", "//price", "//book[price<50]"];
        for (i, p) in paths.iter().enumerate() {
            c.send(&Request::Query {
                id: 100 + i as u64,
                path: (*p).into(),
                timeout_ms: None,
            })
            .unwrap();
        }
        c.flush().unwrap();
        let mut by_id = std::collections::HashMap::new();
        for _ in 0..paths.len() {
            let resp = c.recv().unwrap().unwrap();
            match resp {
                BinResponse::QueryOk { id, matches } => {
                    by_id.insert(id, matches.len());
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(by_id[&100], 2);
        assert_eq!(by_id[&101], 2);
        assert_eq!(by_id[&102], 2);
        assert_eq!(by_id[&103], 1);
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn binary_mixed_opcodes_and_errors() {
        let (addr, stop) = spawn_server(1);
        let mut c = bin_client(addr);
        c.send(&Request::Ping { id: 1 }).unwrap();
        c.send(&Request::Query {
            id: 2,
            path: "not a path".into(),
            timeout_ms: None,
        })
        .unwrap();
        c.send(&Request::Stats { id: 3 }).unwrap();
        c.send(&Request::Explain {
            id: 4,
            path: "//book".into(),
        })
        .unwrap();
        c.flush().unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let resp = c.recv().unwrap().unwrap();
            match &resp {
                BinResponse::Pong { id } => assert_eq!(*id, 1),
                BinResponse::Error { id, code, .. } => {
                    assert_eq!(*id, 2);
                    assert_eq!(*code, ErrCode::Engine);
                }
                BinResponse::StatsOk { id, json } => {
                    assert_eq!(*id, 3);
                    let v = Json::parse(json).unwrap();
                    assert!(v.get("served").is_some());
                    assert!(v.get("p99_us").is_some());
                    // Synopsis gauges: BIB has at least bib, bib/book,
                    // bib/book/title, bib/book/price as distinct tag paths
                    // and a nonzero encoded synopsis block.
                    assert!(
                        v.get("distinct_paths").and_then(Json::as_num) >= Some(4.0),
                        "{json}"
                    );
                    assert!(v.get("synopsis_bytes").and_then(Json::as_num) > Some(0.0));
                    assert!(v.get("empty_proofs").is_some());
                }
                BinResponse::ExplainOk { id, count, text } => {
                    assert_eq!(*id, 4);
                    assert_eq!(*count, 2);
                    assert!(!text.is_empty());
                }
                other => panic!("unexpected response {other:?}"),
            }
            assert!(seen.insert(resp.id()));
        }
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn json_and_binary_share_one_port() {
        let (addr, stop) = spawn_server(1);
        // JSON connection.
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = BufWriter::new(stream.try_clone().unwrap());
            let mut r = BufReader::new(stream);
            write_frame(&mut w, r#"{"id":9,"op":"query","path":"//book"}"#).unwrap();
            w.flush().unwrap();
            let resp = read_frame(&mut r).unwrap().unwrap();
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        }
        // Binary connection against the same listener.
        {
            let mut c = bin_client(addr);
            c.send(&Request::Query {
                id: 10,
                path: "//book".into(),
                timeout_ms: None,
            })
            .unwrap();
            c.flush().unwrap();
            match c.recv().unwrap().unwrap() {
                BinResponse::QueryOk { id, matches } => {
                    assert_eq!(id, 10);
                    assert_eq!(matches.len(), 2);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn binary_bad_frames_get_bad_request_not_disconnect() {
        let (addr, stop) = spawn_server(1);
        let stream = TcpStream::connect(addr).unwrap();
        let mut raw = stream.try_clone().unwrap();
        raw.write_all(&MAGIC).unwrap();
        raw.write_all(&[VERSION]).unwrap();
        // Unknown opcode 0x7F with id 42.
        let mut frame = Vec::new();
        binproto::put_frame(&mut frame, 0x7F, 42, &[]);
        raw.write_all(&frame).unwrap();
        // A valid ping after the bad frame still gets served.
        frame.clear();
        binproto::encode_request(&mut frame, &Request::Ping { id: 43 });
        raw.write_all(&frame).unwrap();
        raw.flush().unwrap();
        let mut r = BufReader::new(stream);
        let (op1, id1, p1) = binproto::read_bin_frame(&mut r).unwrap().unwrap();
        match binproto::decode_response(op1, id1, &p1).unwrap() {
            BinResponse::Error { id, code, .. } => {
                assert_eq!(id, 42);
                assert_eq!(code, ErrCode::BadRequest);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let (op2, id2, p2) = binproto::read_bin_frame(&mut r).unwrap().unwrap();
        assert!(matches!(
            binproto::decode_response(op2, id2, &p2).unwrap(),
            BinResponse::Pong { id: 43 }
        ));
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }
}
