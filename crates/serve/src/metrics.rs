//! Server metrics: aggregate counters plus a fixed-bucket latency histogram
//! good enough for p50/p99 without per-request allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 microsecond buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs, so 40 buckets cover ~1µs to ~12 days.
const BUCKETS: usize = 40;

/// A concurrent latency histogram over log2-microsecond buckets.
///
/// Quantiles are bucket upper bounds — at most 2× off, which is plenty to
/// tell a 100µs p50 from a 10ms p99 — and reads are lock-free snapshots.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        // analyze: allow(serve-worker-panic): idx is clamped to BUCKETS-1 on the line above
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            0
        } else {
            self.sum_micros.load(Ordering::Relaxed) / n
        }
    }

    /// Latency quantile `q` in `[0,1]`, reported as the upper bound of the
    /// bucket containing the q-th observation, in microseconds.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i holds [2^(i-1), 2^i) µs; return the upper bound.
                return 1u64 << i.min(63);
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Histogram shards: workers record into `shards[worker % SHARDS]`, so with
/// up to 16 workers every worker owns its shard outright and latency
/// recording never bounces a cache line between cores. Reads merge.
const SHARDS: usize = 16;

/// A per-worker-sharded latency histogram, merged on read.
///
/// [`LatencyHistogram`] is already lock-free, but with every worker
/// recording into the *same* bucket array each observation is a contended
/// RMW on shared cache lines — measurable at high worker counts for the
/// hottest buckets. Sharding by worker index makes recording effectively
/// thread-private (still atomics, but uncontended ones); the read side —
/// quantiles, mean, count for the stats endpoint — walks all shards and
/// merges, which is the cold path. The merged view is exactly what a single
/// shared histogram would have contained, so the stats endpoint's output
/// shape and meaning are unchanged.
#[derive(Debug)]
pub struct ShardedLatency {
    shards: [LatencyHistogram; SHARDS],
}

impl Default for ShardedLatency {
    fn default() -> Self {
        ShardedLatency {
            shards: [(); SHARDS].map(|()| LatencyHistogram::default()),
        }
    }
}

impl ShardedLatency {
    /// Record one observation from worker `worker` (sharded by
    /// `worker % 16`).
    pub fn record_shard(&self, worker: usize, latency: Duration) {
        // analyze: allow(serve-worker-panic): index is taken modulo SHARDS
        self.shards[worker % SHARDS].record(latency);
    }

    /// Record one observation with no worker identity (shard 0). Callers
    /// off the worker hot path use this.
    pub fn record(&self, latency: Duration) {
        self.record_shard(0, latency);
    }

    /// Total observations across all shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(LatencyHistogram::count).sum()
    }

    /// Mean latency in microseconds across all shards (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let sum: u64 = self
            .shards
            .iter()
            .map(|s| s.sum_micros.load(Ordering::Relaxed))
            .sum();
        sum / n
    }

    /// Merged latency quantile `q` in `[0,1]`, reported as a bucket upper
    /// bound in microseconds — identical semantics to
    /// [`LatencyHistogram::quantile_micros`] over the union of all shards.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self
                .shards
                .iter()
                // analyze: allow(serve-worker-panic): i ranges over 0..BUCKETS
                .map(|s| s.buckets[i].load(Ordering::Relaxed))
                .sum::<u64>();
            if seen >= target {
                return 1u64 << i.min(63);
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Aggregate service counters, shared by every worker and connection.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Queries completed successfully.
    pub served: AtomicU64,
    /// Queries rejected because the admission queue was full.
    pub rejected: AtomicU64,
    /// Queries that hit their deadline.
    pub timed_out: AtomicU64,
    /// Queries that failed (parse error, storage error).
    pub failed: AtomicU64,
    /// Current admission-queue depth.
    pub queue_depth: AtomicU64,
    /// Plan-cache lookups that found a cached plan.
    pub plan_hits: AtomicU64,
    /// Plan-cache lookups that had to plan from scratch.
    pub plan_misses: AtomicU64,
    /// Plan-cache lookups that dropped an entry planned under an older
    /// commit generation.
    pub plan_stale: AtomicU64,
    /// Queries answered empty from the synopsis path summary alone: the
    /// planner proved a root chain unsupported and the executor never
    /// located a starting point or touched a page.
    pub empty_proofs: AtomicU64,
    /// End-to-end latency of successful queries (per-worker shards,
    /// merged on read).
    pub latency: ShardedLatency,
}

impl ServerMetrics {
    /// One-line summary (nokd logs this on shutdown).
    pub fn summary(&self) -> String {
        format!(
            "served={} rejected={} timed_out={} failed={} plan_hits={} plan_misses={} \
             plan_stale={} empty_proofs={} p50_us={} p99_us={} mean_us={}",
            self.served.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.timed_out.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
            self.plan_stale.load(Ordering::Relaxed),
            self.empty_proofs.load(Ordering::Relaxed),
            self.latency.quantile_micros(0.50),
            self.latency.quantile_micros(0.99),
            self.latency.mean_micros(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_buckets() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64,128) -> ub 128
        }
        h.record(Duration::from_millis(50)); // the single tail outlier
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_micros(0.50), 128);
        assert!(h.quantile_micros(0.999) >= 50_000);
        assert!(h.mean_micros() >= 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_micros(i % 512));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
