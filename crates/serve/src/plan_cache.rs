//! A bounded plan cache keyed by normalized query text, with per-entry
//! commit-generation tags.
//!
//! Planning is cheap but not free (parse + partition + cost), and a serving
//! workload repeats a small set of query shapes; caching the planned query
//! lets the worker hot path go straight to the executor. Each entry is
//! tagged with the **commit generation** it was planned under
//! ([`nok_core::XmlDb::commit_generation`] bumps once per durably committed
//! update transaction). A lookup presented with a newer generation than the
//! entry's tag drops just that entry — the stats it was costed from are
//! stale — and counts as *stale*; entries for other query shapes survive
//! untouched, so one commit no longer evicts the whole working set. Rolled
//! back transactions do not bump the generation and do not invalidate.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

use nok_core::PlannedQuery;

/// Outcome of one cache lookup.
#[derive(Debug)]
pub struct CacheLookup {
    /// The cached plan, if the key was present with a matching generation
    /// tag.
    pub plan: Option<Arc<PlannedQuery>>,
    /// Whether this lookup found an entry planned under an older generation
    /// and dropped it.
    pub stale: bool,
}

struct Entry {
    /// Commit generation this plan was costed under.
    generation: u64,
    plan: Arc<PlannedQuery>,
}

struct CacheInner {
    map: HashMap<String, Entry>,
    /// Insertion order, oldest first (FIFO eviction at capacity).
    order: VecDeque<String>,
}

/// A bounded plan cache with per-entry generation invalidation.
/// Thread-safe; shared by all service workers.
pub struct PlanCache {
    cap: usize,
    inner: Mutex<CacheInner>,
}

fn lock(m: &Mutex<CacheInner>) -> MutexGuard<'_, CacheInner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl PlanCache {
    /// A cache holding at most `cap` plans (0 disables caching: every
    /// lookup misses and inserts are dropped).
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Look `key` up under commit generation `generation`. An entry tagged
    /// with an older generation is dropped and counted *stale* — the stats
    /// it was costed from predate a committed transaction. An entry tagged
    /// *newer* — planned by a worker already on the next snapshot — is a
    /// plain miss for this lagging reader: it must not be served (its costs
    /// describe a state this reader cannot see), but dropping it would evict
    /// a plan that is fresh for every current reader and double-count the
    /// same commit as stale once per lagging worker.
    pub fn lookup(&self, key: &str, generation: u64) -> CacheLookup {
        let mut inner = lock(&self.inner);
        match inner.map.get(key) {
            Some(e) if e.generation == generation => CacheLookup {
                plan: Some(Arc::clone(&e.plan)),
                stale: false,
            },
            Some(e) if e.generation < generation => {
                inner.map.remove(key);
                inner.order.retain(|k| k != key);
                CacheLookup {
                    plan: None,
                    stale: true,
                }
            }
            _ => CacheLookup {
                plan: None,
                stale: false,
            },
        }
    }

    /// Insert a plan computed under commit generation `generation`. An
    /// existing entry for the key is replaced only if it is not newer (a
    /// worker still on an older snapshot must not clobber a fresher plan).
    pub fn insert(&self, key: String, generation: u64, plan: Arc<PlannedQuery>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        if let Some(existing) = inner.map.get_mut(&key) {
            if existing.generation <= generation {
                *existing = Entry { generation, plan };
            }
            return;
        }
        while inner.map.len() >= self.cap {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, Entry { generation, plan });
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Normalize query text for cache keying: collapse whitespace outside
/// string literals (inside quotes every byte is significant).
pub fn normalize_query(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    let mut in_str = false;
    for c in q.chars() {
        if in_str {
            out.push(c);
            if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nok_core::{QueryOptions, XmlDb};

    fn planned(db: &XmlDb<nok_pager::MemStorage>, q: &str) -> Arc<PlannedQuery> {
        Arc::new(db.plan_query(q, QueryOptions::default()).unwrap())
    }

    #[test]
    fn normalization_collapses_whitespace_outside_literals() {
        assert_eq!(normalize_query(" //a / b "), "//a/b");
        assert_eq!(
            normalize_query(r#"//a[x = "hello  world"]"#),
            r#"//a[x="hello  world"]"#
        );
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let db = XmlDb::build_in_memory("<a><b/></a>").unwrap();
        let cache = PlanCache::new(4);
        let key = normalize_query("//b");
        assert!(cache.lookup(&key, 0).plan.is_none());
        cache.insert(key.clone(), 0, planned(&db, "//b"));
        assert!(cache.lookup(&key, 0).plan.is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_change_drops_only_the_stale_entry() {
        let db = XmlDb::build_in_memory("<a><b/><c/></a>").unwrap();
        let cache = PlanCache::new(4);
        cache.insert("//b".into(), 0, planned(&db, "//b"));
        cache.insert("//c".into(), 0, planned(&db, "//c"));
        let l = cache.lookup("//b", 1);
        assert!(l.plan.is_none());
        assert!(l.stale);
        // Only the looked-up entry is dropped; //c survives until touched.
        assert_eq!(cache.len(), 1);
        assert!(
            cache.lookup("//c", 0).plan.is_some(),
            "untouched entry kept"
        );
        // Subsequent lookups at the new generation are plain misses.
        let l = cache.lookup("//b", 1);
        assert!(!l.stale);
        assert!(l.plan.is_none());
    }

    #[test]
    fn stale_entry_is_replaced_not_resurrected() {
        let db = XmlDb::build_in_memory("<a><b/></a>").unwrap();
        let cache = PlanCache::new(4);
        cache.insert("//b".into(), 0, planned(&db, "//b"));
        assert!(cache.lookup("//b", 3).stale);
        cache.insert("//b".into(), 3, planned(&db, "//b"));
        assert!(cache.lookup("//b", 3).plan.is_some());
        // An older-generation insert must not clobber the fresher plan.
        cache.insert("//b".into(), 1, planned(&db, "//b"));
        assert!(cache.lookup("//b", 3).plan.is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lagging_reader_does_not_evict_fresh_entry() {
        let db = XmlDb::build_in_memory("<a><b/></a>").unwrap();
        let cache = PlanCache::new(4);
        cache.insert("//b".into(), 2, planned(&db, "//b"));
        // A worker still on generation 1 must not be served the newer plan,
        // but must not drop it or report it stale either.
        let l = cache.lookup("//b", 1);
        assert!(l.plan.is_none());
        assert!(!l.stale, "fresh entry is a plain miss for a lagging reader");
        assert!(
            cache.lookup("//b", 2).plan.is_some(),
            "entry survives for current readers"
        );
    }

    #[test]
    fn capacity_evicts_oldest() {
        let db = XmlDb::build_in_memory("<a><b/><c/><d/></a>").unwrap();
        let cache = PlanCache::new(2);
        cache.insert("//b".into(), 0, planned(&db, "//b"));
        cache.insert("//c".into(), 0, planned(&db, "//c"));
        cache.insert("//d".into(), 0, planned(&db, "//d"));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("//b", 0).plan.is_none(), "oldest evicted");
        assert!(cache.lookup("//d", 0).plan.is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let db = XmlDb::build_in_memory("<a><b/></a>").unwrap();
        let cache = PlanCache::new(0);
        cache.insert("//b".into(), 0, planned(&db, "//b"));
        assert!(cache.lookup("//b", 0).plan.is_none());
    }

    #[test]
    fn committed_update_bumps_generation_and_staleness() {
        let mut db = XmlDb::build_in_memory("<a><b>x</b></a>").unwrap();
        let cache = PlanCache::new(4);
        let g0 = db.commit_generation();
        cache.insert("//b".into(), g0, planned(&db, "//b"));
        assert!(cache.lookup("//b", g0).plan.is_some());

        // A committed update transaction must bump the generation…
        let target = db.query("/a").unwrap()[0].dewey.clone();
        db.insert_last_child(&target, "<c>new</c>").unwrap();
        let g1 = db.commit_generation();
        assert!(g1 > g0, "commit must bump the generation");
        let l = cache.lookup("//b", g1);
        assert!(l.plan.is_none());
        assert!(l.stale, "committed txn stales cached plans");

        // …and a failed (rolled-back) update must not.
        cache.insert("//b".into(), g1, planned(&db, "//b"));
        let err = db.insert_last_child(&target, "<unclosed>");
        assert!(err.is_err(), "malformed fragment must be rejected");
        assert_eq!(db.commit_generation(), g1, "rollback must not bump");
        assert!(cache.lookup("//b", g1).plan.is_some());
    }
}
