//! Bounded MPMC admission queue with batch draining.
//!
//! The service's original admission path was a `Mutex<VecDeque>` plus a
//! `Condvar`: every submit took the lock, every worker wakeup took the lock,
//! and at high connection counts the lock became a convoy — profile-visible
//! precisely when the worker pool had cores to spare. This replaces it with
//! a fixed-size array queue in the style of Dmitry Vyukov's bounded MPMC
//! ring:
//!
//! * each cell carries a **sequence number** that encodes, relative to the
//!   two monotone positions, whether the cell is empty, full, or being
//!   operated on by another thread;
//! * producers claim a cell with one CAS on `enqueue_pos` and *fail fast*
//!   ([`PushError::Full`]) when the ring is at capacity — overload degrades
//!   by rejecting, exactly as before;
//! * consumers claim cells with one CAS each and **drain in batches**
//!   ([`AdmissionQueue::pop_wait_batch`]): a woken worker keeps popping
//!   until its batch is full or the ring is empty, so one wakeup amortizes
//!   across many jobs instead of paying a lock handoff per job.
//!
//! Parking uses a `Mutex<()>`/`Condvar` pair **only when a worker has seen
//! the ring empty** — the hot path (non-empty ring, running workers) never
//! touches it. The sleeper gauge is the classic eventcount handshake:
//! a worker registers as a sleeper (SeqCst RMW) *before* its final empty
//! re-check, and a producer publishes its item *before* loading the gauge
//! (SeqCst fence in between); in the single total order one of the two
//! always observes the other, so wakeups cannot be lost.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; the value is handed back.
    Full(T),
    /// The queue has been closed; the value is handed back.
    Closed(T),
}

struct Cell<T> {
    /// Cell state, relative to the positions: `seq == pos` means free for
    /// the producer claiming `pos`; `seq == pos + 1` means occupied for the
    /// consumer claiming `pos`; anything else means another thread is one
    /// lap ahead or mid-operation.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded MPMC queue. `T: Send` is enough for the queue to be shared:
/// every value is moved in by exactly one producer and moved out by exactly
/// one consumer, with the cell's sequence number serializing the two.
pub struct AdmissionQueue<T> {
    cells: Box<[Cell<T>]>,
    /// Capacity as configured (the ring itself is the next power of two;
    /// producers bound themselves by this number).
    cap: usize,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    closed: AtomicBool,
    /// Workers currently parked (or committing to park). SeqCst on both
    /// sides of the eventcount handshake; see module docs.
    sleepers: AtomicUsize,
    park: Mutex<()>,
    cv: Condvar,
}

// SAFETY: the seq protocol gives each value exactly one producer-writer and
// exactly one consumer-reader, with a Release/Acquire pair on `seq`
// ordering the hand-off, so `&AdmissionQueue<T>` shares when `T: Send`.
unsafe impl<T: Send> Sync for AdmissionQueue<T> {}
// SAFETY: moving the queue moves the owned cells; values are `T: Send`.
unsafe impl<T: Send> Send for AdmissionQueue<T> {}

fn lock_park<'a, T>(q: &'a AdmissionQueue<T>) -> MutexGuard<'a, ()> {
    q.park.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `cap` items (`cap` is clamped to at least
    /// 1; the backing ring is the next power of two).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        let ring = cap.next_power_of_two();
        AdmissionQueue {
            cells: (0..ring)
                .map(|i| Cell {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            cap,
            mask: ring - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Approximate occupancy (exact when no operation is in flight).
    pub fn len(&self) -> usize {
        // analyze: allow(atomic-ordering): advisory occupancy estimate, not a synchronization point
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        // analyze: allow(atomic-ordering): advisory occupancy estimate, not a synchronization point
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Non-blocking push; fails fast when the queue is full or closed.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(value));
        }
        // analyze: allow(atomic-ordering): cursor hint only; publication rides the cell seq (Acquire/Release)
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            // Bound by the *configured* capacity, which may be below the
            // power-of-two ring size.
            // analyze: allow(atomic-ordering): capacity check is advisory; a stale read fails conservatively
            if pos.saturating_sub(self.dequeue_pos.load(Ordering::Relaxed)) >= self.cap {
                return Err(PushError::Full(value));
            }
            // analyze: allow(serve-worker-panic): masked index is always in range
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos {
                // analyze: allow(atomic-ordering): Vyukov MPMC — the CAS only claims the slot; the cell seq store below is the Release publication
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of cell `pos`; no reader touches it until the seq
                        // store below publishes it.
                        unsafe { (*cell.value.get()).write(value) };
                        cell.seq.store(pos + 1, Ordering::Release);
                        self.wake_one();
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if seq < pos {
                // A full lap behind: the ring is full.
                return Err(PushError::Full(value));
            } else {
                // analyze: allow(atomic-ordering): retry-loop cursor refresh; correctness rides the cell seq
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        // analyze: allow(atomic-ordering): cursor hint only; the value read is guarded by the cell seq Acquire load
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            // analyze: allow(serve-worker-panic): masked index is always in range
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // analyze: allow(atomic-ordering): Vyukov MPMC — the CAS only claims the slot; the Acquire seq load above synchronizes with the producer
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique consumer
                        // of cell `pos`, and the Acquire load of `seq` saw the
                        // producer's Release store: the value is fully written.
                        let value = unsafe { (*cell.value.get()).assume_init_read() };
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(cur) => pos = cur,
                }
            } else if seq <= pos {
                return None;
            } else {
                // analyze: allow(atomic-ordering): retry-loop cursor refresh; correctness rides the cell seq
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop up to `max` items without blocking, appending to `out`. Returns
    /// how many were taken.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.try_pop() {
                Some(v) => {
                    out.push(v);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Blocking batch pop: parks until at least one item is available or
    /// the queue is closed. Returns `false` when closed (the caller should
    /// exit; any items still queued are intentionally abandoned, matching
    /// shutdown semantics where pending response slots resolve to
    /// `Shutdown`).
    pub fn pop_wait_batch(&self, out: &mut Vec<T>, max: usize) -> bool {
        loop {
            if self.is_closed() {
                return false;
            }
            if self.pop_batch(out, max) > 0 {
                return true;
            }
            let guard = lock_park(self);
            // Eventcount register: after this RMW, any producer that pushed
            // before loading `sleepers` either sees us (and notifies) or
            // pushed early enough for the re-check below to find the item.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.pop_batch(out, max) > 0 || self.is_closed() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return !out.is_empty();
            }
            let guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
        }
    }

    /// Close the queue: pushes fail, parked workers wake and observe the
    /// closed flag.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _guard = lock_park(self);
        self.cv.notify_all();
    }

    fn wake_one(&self) {
        // Publish-then-check side of the eventcount (see module docs).
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = lock_park(self);
            self.cv.notify_one();
        }
    }
}

impl<T> Drop for AdmissionQueue<T> {
    fn drop(&mut self) {
        // Drain whatever was still queued so the values run their own drops
        // (`&mut self`: no concurrent operations remain).
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_thread() {
        let q = AdmissionQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert!(matches!(q.push(9), Err(PushError::Full(9))));
        assert_eq!(q.len(), 4);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn capacity_is_bounded_below_ring_size() {
        // cap 3 rides on a 4-cell ring; the 4th push must still fail.
        let q = AdmissionQueue::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert!(matches!(q.push(4), Err(PushError::Full(4))));
        assert_eq!(q.try_pop(), Some(1));
        q.push(4).unwrap();
    }

    #[test]
    fn close_rejects_pushes_and_wakes_waiters() {
        let q = Arc::new(AdmissionQueue::<u32>::new(8));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_wait_batch(&mut out, 4)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!waiter.join().unwrap(), "closed queue returns false");
        assert!(matches!(q.push(1), Err(PushError::Closed(1))));
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let q = Arc::new(AdmissionQueue::<usize>::new(64));
        let seen = Arc::new(Mutex::new(vec![0u32; PRODUCERS * PER_PRODUCER]));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while q.pop_wait_batch(&mut out, 8) {
                        let mut seen = seen.lock().unwrap_or_else(|e| e.into_inner());
                        for v in out.drain(..) {
                            seen[v] += 1;
                        }
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => return,
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        let seen = seen.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            seen.iter().all(|&n| n == 1),
            "every value delivered exactly once"
        );
    }
}
