//! The pipelined binary wire protocol.
//!
//! The newline-JSON protocol ([`crate::proto`]) is one request per
//! round-trip: the client writes a frame, blocks, reads a frame. That shape
//! can never saturate a worker pool from one connection — the wire sits
//! idle for a full RTT per query. This module adds a compact binary
//! protocol with explicit request ids so a connection can keep many
//! requests in flight ("pipelining") and match responses as they arrive,
//! in whatever order the workers finish them.
//!
//! ## Connection preamble
//!
//! A binary client opens with 5 bytes: the magic `NOKB` then a version
//! byte (currently 1). The JSON protocol's first byte is always an ASCII
//! digit (a decimal frame length), so the server tells the two apart by
//! peeking one byte: `N` selects binary, a digit selects JSON. Both
//! protocols are served on the same port forever; binary is additive.
//!
//! ## Frame layout
//!
//! ```text
//! opcode   u8
//! id       u64 LE   client-chosen correlation id, echoed in the response
//! len      u32 LE   payload byte length (bounded by MAX_FRAME)
//! payload  len bytes
//! ```
//!
//! Request payloads:
//!
//! | opcode | request  | payload |
//! |--------|----------|---------|
//! | 0x01   | Query    | `timeout_ms: u64 LE` (`u64::MAX` = server default) + path UTF-8 |
//! | 0x02   | Explain  | path UTF-8 |
//! | 0x03   | Stats    | empty |
//! | 0x04   | Ping     | empty |
//! | 0x05   | Shutdown | empty |
//!
//! Response payloads:
//!
//! | opcode | response | payload |
//! |--------|----------|---------|
//! | 0x81   | QueryOk  | `count: u32 LE`, then per match `dewey_len: u16 LE` + dewey + `addr_len: u16 LE` + addr |
//! | 0x82   | ExplainOk| `count: u32 LE` + `text_len: u32 LE` + rendered plan table UTF-8 |
//! | 0x83   | StatsOk  | the stats object as compact JSON UTF-8 (same shape as the JSON protocol) |
//! | 0x84   | Pong     | empty |
//! | 0x85   | Stopping | empty |
//! | 0xEE   | Error    | `code: u8` + `msg_len: u16 LE` + message UTF-8 |
//!
//! Error codes mirror the JSON protocol's stable tags: 1 `timeout`,
//! 2 `queue_full`, 3 `engine`, 4 `shutdown`, 5 `bad_request`.
//!
//! **Ordering contract:** responses to pipelined requests may arrive in
//! any order; the id is the only correlation. A client that needs
//! submission order (nokq does, to diff byte-identically against offline
//! evaluation) reorders by id on its side.
//!
//! Encoding and decoding are pure functions over byte slices so the
//! property/fuzz suite can drive them without sockets.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

use crate::proto::{Request, WireMatch, MAX_FRAME};

/// Connection-opening magic for the binary protocol. The first byte must
/// not be an ASCII digit (that's how it is distinguished from a JSON frame
/// header).
pub const MAGIC: [u8; 4] = *b"NOKB";

/// Current protocol version, sent right after the magic.
pub const VERSION: u8 = 1;

/// Fixed frame header size: opcode + id + payload length.
pub const HEADER_LEN: usize = 1 + 8 + 4;

/// `timeout_ms` wire value meaning "use the server default".
const NO_TIMEOUT: u64 = u64::MAX;

/// Request opcodes.
pub mod op {
    /// Evaluate a path query.
    pub const QUERY: u8 = 0x01;
    /// Plan + evaluate with per-operator cardinalities.
    pub const EXPLAIN: u8 = 0x02;
    /// Aggregate server metrics.
    pub const STATS: u8 = 0x03;
    /// Liveness probe.
    pub const PING: u8 = 0x04;
    /// Graceful server exit.
    pub const SHUTDOWN: u8 = 0x05;
    /// Successful query result.
    pub const QUERY_OK: u8 = 0x81;
    /// Successful explain result.
    pub const EXPLAIN_OK: u8 = 0x82;
    /// Stats payload.
    pub const STATS_OK: u8 = 0x83;
    /// Ping acknowledgement.
    pub const PONG: u8 = 0x84;
    /// Shutdown acknowledgement.
    pub const STOPPING: u8 = 0x85;
    /// Error response.
    pub const ERROR: u8 = 0xEE;
}

/// Stable error codes carried by [`op::ERROR`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Query deadline exceeded.
    Timeout = 1,
    /// Admission queue full.
    QueueFull = 2,
    /// Engine rejected or failed the query.
    Engine = 3,
    /// Server shutting down.
    Shutdown = 4,
    /// Malformed request.
    BadRequest = 5,
}

impl ErrCode {
    /// The JSON protocol's string tag for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Timeout => "timeout",
            ErrCode::QueueFull => "queue_full",
            ErrCode::Engine => "engine",
            ErrCode::Shutdown => "shutdown",
            ErrCode::BadRequest => "bad_request",
        }
    }

    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Option<ErrCode> {
        match b {
            1 => Some(ErrCode::Timeout),
            2 => Some(ErrCode::QueueFull),
            3 => Some(ErrCode::Engine),
            4 => Some(ErrCode::Shutdown),
            5 => Some(ErrCode::BadRequest),
            _ => None,
        }
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinResponse {
    /// Successful query evaluation.
    QueryOk {
        /// Echoed correlation id.
        id: u64,
        /// Matches in document order.
        matches: Vec<WireMatch>,
    },
    /// Successful explain.
    ExplainOk {
        /// Echoed correlation id.
        id: u64,
        /// Number of matches the query produced.
        count: u32,
        /// Rendered estimated-vs-actual plan table.
        text: String,
    },
    /// Stats payload (compact JSON, same object shape as the JSON
    /// protocol's `stats` field).
    StatsOk {
        /// Echoed correlation id.
        id: u64,
        /// The stats object as compact JSON text.
        json: String,
    },
    /// Ping acknowledgement.
    Pong {
        /// Echoed correlation id.
        id: u64,
    },
    /// Shutdown acknowledgement.
    Stopping {
        /// Echoed correlation id.
        id: u64,
    },
    /// Request-level failure.
    Error {
        /// Echoed correlation id (0 when the id itself was unreadable).
        id: u64,
        /// Stable machine-readable code.
        code: ErrCode,
        /// Human-readable detail.
        message: String,
    },
}

impl BinResponse {
    /// The correlation id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            BinResponse::QueryOk { id, .. }
            | BinResponse::ExplainOk { id, .. }
            | BinResponse::StatsOk { id, .. }
            | BinResponse::Pong { id }
            | BinResponse::Stopping { id }
            | BinResponse::Error { id, .. } => *id,
        }
    }
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended inside a header or payload.
    Truncated,
    /// The declared payload length exceeds [`MAX_FRAME`].
    Oversized(u64),
    /// The opcode is not one this side understands.
    UnknownOpcode(u8),
    /// Structurally invalid payload.
    Malformed(&'static str),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds MAX_FRAME"),
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02X}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::BadUtf8 => write!(f, "frame string is not utf-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Little-endian slice readers (length-checked; no panics on hostile input).

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(FrameError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        // analyze: allow(serve-worker-panic): take(1) checked the length
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let s = self.take(2)?;
        // analyze: allow(serve-worker-panic): take(2) checked the length
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let s = self.take(4)?;
        // analyze: allow(serve-worker-panic): take(4) checked the length
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn str_with_len(&mut self, n: usize) -> Result<String, FrameError> {
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------------
// Frame layer.

/// Append one frame (header + payload) to `out`.
pub fn put_frame(out: &mut Vec<u8>, opcode: u8, id: u64, payload: &[u8]) {
    out.push(opcode);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Try to split one frame off the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds a frame prefix that is so far valid
/// but incomplete (read more bytes and retry), `Ok(Some(...))` with the
/// frame fields and the total bytes consumed, and `Err` when the prefix
/// can never become a valid frame (oversized declared length).
pub fn split_frame(buf: &[u8]) -> Result<Option<(u8, u64, &[u8], usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    // analyze: allow(serve-worker-panic): guarded by the HEADER_LEN check above
    let opcode = buf[0];
    let mut idb = [0u8; 8];
    // analyze: allow(serve-worker-panic): guarded by the HEADER_LEN check above
    idb.copy_from_slice(&buf[1..9]);
    let id = u64::from_le_bytes(idb);
    // analyze: allow(serve-worker-panic): guarded by the HEADER_LEN check above
    let len = u32::from_le_bytes([buf[9], buf[10], buf[11], buf[12]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len as u64));
    }
    let total = HEADER_LEN + len;
    match buf.get(HEADER_LEN..total) {
        Some(payload) => Ok(Some((opcode, id, payload, total))),
        None => Ok(None),
    }
}

/// Read one frame from a stream. `Ok(None)` on clean EOF at a frame
/// boundary; EOF inside a frame is an error (torn frame), as is an
/// oversized declared length.
pub fn read_bin_frame<R: Read>(r: &mut R) -> io::Result<Option<(u8, u64, Vec<u8>)>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        // analyze: allow(serve-worker-panic): filled < HEADER_LEN in the loop condition
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(FrameError::Truncated.into());
        }
        filled += n;
    }
    // analyze: allow(serve-worker-panic): header is a [u8; HEADER_LEN], fully read
    let opcode = header[0];
    let mut idb = [0u8; 8];
    // analyze: allow(serve-worker-panic): header is a [u8; HEADER_LEN], fully read
    idb.copy_from_slice(&header[1..9]);
    let id = u64::from_le_bytes(idb);
    // analyze: allow(serve-worker-panic): header is a [u8; HEADER_LEN], fully read
    let len = u32::from_le_bytes([header[9], header[10], header[11], header[12]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len as u64).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| io::Error::from(FrameError::Truncated))?;
    Ok(Some((opcode, id, payload)))
}

// ---------------------------------------------------------------------------
// Request encode/decode.

/// Append `req` to `out` as one binary frame.
pub fn encode_request(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Query {
            id,
            path,
            timeout_ms,
        } => {
            let mut payload = Vec::with_capacity(8 + path.len());
            payload.extend_from_slice(&timeout_ms.unwrap_or(NO_TIMEOUT).to_le_bytes());
            payload.extend_from_slice(path.as_bytes());
            put_frame(out, op::QUERY, *id, &payload);
        }
        Request::Explain { id, path } => put_frame(out, op::EXPLAIN, *id, path.as_bytes()),
        Request::Stats { id } => put_frame(out, op::STATS, *id, &[]),
        Request::Ping { id } => put_frame(out, op::PING, *id, &[]),
        Request::Shutdown { id } => put_frame(out, op::SHUTDOWN, *id, &[]),
    }
}

/// Decode a request from its frame fields.
pub fn decode_request(opcode: u8, id: u64, payload: &[u8]) -> Result<Request, FrameError> {
    match opcode {
        op::QUERY => {
            let mut c = Cursor::new(payload);
            let raw_timeout = c.u64()?;
            let path = c.str_with_len(payload.len().saturating_sub(8))?;
            Ok(Request::Query {
                id,
                path,
                timeout_ms: (raw_timeout != NO_TIMEOUT).then_some(raw_timeout),
            })
        }
        op::EXPLAIN => {
            let mut c = Cursor::new(payload);
            let path = c.str_with_len(payload.len())?;
            Ok(Request::Explain { id, path })
        }
        op::STATS => empty(payload).map(|()| Request::Stats { id }),
        op::PING => empty(payload).map(|()| Request::Ping { id }),
        op::SHUTDOWN => empty(payload).map(|()| Request::Shutdown { id }),
        other => Err(FrameError::UnknownOpcode(other)),
    }
}

fn empty(payload: &[u8]) -> Result<(), FrameError> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(FrameError::Malformed("payload on a bodiless opcode"))
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode.

/// Append `resp` to `out` as one binary frame.
pub fn encode_response(out: &mut Vec<u8>, resp: &BinResponse) {
    match resp {
        BinResponse::QueryOk { id, matches } => {
            let mut payload = Vec::with_capacity(4 + matches.len() * 16);
            payload.extend_from_slice(&(matches.len() as u32).to_le_bytes());
            for m in matches {
                // Dewey paths and physical addresses are short renderings;
                // u16 lengths are ample (and checked).
                let d = m.dewey.as_bytes();
                let a = m.addr.as_bytes();
                payload.extend_from_slice(&(d.len().min(u16::MAX as usize) as u16).to_le_bytes());
                // analyze: allow(serve-worker-panic): upper bound is clamped to the slice length
                payload.extend_from_slice(&d[..d.len().min(u16::MAX as usize)]);
                payload.extend_from_slice(&(a.len().min(u16::MAX as usize) as u16).to_le_bytes());
                // analyze: allow(serve-worker-panic): upper bound is clamped to the slice length
                payload.extend_from_slice(&a[..a.len().min(u16::MAX as usize)]);
            }
            put_frame(out, op::QUERY_OK, *id, &payload);
        }
        BinResponse::ExplainOk { id, count, text } => {
            let mut payload = Vec::with_capacity(8 + text.len());
            payload.extend_from_slice(&count.to_le_bytes());
            payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
            payload.extend_from_slice(text.as_bytes());
            put_frame(out, op::EXPLAIN_OK, *id, &payload);
        }
        BinResponse::StatsOk { id, json } => put_frame(out, op::STATS_OK, *id, json.as_bytes()),
        BinResponse::Pong { id } => put_frame(out, op::PONG, *id, &[]),
        BinResponse::Stopping { id } => put_frame(out, op::STOPPING, *id, &[]),
        BinResponse::Error { id, code, message } => {
            let msg = message.as_bytes();
            let take = msg.len().min(u16::MAX as usize);
            let mut payload = Vec::with_capacity(3 + take);
            payload.push(*code as u8);
            payload.extend_from_slice(&(take as u16).to_le_bytes());
            // analyze: allow(serve-worker-panic): take is clamped to the message length
            payload.extend_from_slice(&msg[..take]);
            put_frame(out, op::ERROR, *id, &payload);
        }
    }
}

/// Decode a response from its frame fields.
pub fn decode_response(opcode: u8, id: u64, payload: &[u8]) -> Result<BinResponse, FrameError> {
    match opcode {
        op::QUERY_OK => {
            let mut c = Cursor::new(payload);
            let count = c.u32()? as usize;
            // Each match needs at least 4 length bytes; reject counts the
            // payload cannot possibly hold before allocating.
            if count > payload.len() / 4 {
                return Err(FrameError::Malformed("match count exceeds payload"));
            }
            let mut matches = Vec::with_capacity(count);
            for _ in 0..count {
                let dl = c.u16()? as usize;
                let dewey = c.str_with_len(dl)?;
                let al = c.u16()? as usize;
                let addr = c.str_with_len(al)?;
                matches.push(WireMatch { dewey, addr });
            }
            c.done()?;
            Ok(BinResponse::QueryOk { id, matches })
        }
        op::EXPLAIN_OK => {
            let mut c = Cursor::new(payload);
            let count = c.u32()?;
            let tl = c.u32()? as usize;
            let text = c.str_with_len(tl)?;
            c.done()?;
            Ok(BinResponse::ExplainOk { id, count, text })
        }
        op::STATS_OK => {
            let mut c = Cursor::new(payload);
            let json = c.str_with_len(payload.len())?;
            Ok(BinResponse::StatsOk { id, json })
        }
        op::PONG => empty(payload).map(|()| BinResponse::Pong { id }),
        op::STOPPING => empty(payload).map(|()| BinResponse::Stopping { id }),
        op::ERROR => {
            let mut c = Cursor::new(payload);
            let code =
                ErrCode::from_byte(c.u8()?).ok_or(FrameError::Malformed("unknown error code"))?;
            let ml = c.u16()? as usize;
            let message = c.str_with_len(ml)?;
            c.done()?;
            Ok(BinResponse::Error { id, code, message })
        }
        other => Err(FrameError::UnknownOpcode(other)),
    }
}

// ---------------------------------------------------------------------------
// Client.

/// A binary-protocol client connection. Writes are buffered — a pipelining
/// caller `send`s a window of requests and `flush`es once — and responses
/// are read one frame at a time in arrival order.
pub struct BinClient {
    w: BufWriter<TcpStream>,
    r: BufReader<TcpStream>,
    scratch: Vec<u8>,
}

impl BinClient {
    /// Connect over an established stream: sends the preamble immediately.
    pub fn new(stream: TcpStream) -> io::Result<BinClient> {
        // Pipelined round-trips with small frames must not wait out Nagle.
        stream.set_nodelay(true).ok();
        let mut w = BufWriter::new(stream.try_clone()?);
        let r = BufReader::new(stream);
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION])?;
        Ok(BinClient {
            w,
            r,
            scratch: Vec::new(),
        })
    }

    /// Queue one request (buffered; call [`BinClient::flush`] to put it on
    /// the wire).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.scratch.clear();
        encode_request(&mut self.scratch, req);
        self.w.write_all(&self.scratch)
    }

    /// Flush buffered requests to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Read the next response frame; `Ok(None)` on clean EOF.
    pub fn recv(&mut self) -> io::Result<Option<BinResponse>> {
        match read_bin_frame(&mut self.r)? {
            None => Ok(None),
            Some((opcode, id, payload)) => decode_response(opcode, id, &payload)
                .map(Some)
                .map_err(io::Error::from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_binary() {
        for req in [
            Request::Query {
                id: 7,
                path: "//a/b".into(),
                timeout_ms: Some(250),
            },
            Request::Query {
                id: 8,
                path: "/x".into(),
                timeout_ms: None,
            },
            Request::Query {
                id: 9,
                path: String::new(),
                timeout_ms: Some(0),
            },
            Request::Explain {
                id: 10,
                path: "//a[b]".into(),
            },
            Request::Stats { id: 1 },
            Request::Ping { id: 2 },
            Request::Shutdown { id: u64::MAX },
        ] {
            let mut buf = Vec::new();
            encode_request(&mut buf, &req);
            let (opcode, id, payload, used) = split_frame(&buf).unwrap().unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(decode_request(opcode, id, payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_binary() {
        let cases = vec![
            BinResponse::QueryOk {
                id: 3,
                matches: vec![
                    WireMatch {
                        dewey: "1.2.3".into(),
                        addr: "4:7".into(),
                    },
                    WireMatch {
                        dewey: "1.9".into(),
                        addr: "2:0".into(),
                    },
                ],
            },
            BinResponse::QueryOk {
                id: 4,
                matches: vec![],
            },
            BinResponse::ExplainOk {
                id: 5,
                count: 2,
                text: "op  est  actual\n".into(),
            },
            BinResponse::StatsOk {
                id: 6,
                json: r#"{"served":3}"#.into(),
            },
            BinResponse::Pong { id: 7 },
            BinResponse::Stopping { id: 8 },
            BinResponse::Error {
                id: 9,
                code: ErrCode::QueueFull,
                message: "admission queue full".into(),
            },
        ];
        for resp in cases {
            let mut buf = Vec::new();
            encode_response(&mut buf, &resp);
            let (opcode, id, payload, used) = split_frame(&buf).unwrap().unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(decode_response(opcode, id, payload).unwrap(), resp);
        }
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &Request::Query {
                id: 1,
                path: "//x".into(),
                timeout_ms: None,
            },
        );
        for cut in 0..buf.len() {
            assert_eq!(
                split_frame(&buf[..cut]).unwrap().map(|f| f.3),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::new();
        put_frame(&mut buf, op::PING, 1, &[]);
        // Corrupt the length field to MAX_FRAME + 1.
        let bad = ((MAX_FRAME + 1) as u32).to_le_bytes();
        buf[9..13].copy_from_slice(&bad);
        assert!(matches!(split_frame(&buf), Err(FrameError::Oversized(_))));
        let mut r = &buf[..];
        assert!(read_bin_frame(&mut r).is_err());
    }

    #[test]
    fn torn_stream_frames_error_cleanly() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::Stats { id: 2 });
        // Clean EOF at a boundary: Ok(None).
        let mut r = &buf[..0];
        assert!(read_bin_frame(&mut r).unwrap().is_none());
        // EOF inside the header or payload: an error, not a hang or panic.
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_bin_frame(&mut r).is_err(), "torn at {cut}");
        }
    }

    #[test]
    fn unknown_opcodes_are_errors() {
        assert_eq!(
            decode_request(0x7F, 1, &[]),
            Err(FrameError::UnknownOpcode(0x7F))
        );
        assert_eq!(
            decode_response(0x02, 1, &[]),
            Err(FrameError::UnknownOpcode(0x02)),
            "request opcodes are not valid responses"
        );
    }

    #[test]
    fn bodiless_opcodes_reject_payloads() {
        assert!(decode_request(op::PING, 1, b"x").is_err());
        assert!(decode_response(op::PONG, 1, b"x").is_err());
    }
}
