//! Property/fuzz tests for the binary wire framing (`nok_serve::binproto`).
//!
//! The decoder faces a TCP stream, i.e. arbitrary bytes at arbitrary
//! split points. The properties pinned here:
//!
//! 1. **Round-trip**: every encodable request/response decodes back to
//!    itself, from any position inside a concatenated stream of frames.
//! 2. **Torn frames**: any strict prefix of a valid frame is "incomplete,
//!    read more" at the slice layer and a clean error (never a hang, panic,
//!    or huge allocation) at the stream layer.
//! 3. **Oversized lengths**: a declared payload length beyond `MAX_FRAME`
//!    is rejected before any allocation of that size.
//! 4. **Unknown opcodes**: decode to `FrameError::UnknownOpcode`, leaving
//!    the frame boundary intact so the connection can answer
//!    `bad_request` and keep going.
//! 5. **Arbitrary garbage**: the decoder never panics, whatever the bytes.
//! 6. **Interleaving**: responses permuted across ids still map back to
//!    the correct request by id — the invariant pipelined clients rely on.

use proptest::prelude::*;

use nok_serve::binproto::{
    decode_request, decode_response, encode_request, encode_response, put_frame, read_bin_frame,
    split_frame, BinResponse, ErrCode, FrameError, HEADER_LEN,
};
use nok_serve::proto::{Request, WireMatch, MAX_FRAME};

fn arb_path() -> impl Strategy<Value = String> {
    // Paths with slashes, predicate-ish chars, unicode (the `.` pool
    // includes multi-byte code points), and the empty string.
    prop_oneof!["[a-z/<>=0-9 .@*]{0,64}", ".{0,32}", Just(String::new()),]
}

fn arb_request() -> impl Strategy<Value = Request> {
    let timeout = prop_oneof![
        Just(None),
        (0u64..u64::MAX).prop_map(Some), // u64::MAX is the "absent" sentinel
    ];
    prop_oneof![
        (any::<u64>(), arb_path(), timeout).prop_map(|(id, path, timeout_ms)| Request::Query {
            id,
            path,
            timeout_ms
        }),
        (any::<u64>(), arb_path()).prop_map(|(id, path)| Request::Explain { id, path }),
        any::<u64>().prop_map(|id| Request::Stats { id }),
        any::<u64>().prop_map(|id| Request::Ping { id }),
        any::<u64>().prop_map(|id| Request::Shutdown { id }),
    ]
}

fn arb_match() -> impl Strategy<Value = WireMatch> {
    ("[0-9.]{1,24}", "[0-9]{1,8}:[0-9]{1,8}").prop_map(|(dewey, addr)| WireMatch { dewey, addr })
}

fn arb_err_code() -> impl Strategy<Value = ErrCode> {
    prop_oneof![
        Just(ErrCode::Timeout),
        Just(ErrCode::QueueFull),
        Just(ErrCode::Engine),
        Just(ErrCode::Shutdown),
        Just(ErrCode::BadRequest),
    ]
}

fn arb_response() -> impl Strategy<Value = BinResponse> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(arb_match(), 0..16))
            .prop_map(|(id, matches)| BinResponse::QueryOk { id, matches }),
        (any::<u64>(), any::<u32>(), ".{0,64}")
            .prop_map(|(id, count, text)| BinResponse::ExplainOk { id, count, text }),
        (any::<u64>(), ".{0,64}").prop_map(|(id, json)| BinResponse::StatsOk { id, json }),
        any::<u64>().prop_map(|id| BinResponse::Pong { id }),
        any::<u64>().prop_map(|id| BinResponse::Stopping { id }),
        (any::<u64>(), arb_err_code(), ".{0,48}")
            .prop_map(|(id, code, message)| BinResponse::Error { id, code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(reqs in prop::collection::vec(arb_request(), 1..8)) {
        // Concatenate all frames into one stream, then walk it frame by
        // frame — both with the slice splitter and the stream reader.
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(&mut wire, r);
        }
        let mut rest = &wire[..];
        for r in &reqs {
            let (opcode, id, payload, used) = split_frame(rest).unwrap().unwrap();
            prop_assert_eq!(&decode_request(opcode, id, payload).unwrap(), r);
            rest = &rest[used..];
        }
        prop_assert!(rest.is_empty());
        let mut stream = &wire[..];
        for r in &reqs {
            let (opcode, id, payload) = read_bin_frame(&mut stream).unwrap().unwrap();
            prop_assert_eq!(&decode_request(opcode, id, &payload).unwrap(), r);
        }
        prop_assert!(read_bin_frame(&mut stream).unwrap().is_none());
    }

    #[test]
    fn responses_round_trip(resps in prop::collection::vec(arb_response(), 1..8)) {
        let mut wire = Vec::new();
        for r in &resps {
            encode_response(&mut wire, r);
        }
        let mut rest = &wire[..];
        for r in &resps {
            let (opcode, id, payload, used) = split_frame(rest).unwrap().unwrap();
            prop_assert_eq!(&decode_response(opcode, id, payload).unwrap(), r);
            rest = &rest[used..];
        }
        prop_assert!(rest.is_empty());
    }

    #[test]
    fn torn_frames_never_decode_and_never_hang(req in arb_request(), cut in any::<u64>()) {
        let mut wire = Vec::new();
        encode_request(&mut wire, &req);
        let cut = (cut % wire.len() as u64) as usize; // strict prefix: 0..len
        // Slice layer: a prefix is "incomplete", never a bogus frame.
        prop_assert_eq!(split_frame(&wire[..cut]).unwrap().map(|f| f.3), None);
        // Stream layer: empty prefix is clean EOF, mid-frame EOF errors.
        let mut r = &wire[..cut];
        match read_bin_frame(&mut r) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "torn frame decoded"),
            Err(_) => prop_assert!(cut > 0),
        }
    }

    #[test]
    fn oversized_lengths_rejected(
        opcode in any::<u8>(),
        id in any::<u64>(),
        excess in 1u64..u32::MAX as u64 - MAX_FRAME as u64,
    ) {
        let bad_len = (MAX_FRAME as u64 + excess) as u32;
        let mut wire = vec![opcode];
        wire.extend_from_slice(&id.to_le_bytes());
        wire.extend_from_slice(&bad_len.to_le_bytes());
        prop_assert!(matches!(split_frame(&wire), Err(FrameError::Oversized(_))));
        let mut r = &wire[..];
        prop_assert!(read_bin_frame(&mut r).is_err());
    }

    #[test]
    fn unknown_opcodes_are_isolated_errors(
        opcode in prop_oneof![Just(0u8), 6u8..=255u8],
        id in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
        follow in arb_request(),
    ) {
        let mut wire = Vec::new();
        put_frame(&mut wire, opcode, id, &payload);
        encode_request(&mut wire, &follow);
        // The bad frame splits fine (framing is opcode-agnostic)…
        let (op_got, id_got, body, used) = split_frame(&wire).unwrap().unwrap();
        prop_assert_eq!((op_got, id_got), (opcode, id));
        // …decoding flags exactly the opcode…
        prop_assert_eq!(decode_request(op_got, id_got, body), Err(FrameError::UnknownOpcode(opcode)));
        // …and the next frame on the wire is untouched.
        let (op2, id2, body2, _) = split_frame(&wire[used..]).unwrap().unwrap();
        prop_assert_eq!(&decode_request(op2, id2, body2).unwrap(), &follow);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the bytes, the decoder returns — no panic, no unbounded
        // allocation (oversized lengths are rejected before allocating).
        if let Ok(Some((opcode, id, payload, _))) = split_frame(&bytes) {
            let _ = decode_request(opcode, id, payload);
            let _ = decode_response(opcode, id, payload);
        }
        let mut r = &bytes[..];
        while let Ok(Some((opcode, id, payload))) = read_bin_frame(&mut r) {
            let _ = decode_response(opcode, id, &payload);
        }
    }

    #[test]
    fn interleaved_responses_map_to_request_ids(
        paths in prop::collection::vec("[a-z]{1,8}", 2..10),
        seed in any::<u64>(),
    ) {
        // Requests go out with ids 0..n; responses come back in an
        // arbitrary permutation (that is the pipelining contract). A
        // client keyed purely on ids must reassociate every response with
        // its request.
        let n = paths.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Cheap deterministic shuffle from the seed.
        for i in (1..n).rev() {
            let j = (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut wire = Vec::new();
        for &i in &order {
            // Response payload encodes which request it answers: one match
            // whose dewey is the request index.
            encode_response(&mut wire, &BinResponse::QueryOk {
                id: i as u64,
                matches: vec![WireMatch { dewey: i.to_string(), addr: "0:0".into() }],
            });
        }
        let mut rest = &wire[..];
        let mut seen = vec![false; n];
        for _ in 0..n {
            let (opcode, id, payload, used) = split_frame(rest).unwrap().unwrap();
            rest = &rest[used..];
            let resp = decode_response(opcode, id, payload).unwrap();
            match resp {
                BinResponse::QueryOk { id, matches } => {
                    prop_assert_eq!(matches[0].dewey.clone(), id.to_string());
                    prop_assert!(!seen[id as usize], "duplicate id");
                    seen[id as usize] = true;
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn header_len_is_the_incompleteness_threshold(bytes in prop::collection::vec(any::<u8>(), 0..HEADER_LEN)) {
        // Below HEADER_LEN nothing can ever be a frame or an error —
        // regardless of content, the splitter must ask for more bytes.
        prop_assert_eq!(split_frame(&bytes).unwrap().map(|f| f.3), None);
    }
}
