//! End-to-end differential for the pipelined binary protocol: for every
//! paper dataset, the full Q1–Q12 workload (plus `//` descendant variants)
//! served over TCP with deep pipelining must render byte-identically to
//! offline single-threaded evaluation of the same queries.
//!
//! This is the binary-protocol sibling of the `nokq`-vs-`--offline` diff
//! the CI harness runs over the JSON protocol — same canonical
//! `path<TAB>count<TAB>dewey;...` lines, same oracle, different wire.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nok_core::XmlDb;
use nok_datagen::{generate, DatasetKind};
use nok_pager::MemStorage;
use nok_serve::binproto::{BinClient, BinResponse};
use nok_serve::conn::serve_connection;
use nok_serve::proto::{result_line, Request, WireMatch};
use nok_serve::{QueryService, ServiceConfig};

const PIPELINE_DEPTH: usize = 8;

fn workload_paths(kind: DatasetKind) -> Vec<String> {
    let mut paths = Vec::new();
    for (_, spec) in nok_datagen::workload(kind) {
        let Some(spec) = spec else { continue };
        paths.push(spec.path.clone());
        if spec.descendant_variant != spec.path {
            paths.push(spec.descendant_variant.clone());
        }
    }
    paths
}

fn render(db: &XmlDb<MemStorage>, path: &str) -> String {
    let matches = db.query(path).expect("offline query failed");
    let wire: Vec<WireMatch> = matches
        .iter()
        .map(|m| WireMatch {
            dewey: m.dewey.to_string(),
            addr: m.addr.to_string(),
        })
        .collect();
    result_line(path, &wire)
}

/// Start a TCP acceptor (the same `conn::serve_connection` loop `nokd`
/// runs) over a service; returns the address and a stop flag.
fn spawn_server(svc: Arc<QueryService<MemStorage>>) -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let local = listener.local_addr().expect("local_addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if stop2.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { break };
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop2);
            std::thread::spawn(move || {
                let _ = serve_connection(&stream, &svc, &stop, local);
            });
        }
    });
    (local, stop)
}

/// Run `queries` over one pipelined binary connection (window of
/// `depth`), reordering responses by request id — the exact strategy
/// `nokq --binary --pipeline N` uses.
fn run_pipelined(addr: SocketAddr, queries: &[String], depth: usize) -> Vec<String> {
    let mut client = BinClient::new(TcpStream::connect(addr).expect("connect")).expect("preamble");
    let mut lines: Vec<Option<String>> = vec![None; queries.len()];
    let mut next = 0usize;
    let mut outstanding = 0usize;
    let mut completed = 0usize;
    while completed < queries.len() {
        while next < queries.len() && outstanding < depth {
            client
                .send(&Request::Query {
                    id: next as u64 + 1,
                    path: queries[next].clone(),
                    timeout_ms: None,
                })
                .expect("send");
            next += 1;
            outstanding += 1;
        }
        client.flush().expect("flush");
        let resp = client.recv().expect("recv").expect("early EOF");
        match resp {
            BinResponse::QueryOk { id, matches } => {
                let idx = id as usize - 1;
                assert!(lines[idx].is_none(), "duplicate response for id {id}");
                lines[idx] = Some(result_line(&queries[idx], &matches));
            }
            other => panic!("unexpected response {other:?}"),
        }
        outstanding -= 1;
        completed += 1;
    }
    lines
        .into_iter()
        .map(|l| l.expect("missing line"))
        .collect()
}

/// All five paper datasets: deep-pipelined binary serving must be
/// byte-identical to offline evaluation, query for query.
#[test]
fn pipelined_binary_matches_offline_on_all_datasets() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, 0.005);
        let db = Arc::new(XmlDb::build_in_memory(&ds.xml).expect("build"));
        let paths = workload_paths(kind);
        let baseline: Vec<String> = paths.iter().map(|p| render(&db, p)).collect();

        let svc = Arc::new(QueryService::start(
            Arc::clone(&db),
            ServiceConfig {
                workers: 4,
                queue_cap: 64,
                default_timeout: Duration::from_secs(60),
                ..ServiceConfig::default()
            },
        ));
        let (addr, stop) = spawn_server(Arc::clone(&svc));

        let served = run_pipelined(addr, &paths, PIPELINE_DEPTH);
        for (i, (got, want)) in served.iter().zip(baseline.iter()).enumerate() {
            assert_eq!(
                got,
                want,
                "{}: pipelined binary diverged from offline on {}",
                kind.name(),
                paths[i]
            );
        }

        // Depth 1 (strict request/response over the binary wire) must give
        // the same bytes again.
        let serial = run_pipelined(addr, &paths, 1);
        assert_eq!(serial, baseline, "{}: depth-1 binary diverged", kind.name());

        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }
}

/// Two pipelined connections hammering the same service concurrently must
/// each see the oracle's bytes — responses may interleave arbitrarily
/// inside each connection, but ids keep them straight.
#[test]
fn concurrent_pipelined_connections_stay_correct() {
    let ds = generate(DatasetKind::Dblp, 0.005);
    let db = Arc::new(XmlDb::build_in_memory(&ds.xml).expect("build"));
    let paths = workload_paths(DatasetKind::Dblp);
    let baseline: Vec<String> = paths.iter().map(|p| render(&db, p)).collect();

    let svc = Arc::new(QueryService::start(
        Arc::clone(&db),
        ServiceConfig {
            workers: 4,
            queue_cap: 128,
            default_timeout: Duration::from_secs(60),
            ..ServiceConfig::default()
        },
    ));
    let (addr, stop) = spawn_server(Arc::clone(&svc));

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let paths = paths.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    let depth = [2, PIPELINE_DEPTH, 32][round % 3];
                    let got = run_pipelined(addr, &paths, depth);
                    assert_eq!(got, baseline, "depth {depth} diverged");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }

    stop.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}
