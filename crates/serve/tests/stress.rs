//! Concurrency stress suite: the serving layer must return *byte-identical*
//! results to the single-threaded engine on every paper dataset, under a
//! shared buffer pool small enough that eviction actually happens, and the
//! on-disk store must pass a strict integrity check after being hammered.

use std::sync::Arc;
use std::time::Duration;

use nok_core::XmlDb;
use nok_datagen::{generate, DatasetKind};
use nok_serve::proto::{result_line, WireMatch};
use nok_serve::{QueryService, ServiceConfig};
use nok_verify::{verify_db, VerifyOptions};

const THREADS: usize = 8;
const POOL_FRAMES: usize = 256;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nok-serve-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every `/`-rooted workload query plus its `//` descendant variant.
fn workload_paths(kind: DatasetKind) -> Vec<String> {
    let mut paths = Vec::new();
    for (_, spec) in nok_datagen::workload(kind) {
        let Some(spec) = spec else { continue };
        paths.push(spec.path.clone());
        if spec.descendant_variant != spec.path {
            paths.push(spec.descendant_variant.clone());
        }
    }
    paths
}

/// Render results in the canonical client format so "byte-identical" is
/// literal: the same strings the e2e harness diffs.
fn render(db: &XmlDb<nok_pager::FileStorage>, path: &str) -> String {
    let matches = db.query(path).expect("single-threaded query failed");
    let wire: Vec<WireMatch> = matches
        .iter()
        .map(|m| WireMatch {
            dewey: m.dewey.to_string(),
            addr: m.addr.to_string(),
        })
        .collect();
    result_line(path, &wire)
}

/// 8 threads × all five paper datasets × the full Q1–Q12 workload
/// (including descendant variants), through a service whose structural
/// pool is capped at 256 frames: every concurrent result must equal the
/// single-threaded baseline byte for byte.
#[test]
fn workload_is_byte_identical_across_threads() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, 0.01);
        let dir = fresh_dir(kind.name());
        XmlDb::create_on_disk(&dir, &ds.xml)
            .expect("build")
            .flush()
            .expect("flush");

        let db = Arc::new(
            XmlDb::open_dir_with_capacity(&dir, POOL_FRAMES).expect("reopen with capped pool"),
        );
        let paths = workload_paths(kind);
        let baseline: Vec<String> = paths.iter().map(|p| render(&db, p)).collect();

        let svc = Arc::new(QueryService::start(
            Arc::clone(&db),
            ServiceConfig {
                workers: THREADS,
                queue_cap: 256,
                default_timeout: Duration::from_secs(60),
                ..ServiceConfig::default()
            },
        ));
        let threads: Vec<_> = (0..THREADS)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let paths = paths.clone();
                std::thread::spawn(move || {
                    // Stagger starting offsets so threads collide on
                    // different pages at the same time.
                    let n = paths.len();
                    (0..n)
                        .map(|i| {
                            let p = &paths[(i + t * 3) % n];
                            let matches = svc.query(p).expect("served query failed");
                            let wire: Vec<WireMatch> = matches
                                .iter()
                                .map(|m| WireMatch {
                                    dewey: m.dewey.to_string(),
                                    addr: m.addr.to_string(),
                                })
                                .collect();
                            ((i + t * 3) % n, result_line(p, &wire))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for (idx, line) in t.join().expect("client thread panicked") {
                assert_eq!(
                    line,
                    baseline[idx],
                    "{}: concurrent result diverged from single-threaded baseline",
                    kind.name()
                );
            }
        }

        let served = svc
            .metrics()
            .served
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(served as usize, THREADS * paths.len());

        // The capacity bound held (transient overshoot ≤ one frame per
        // concurrently-faulting thread).
        let cached = db.store().pool().cached_frames();
        assert!(
            cached <= POOL_FRAMES + THREADS,
            "{}: pool over budget: {cached} frames cached (cap {POOL_FRAMES})",
            kind.name()
        );

        drop(svc);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Hammer a handful of hot pages from 8 threads, then require a strict
/// integrity pass over the on-disk store: concurrent reads through the
/// shared pool must not corrupt anything, even with constant eviction.
#[test]
fn hot_page_hammer_leaves_store_clean() {
    let ds = generate(DatasetKind::Author, 0.005);
    let dir = fresh_dir("hammer");
    XmlDb::create_on_disk(&dir, &ds.xml)
        .expect("build")
        .flush()
        .expect("flush");

    // A tiny pool forces every thread to fault and evict continuously.
    let db = Arc::new(XmlDb::open_dir_with_capacity(&dir, 8).expect("reopen"));
    let baseline = render(&db, "//author/name");

    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = Arc::clone(&db);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    assert_eq!(render(&db, "//author/name"), baseline);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("hammer thread panicked");
    }

    let report = verify_db(&db, VerifyOptions::strict());
    assert!(report.is_clean(), "post-hammer integrity: {report}");

    // And again from a completely fresh handle, straight off disk.
    drop(db);
    let db = XmlDb::open_dir(&dir).expect("reopen post-hammer");
    let report = verify_db(&db, VerifyOptions::strict());
    assert!(report.is_clean(), "fresh-open integrity: {report}");
    assert_eq!(render(&db, "//author/name"), baseline);

    std::fs::remove_dir_all(&dir).ok();
}

/// The navigation index (block summaries + directory skip index) under
/// thread pressure: 8 threads drive the indexed cursor primitives over a
/// shared store with a small pool (constant faulting and eviction, plus a
/// racy first build of the lazily-cached skip index) and every result must
/// equal the single-threaded `linear_*` oracle baseline.
#[test]
fn navigation_primitives_agree_under_threads() {
    use nok_core::cursor::{
        following_sibling, linear_following_sibling, linear_subtree_close, subtree_close, DocScan,
    };

    let ds = generate(DatasetKind::Treebank, 0.005);
    let dir = fresh_dir("navprims");
    XmlDb::create_on_disk(&dir, &ds.xml)
        .expect("build")
        .flush()
        .expect("flush");
    let db = Arc::new(XmlDb::open_dir_with_capacity(&dir, 64).expect("reopen"));

    // Single-threaded oracle baseline over a document-spanning sample.
    let items: Vec<_> = DocScan::new(db.store())
        .collect::<Result<Vec<_>, _>>()
        .expect("scan");
    let stride = (items.len() / 2000).max(1);
    let sample: Vec<_> = items
        .iter()
        .step_by(stride)
        .map(|it| {
            (
                it.addr,
                linear_following_sibling(db.store(), it.addr).expect("oracle sibling"),
                linear_subtree_close(db.store(), it.addr).expect("oracle close"),
            )
        })
        .collect();
    // Drop every decoded page (and its block summaries) so the threads
    // below race to re-decode and re-summarize shared pages.
    db.store().invalidate_decoded(None);

    let sample = Arc::new(sample);
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let sample = Arc::clone(&sample);
            std::thread::spawn(move || {
                let n = sample.len();
                for i in 0..n {
                    let (addr, sib, close) = sample[(i + t * 251) % n];
                    assert_eq!(
                        following_sibling(db.store(), addr).expect("sibling"),
                        sib,
                        "indexed following_sibling diverged under threads"
                    );
                    assert_eq!(
                        subtree_close(db.store(), addr).expect("close"),
                        close,
                        "indexed subtree_close diverged under threads"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("nav thread panicked");
    }

    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Render matches *and their values* so the differential below is
/// byte-identical on both structure and content.
fn render_values<S: nok_pager::Storage>(db: &XmlDb<S>, path: &str) -> String {
    let matches = db.query(path).expect("query failed");
    let wire: Vec<WireMatch> = matches
        .iter()
        .map(|m| WireMatch {
            dewey: m.dewey.to_string(),
            addr: m.addr.to_string(),
        })
        .collect();
    let mut line = result_line(path, &wire);
    for m in &matches {
        if let Some(v) = db.value_of(m).expect("value fetch failed") {
            line.push('|');
            line.push_str(&v);
        }
    }
    line
}

/// MVCC differential: one writer commits a stream of update transactions
/// while snapshot readers hammer from other threads. Every reader result
/// must be byte-identical to what the single-threaded writer saw right
/// after publishing that same epoch — and no reader may ever observe a
/// torn generation (a `<rec>` without its `<k/>` child, or vice versa).
#[test]
fn snapshot_readers_differential_against_writer_oracle() {
    use nok_core::Dewey;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut doc = String::from("<log>");
    for i in 0..8 {
        doc.push_str(&format!("<rec><k/><v>seed{i}</v></rec>"));
    }
    doc.push_str("</log>");
    let mut db = XmlDb::build_in_memory(&doc).expect("build");
    let src = db.snapshot_source();

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let src = src.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut seen: Vec<(u64, String)> = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let snap = src.snapshot().expect("pin");
                    // Torn-generation invariant: the writer only ever
                    // commits whole <rec><k/><v>…</v></rec> subtrees, so
                    // the two counts must agree at every epoch.
                    let recs = snap.query("//rec").expect("//rec").len();
                    let ks = snap.query("//rec/k").expect("//rec/k").len();
                    assert_eq!(
                        recs,
                        ks,
                        "torn generation observed at epoch {}",
                        snap.epoch()
                    );
                    if seen.last().map(|(e, _)| *e) != Some(snap.epoch()) {
                        seen.push((snap.epoch(), render_values(snap.db(), "//rec/v")));
                    }
                }
                seen
            })
        })
        .collect();

    // The writer owns the database exclusively; readers pin through the
    // detached source. Record the canonical answer right after each
    // commit — that is the single-threaded oracle for that epoch.
    let mut oracle: Vec<(u64, String)> = vec![(0, render_values(&db, "//rec/v"))];
    for i in 0..24 {
        if i % 4 == 3 {
            db.delete_subtree(&Dewey::from_components(vec![0, 0]))
                .expect("writer delete");
        } else {
            db.insert_last_child(&Dewey::root(), &format!("<rec><k/><v>w{i}</v></rec>"))
                .expect("writer insert");
        }
        oracle.push((db.commit_generation(), render_values(&db, "//rec/v")));
        std::thread::sleep(Duration::from_millis(1));
    }
    done.store(true, Ordering::Relaxed);

    let oracle: HashMap<u64, String> = oracle.into_iter().collect();
    let mut distinct = HashSet::new();
    for r in readers {
        for (epoch, line) in r.join().expect("reader panicked") {
            distinct.insert(epoch);
            assert_eq!(
                Some(&line),
                oracle.get(&epoch),
                "reader at epoch {epoch} diverged from the writer oracle"
            );
        }
    }
    assert!(
        distinct.len() >= 2,
        "readers never overlapped the writer (saw only {distinct:?})"
    );
    // And the final published generation matches the writer's last state.
    let last = src.snapshot().expect("final pin");
    assert_eq!(
        render_values(last.db(), "//rec/v"),
        oracle[&db.commit_generation()]
    );
}

/// Crash at every mutating I/O during a generation build (one committed
/// insert): a reader pinned on the prior generation must be completely
/// undisturbed by the crash, and reopening the torn directory must
/// recover to a strict-clean store every time.
#[test]
fn crash_mid_generation_build_spares_pinned_readers_and_recovers_clean() {
    use nok_core::Dewey;
    use nok_pager::{FailPlan, FailpointStorage, FileStorage};

    let doc = "<log><rec><k/><v>stable</v></rec><rec><k/><v>also</v></rec></log>";
    let frag = "<rec><k/><v>incoming</v></rec>";

    // Counting pass: how many mutating I/Os one committed insert issues.
    let dir = fresh_dir("mvcc-crash-count");
    XmlDb::create_on_disk(&dir, doc)
        .expect("build")
        .flush()
        .expect("flush");
    let plan = FailPlan::counting();
    let total = {
        let wrap = Arc::clone(&plan);
        let mut db = XmlDb::<FailpointStorage<FileStorage>>::open_dir_with(&dir, 64, move |s| {
            FailpointStorage::new(s, Arc::clone(&wrap))
        })
        .expect("open counting");
        db.set_failpoint(Arc::clone(&plan));
        db.insert_last_child(&Dewey::root(), frag)
            .expect("counting insert");
        plan.count()
    };
    std::fs::remove_dir_all(&dir).ok();
    assert!(total > 0, "insert issued no mutating I/O to crash at");

    for k in 1..=total {
        let dir = fresh_dir(&format!("mvcc-crash-{k}"));
        XmlDb::create_on_disk(&dir, doc)
            .expect("build")
            .flush()
            .expect("flush");
        let plan = FailPlan::at(k);
        let wrap = Arc::clone(&plan);
        let mut db = XmlDb::<FailpointStorage<FileStorage>>::open_dir_with(&dir, 64, move |s| {
            FailpointStorage::new(s, Arc::clone(&wrap))
        })
        .expect("open with failpoint");
        db.set_failpoint(Arc::clone(&plan));

        let pinned = db.snapshot().expect("pin prior generation");
        let epoch0 = pinned.epoch();
        let before = render_values(pinned.db(), "//rec/v");

        // The generation build dies at the k-th mutating I/O (or commits,
        // for k past the commit point — both legal outcomes of a crash).
        let _ = db.insert_last_child(&Dewey::root(), frag);

        assert_eq!(pinned.epoch(), epoch0);
        assert_eq!(
            render_values(pinned.db(), "//rec/v"),
            before,
            "crash at mutating I/O #{k} disturbed a pinned prior-generation reader"
        );

        drop(pinned);
        drop(db);
        let db =
            XmlDb::open_dir(&dir).unwrap_or_else(|e| panic!("reopen after crash at I/O #{k}: {e}"));
        let report = verify_db(&db, VerifyOptions::strict());
        assert!(report.is_clean(), "crash at I/O #{k}: {report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Sanity: the serving layer over MemStorage agrees with the engine when
/// queries are submitted concurrently with wildly different shapes.
#[test]
fn mixed_query_shapes_agree() {
    let ds = generate(DatasetKind::Catalog, 0.005);
    let db = Arc::new(XmlDb::build_in_memory(&ds.xml).expect("build"));
    let paths = workload_paths(DatasetKind::Catalog);
    let baseline: Vec<Vec<nok_core::QueryMatch>> = paths
        .iter()
        .map(|p| db.query(p).expect("baseline"))
        .collect();

    let svc = Arc::new(QueryService::start(
        Arc::clone(&db),
        ServiceConfig {
            workers: 4,
            queue_cap: 64,
            default_timeout: Duration::from_secs(60),
            ..ServiceConfig::default()
        },
    ));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let paths = paths.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for (i, p) in paths.iter().enumerate().skip(t % 2) {
                    assert_eq!(svc.query(p).expect("served"), baseline[i], "{p}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }
}
