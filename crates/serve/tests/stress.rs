//! Concurrency stress suite: the serving layer must return *byte-identical*
//! results to the single-threaded engine on every paper dataset, under a
//! shared buffer pool small enough that eviction actually happens, and the
//! on-disk store must pass a strict integrity check after being hammered.

use std::sync::Arc;
use std::time::Duration;

use nok_core::XmlDb;
use nok_datagen::{generate, DatasetKind};
use nok_serve::proto::{result_line, WireMatch};
use nok_serve::{QueryService, ServiceConfig};
use nok_verify::{verify_db, VerifyOptions};

const THREADS: usize = 8;
const POOL_FRAMES: usize = 256;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nok-serve-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every `/`-rooted workload query plus its `//` descendant variant.
fn workload_paths(kind: DatasetKind) -> Vec<String> {
    let mut paths = Vec::new();
    for (_, spec) in nok_datagen::workload(kind) {
        let Some(spec) = spec else { continue };
        paths.push(spec.path.clone());
        if spec.descendant_variant != spec.path {
            paths.push(spec.descendant_variant.clone());
        }
    }
    paths
}

/// Render results in the canonical client format so "byte-identical" is
/// literal: the same strings the e2e harness diffs.
fn render(db: &XmlDb<nok_pager::FileStorage>, path: &str) -> String {
    let matches = db.query(path).expect("single-threaded query failed");
    let wire: Vec<WireMatch> = matches
        .iter()
        .map(|m| WireMatch {
            dewey: m.dewey.to_string(),
            addr: m.addr.to_string(),
        })
        .collect();
    result_line(path, &wire)
}

/// 8 threads × all five paper datasets × the full Q1–Q12 workload
/// (including descendant variants), through a service whose structural
/// pool is capped at 256 frames: every concurrent result must equal the
/// single-threaded baseline byte for byte.
#[test]
fn workload_is_byte_identical_across_threads() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, 0.01);
        let dir = fresh_dir(kind.name());
        XmlDb::create_on_disk(&dir, &ds.xml)
            .expect("build")
            .flush()
            .expect("flush");

        let db = Arc::new(
            XmlDb::open_dir_with_capacity(&dir, POOL_FRAMES).expect("reopen with capped pool"),
        );
        let paths = workload_paths(kind);
        let baseline: Vec<String> = paths.iter().map(|p| render(&db, p)).collect();

        let svc = Arc::new(QueryService::start(
            Arc::clone(&db),
            ServiceConfig {
                workers: THREADS,
                queue_cap: 256,
                default_timeout: Duration::from_secs(60),
                ..ServiceConfig::default()
            },
        ));
        let threads: Vec<_> = (0..THREADS)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let paths = paths.clone();
                std::thread::spawn(move || {
                    // Stagger starting offsets so threads collide on
                    // different pages at the same time.
                    let n = paths.len();
                    (0..n)
                        .map(|i| {
                            let p = &paths[(i + t * 3) % n];
                            let matches = svc.query(p).expect("served query failed");
                            let wire: Vec<WireMatch> = matches
                                .iter()
                                .map(|m| WireMatch {
                                    dewey: m.dewey.to_string(),
                                    addr: m.addr.to_string(),
                                })
                                .collect();
                            ((i + t * 3) % n, result_line(p, &wire))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for (idx, line) in t.join().expect("client thread panicked") {
                assert_eq!(
                    line,
                    baseline[idx],
                    "{}: concurrent result diverged from single-threaded baseline",
                    kind.name()
                );
            }
        }

        let served = svc
            .metrics()
            .served
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(served as usize, THREADS * paths.len());

        // The capacity bound held (transient overshoot ≤ one frame per
        // concurrently-faulting thread).
        let cached = db.store().pool().cached_frames();
        assert!(
            cached <= POOL_FRAMES + THREADS,
            "{}: pool over budget: {cached} frames cached (cap {POOL_FRAMES})",
            kind.name()
        );

        drop(svc);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Hammer a handful of hot pages from 8 threads, then require a strict
/// integrity pass over the on-disk store: concurrent reads through the
/// shared pool must not corrupt anything, even with constant eviction.
#[test]
fn hot_page_hammer_leaves_store_clean() {
    let ds = generate(DatasetKind::Author, 0.005);
    let dir = fresh_dir("hammer");
    XmlDb::create_on_disk(&dir, &ds.xml)
        .expect("build")
        .flush()
        .expect("flush");

    // A tiny pool forces every thread to fault and evict continuously.
    let db = Arc::new(XmlDb::open_dir_with_capacity(&dir, 8).expect("reopen"));
    let baseline = render(&db, "//author/name");

    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = Arc::clone(&db);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    assert_eq!(render(&db, "//author/name"), baseline);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("hammer thread panicked");
    }

    let report = verify_db(&db, VerifyOptions::strict());
    assert!(report.is_clean(), "post-hammer integrity: {report}");

    // And again from a completely fresh handle, straight off disk.
    drop(db);
    let db = XmlDb::open_dir(&dir).expect("reopen post-hammer");
    let report = verify_db(&db, VerifyOptions::strict());
    assert!(report.is_clean(), "fresh-open integrity: {report}");
    assert_eq!(render(&db, "//author/name"), baseline);

    std::fs::remove_dir_all(&dir).ok();
}

/// The navigation index (block summaries + directory skip index) under
/// thread pressure: 8 threads drive the indexed cursor primitives over a
/// shared store with a small pool (constant faulting and eviction, plus a
/// racy first build of the lazily-cached skip index) and every result must
/// equal the single-threaded `linear_*` oracle baseline.
#[test]
fn navigation_primitives_agree_under_threads() {
    use nok_core::cursor::{
        following_sibling, linear_following_sibling, linear_subtree_close, subtree_close, DocScan,
    };

    let ds = generate(DatasetKind::Treebank, 0.005);
    let dir = fresh_dir("navprims");
    XmlDb::create_on_disk(&dir, &ds.xml)
        .expect("build")
        .flush()
        .expect("flush");
    let db = Arc::new(XmlDb::open_dir_with_capacity(&dir, 64).expect("reopen"));

    // Single-threaded oracle baseline over a document-spanning sample.
    let items: Vec<_> = DocScan::new(db.store())
        .collect::<Result<Vec<_>, _>>()
        .expect("scan");
    let stride = (items.len() / 2000).max(1);
    let sample: Vec<_> = items
        .iter()
        .step_by(stride)
        .map(|it| {
            (
                it.addr,
                linear_following_sibling(db.store(), it.addr).expect("oracle sibling"),
                linear_subtree_close(db.store(), it.addr).expect("oracle close"),
            )
        })
        .collect();
    // Drop every decoded page (and its block summaries) so the threads
    // below race to re-decode and re-summarize shared pages.
    db.store().invalidate_decoded(None);

    let sample = Arc::new(sample);
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let sample = Arc::clone(&sample);
            std::thread::spawn(move || {
                let n = sample.len();
                for i in 0..n {
                    let (addr, sib, close) = sample[(i + t * 251) % n];
                    assert_eq!(
                        following_sibling(db.store(), addr).expect("sibling"),
                        sib,
                        "indexed following_sibling diverged under threads"
                    );
                    assert_eq!(
                        subtree_close(db.store(), addr).expect("close"),
                        close,
                        "indexed subtree_close diverged under threads"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("nav thread panicked");
    }

    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Sanity: the serving layer over MemStorage agrees with the engine when
/// queries are submitted concurrently with wildly different shapes.
#[test]
fn mixed_query_shapes_agree() {
    let ds = generate(DatasetKind::Catalog, 0.005);
    let db = Arc::new(XmlDb::build_in_memory(&ds.xml).expect("build"));
    let paths = workload_paths(DatasetKind::Catalog);
    let baseline: Vec<Vec<nok_core::QueryMatch>> = paths
        .iter()
        .map(|p| db.query(p).expect("baseline"))
        .collect();

    let svc = Arc::new(QueryService::start(
        Arc::clone(&db),
        ServiceConfig {
            workers: 4,
            queue_cap: 64,
            default_timeout: Duration::from_secs(60),
            ..ServiceConfig::default()
        },
    ));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let paths = paths.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for (i, p) in paths.iter().enumerate().skip(t % 2) {
                    assert_eq!(svc.query(p).expect("served"), baseline[i], "{p}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }
}
