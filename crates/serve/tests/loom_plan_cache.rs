//! Loom model of plan-cache generation invalidation racing a lookup.
//!
//! Mirrors `PlanCache::{lookup, insert}` (crates/serve/src/plan_cache.rs):
//! both take the inner mutex, a lookup under a newer commit generation
//! clears the cache, and an insert is dropped when the cache has moved to a
//! different generation — that last check is the property under test here,
//! because without it a plan computed under an old commit could be
//! published after the invalidation and then served to newer queries.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p nok-serve --test loom_plan_cache`
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// `plan` carries the generation it was computed under, so a lookup can
/// assert it never receives a plan from a different generation.
struct Inner {
    generation: u64,
    plan: Option<u64>,
}

struct Cache {
    committed: AtomicU64,
    inner: Mutex<Inner>,
}

impl Cache {
    fn new() -> Self {
        Cache {
            committed: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                generation: 0,
                plan: None,
            }),
        }
    }

    /// Mirrors `PlanCache::lookup`.
    fn lookup(&self, generation: u64) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap();
        if inner.generation != generation {
            inner.plan = None;
            inner.generation = generation;
        }
        inner.plan
    }

    /// Mirrors `PlanCache::insert` — including the stale-generation drop.
    fn insert(&self, generation: u64, plan: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.generation != generation {
            return; // the plan may already be stale; recompute next time
        }
        inner.plan = Some(plan);
    }

    /// One query: plan under the currently committed generation, going
    /// through the cache exactly like `service.rs` does.
    fn query(&self) {
        let generation = self.committed.load(Ordering::Acquire);
        match self.lookup(generation) {
            Some(plan) => assert_eq!(
                plan, generation,
                "cache served a plan from a different commit generation"
            ),
            None => self.insert(generation, generation),
        }
    }
}

/// An updater advancing the commit generation racing two query threads:
/// no interleaving may serve a stale plan under the new generation.
#[test]
fn invalidation_never_serves_stale_plan() {
    loom::model(|| {
        let c = Arc::new(Cache::new());

        let updater = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.committed.store(1, Ordering::Release))
        };
        let q1 = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                c.query();
                c.query();
            })
        };
        let q2 = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.query())
        };

        updater.join().unwrap();
        q1.join().unwrap();
        q2.join().unwrap();

        // Settled state: one more query must observe its own generation.
        c.query();
    });
}

/// The same model with the stale-generation check removed fails — kept as a
/// sanity proof that the model actually exercises the race, not as CI
/// coverage (a buggy cache may need many schedules to trip).
#[test]
#[should_panic(expected = "different commit generation")]
fn insert_without_generation_check_is_caught() {
    loom::model(|| {
        let c = Arc::new(Cache::new());

        let racer = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                // Plan computed under generation 0...
                let generation = c.committed.load(Ordering::Acquire);
                let plan = generation;
                // ...but published unconditionally (the bug).
                let mut inner = c.inner.lock().unwrap();
                inner.plan = Some(plan);
            })
        };
        let updater = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                c.committed.store(1, Ordering::Release);
                // An invalidating lookup under the new generation.
                c.lookup(1);
            })
        };

        racer.join().unwrap();
        updater.join().unwrap();
        c.query();
    });
}
