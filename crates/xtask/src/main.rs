//! `cargo xtask` — repository automation.
//!
//! Subcommands:
//!
//! * `cargo xtask analyze` — static concurrency analysis over
//!   `crates/**/*.rs` via the `nok-analyze` crate: lock-order hierarchy
//!   with call-graph propagation, atomic-ordering audit, seqlock read
//!   validation, panic-path rules, and the five historical hygiene rules
//!   re-implemented on the AST. Exits nonzero when any finding is reported.
//! * `cargo xtask analyze --json` — same, machine-readable output (rule id,
//!   file:line, message, lock path) for CI artifacts.
//! * `cargo xtask analyze --self-test` — runs the analyzer over embedded
//!   fixtures that each reintroduce one violation class (plus clean
//!   counterparts), and fails if any rule stops firing.
//! * `cargo xtask lint` — alias for `analyze`, kept for muscle memory and
//!   old scripts.
//!
//! Everything is path-vendored; this crate must never grow a registry
//! dependency (the build environment is offline).

use std::path::Path;
use std::process::ExitCode;

fn workspace_root() -> &'static Path {
    // crates/xtask/../.. — robust regardless of the invocation directory.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap_or_else(|| Path::new("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") | Some("lint") => {
            if args.iter().any(|a| a == "--self-test") {
                self_test()
            } else {
                run_analyze(args.iter().any(|a| a == "--json"))
            }
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand: {other}");
            usage()
        }
        None => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask analyze [--json] [--self-test]");
    eprintln!("       cargo xtask lint     (alias for analyze)");
    ExitCode::FAILURE
}

fn run_analyze(json: bool) -> ExitCode {
    let root = workspace_root();
    let report = match nok_analyze::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn self_test() -> ExitCode {
    match nok_analyze::selftest::run() {
        Ok(()) => {
            println!("xtask analyze --self-test: all rule fixtures behave");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask analyze --self-test FAILED:\n{e}");
            ExitCode::FAILURE
        }
    }
}
