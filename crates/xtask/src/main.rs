//! `cargo xtask` — repository automation, std-only (the build environment is
//! offline; this crate must never grow an external dependency).
//!
//! Subcommands:
//!
//! * `cargo xtask lint` — source-analysis pass over `crates/**/*.rs`
//!   enforcing the repo's panic-freedom and hygiene rules (see `lint.rs`).
//!   Exits nonzero when any finding is reported.
//! * `cargo xtask lint --self-test` — verifies the scanner still catches
//!   every forbidden-pattern class by running it over embedded fixtures that
//!   each reintroduce one violation. Exits nonzero if any class goes
//!   undetected (i.e. the lint wall has a hole).

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn workspace_root() -> &'static Path {
    // crates/xtask/../.. — robust regardless of the invocation directory.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap_or_else(|| Path::new("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--self-test") {
                lint_self_test()
            } else {
                run_lint()
            }
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand: {other}");
            eprintln!("usage: cargo xtask lint [--self-test]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [--self-test]");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let crates_dir = root.join("crates");
    let sources = match lint::rust_sources(&crates_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask lint: cannot walk {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &sources {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = path.strip_prefix(root).unwrap_or(path);
        findings.extend(lint::scan_source(rel, &source));
        scanned += 1;
    }

    if findings.is_empty() {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} finding(s) in {scanned} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// One fixture per forbidden-pattern class: (name, hot-path file it claims to
/// be, source that must produce at least one finding of `rule`).
const SELF_TEST_FIXTURES: &[(&str, &str, &str, &str)] = &[
    (
        "unwrap-in-hot-path",
        "crates/core/src/cursor.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        "hot-path-panic",
    ),
    (
        "expect-in-hot-path",
        "crates/pager/src/pool.rs",
        "fn f(x: Option<u8>) -> u8 { x.expect(\"msg\") }\n",
        "hot-path-panic",
    ),
    (
        "panic-in-hot-path",
        "crates/btree/src/lib.rs",
        "fn f() { panic!(\"boom\") }\n",
        "hot-path-panic",
    ),
    (
        "unreachable-in-hot-path",
        "crates/core/src/store.rs",
        "fn f() { unreachable!() }\n",
        "hot-path-panic",
    ),
    (
        "stray-dbg",
        "crates/xml/src/reader.rs",
        "fn f() { dbg!(42); }\n",
        "stray-debug-macro",
    ),
    (
        "stray-todo",
        "crates/core/src/engine.rs",
        "fn f() { todo!() }\n",
        "stray-debug-macro",
    ),
    (
        "undocumented-unsafe",
        "crates/core/src/page.rs",
        "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        "undocumented-unsafe",
    ),
    (
        "plan-operator-outside-pipeline",
        "crates/serve/src/service.rs",
        "fn f() -> PlanStep { PlanStep::Collect { frag: 0 } }\n",
        "plan-operator-construction",
    ),
];

/// Fixtures that must be *clean*: the exemptions the lint promises.
const SELF_TEST_CLEAN: &[(&str, &str, &str)] = &[
    (
        "cfg-test-exemption",
        "crates/core/src/cursor.rs",
        "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
    ),
    (
        "cold-module-exemption",
        "crates/core/src/naive.rs",
        "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    ),
    (
        "documented-unsafe",
        "crates/core/src/page.rs",
        "// SAFETY: fixture — pointer is valid by construction.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    ),
    (
        "plan-operator-inside-pipeline",
        "crates/core/src/exec.rs",
        "fn f() -> SeedChoice { SeedChoice::Scan }\n",
    ),
];

fn lint_self_test() -> ExitCode {
    let mut failures = 0usize;
    for (name, path, src, want_rule) in SELF_TEST_FIXTURES {
        let findings = lint::scan_source(Path::new(path), src);
        if findings.iter().any(|f| f.rule == *want_rule) {
            println!("self-test {name}: caught ({want_rule})");
        } else {
            println!("self-test {name}: NOT CAUGHT — lint wall has a hole");
            failures += 1;
        }
    }
    for (name, path, src) in SELF_TEST_CLEAN {
        let findings = lint::scan_source(Path::new(path), src);
        if findings.is_empty() {
            println!("self-test {name}: clean as expected");
        } else {
            println!("self-test {name}: FALSE POSITIVE — {findings:?}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("xtask lint --self-test: all classes detected");
        ExitCode::SUCCESS
    } else {
        println!("xtask lint --self-test: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
