//! A std-only source-analysis lint pass over `crates/**/*.rs`.
//!
//! Rules enforced (see DESIGN.md "Format invariants" / README "Tooling"):
//!
//! 1. **No panicking calls in hot-path modules.** `.unwrap()`, `.expect(`,
//!    `panic!(`, `unreachable!(` and `unimplemented!(` are forbidden outside
//!    `#[cfg(test)]` regions in the modules the query path executes:
//!    `core/src/{cursor,page,store,physical,nok}.rs`, `pager/src/*.rs`,
//!    `btree/src/*.rs`. Corruption must surface as `CoreError`/`PagerError`/
//!    `BTreeError`, never as a crash.
//! 2. **No stray `dbg!` / `todo!`** anywhere, tests included.
//! 3. **Every `unsafe` keyword** must have a `// SAFETY:` comment on the same
//!    line or one of the three lines above it.
//! 4. **No raw page I/O outside the pager.** `.write_page(` and
//!    `.allocate_page(` bypass both the buffer pool's no-steal transaction
//!    tracking and the write-ahead log, so a call anywhere outside
//!    `crates/pager/src/` can silently break crash atomicity. Everything
//!    else must go through `BufferPool` / `TxnHandle`.
//! 5. **No plan-operator construction outside the planner pipeline.**
//!    `PlanStep::` and `SeedChoice::` tokens outside
//!    `core/src/{plan,planner,exec}.rs` would let other layers fabricate
//!    or rewrite plans behind the cost model's back. Everyone else
//!    consumes plans opaquely through `plan_query`/`execute_plan` and
//!    reads outcomes from `QueryStats`/`Explain`, so the scanner forbids
//!    the operator tokens entirely outside the pipeline modules.
//!
//! The scanner is deliberately token-ish, not a full parser: it strips
//! comments, string/char literals and raw strings with a small state
//! machine, tracks `#[cfg(test)]`-gated item bodies by brace depth, and then
//! looks for the forbidden patterns in the remaining code text. A finding on
//! a line whose comment contains `xtask:allow` is suppressed (use sparingly,
//! with justification).

use std::fmt;
use std::path::{Path, PathBuf};

/// Hot-path modules where panicking calls are forbidden (workspace-relative
/// suffix match).
const HOT_PATH_FILES: &[&str] = &[
    "core/src/cursor.rs",
    "core/src/page.rs",
    "core/src/store.rs",
    "core/src/physical.rs",
    "core/src/nok.rs",
];

/// Directories whose every source file is hot-path.
const HOT_PATH_DIRS: &[&str] = &["pager/src/", "btree/src/"];

const PANICKY: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "unimplemented!(",
];

const STRAY: &[&str] = &["dbg!(", "todo!("];

/// Raw [`Storage`] mutations that skip the buffer pool and the write-ahead
/// log. Legal only inside the pager crate itself.
const RAW_PAGE_IO: &[&str] = &[".write_page(", ".allocate_page("];

/// Plan-operator tokens. Legal only inside the planner pipeline
/// (`core/src/{plan,planner,exec}.rs`); everyone else consumes plans
/// opaquely via `plan_query`/`execute_plan`.
const PLAN_OPERATORS: &[&str] = &["PlanStep::", "SeedChoice::"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (as passed to the scanner).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `hot-path-panic`.
    pub rule: &'static str,
    /// The offending pattern.
    pub pattern: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] forbidden `{}`",
            self.file.display(),
            self.line,
            self.rule,
            self.pattern
        )
    }
}

/// Is `path` (workspace-relative) one of the hot-path modules?
pub fn is_hot_path(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    HOT_PATH_FILES.iter().any(|suffix| p.ends_with(suffix))
        || HOT_PATH_DIRS
            .iter()
            .any(|dir| p.contains(dir) && p.ends_with(".rs"))
}

/// Is `path` inside the pager crate, where raw page I/O is implemented?
pub fn is_pager_internal(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("pager/src/")
}

/// Is `path` one of the planner-pipeline modules allowed to construct plan
/// operators?
pub fn is_plan_internal(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    [
        "core/src/plan.rs",
        "core/src/planner.rs",
        "core/src/exec.rs",
    ]
    .iter()
    .any(|suffix| p.ends_with(suffix))
}

/// A source line split into code text (literals/comments blanked) and the
/// concatenated comment text, plus whether it lies in a `#[cfg(test)]` body.
struct ScanLine {
    code: String,
    comment: String,
    in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Strip comments and literals while tracking `#[cfg(test)]` item bodies.
fn scan_lines(source: &str) -> Vec<ScanLine> {
    let mut out: Vec<ScanLine> = Vec::new();
    let mut state = LexState::Normal;
    let mut depth: i64 = 0;
    // Depth at which an open `#[cfg(test)]` body started; body is the region
    // strictly above that depth. Only the outermost gated body is tracked —
    // nested gated items are already inside it.
    let mut test_region_floor: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen; the next `{` at the current item
    // level opens its body (a `;` first means it gated a non-block item).
    let mut pending_test_attr = false;

    for raw_line in source.lines() {
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        let in_test_at_line_start = test_region_floor.is_some();
        let mut chars = raw_line.chars().peekable();

        if state == LexState::LineComment {
            state = LexState::Normal;
        }

        while let Some(c) = chars.next() {
            match state {
                LexState::LineComment => comment.push(c),
                LexState::BlockComment(n) => {
                    if c == '*' && chars.peek() == Some(&'/') {
                        chars.next();
                        if n == 1 {
                            state = LexState::Normal;
                        } else {
                            state = LexState::BlockComment(n - 1);
                        }
                    } else if c == '/' && chars.peek() == Some(&'*') {
                        chars.next();
                        state = LexState::BlockComment(n + 1);
                    } else {
                        comment.push(c);
                    }
                }
                LexState::Str => {
                    if c == '\\' {
                        chars.next();
                    } else if c == '"' {
                        state = LexState::Normal;
                        code.push('"');
                    }
                }
                LexState::RawStr(hashes) => {
                    if c == '"' {
                        // Check for `"###...` with exactly `hashes` hashes.
                        let mut n = 0;
                        while n < hashes && chars.peek() == Some(&'#') {
                            chars.next();
                            n += 1;
                        }
                        if n == hashes {
                            state = LexState::Normal;
                            code.push('"');
                        }
                    }
                }
                LexState::Char => {
                    if c == '\\' {
                        chars.next();
                    } else if c == '\'' {
                        state = LexState::Normal;
                        code.push('\'');
                    }
                }
                LexState::Normal => match c {
                    '/' if chars.peek() == Some(&'/') => {
                        chars.next();
                        state = LexState::LineComment;
                        code.push(' ');
                    }
                    '/' if chars.peek() == Some(&'*') => {
                        chars.next();
                        state = LexState::BlockComment(1);
                        code.push(' ');
                    }
                    '"' => {
                        // Possible raw/byte string prefix already emitted to
                        // `code` as identifier chars (r, b, #) — harmless.
                        state = LexState::Str;
                        code.push('"');
                    }
                    'r' | 'b' if matches!(chars.peek(), Some('"') | Some('#')) => {
                        // Raw (or byte/raw-byte) string start: consume the
                        // optional second prefix char, hashes, and the quote.
                        let mut hashes = 0u32;
                        if chars.peek() == Some(&'#') {
                            while chars.peek() == Some(&'#') {
                                chars.next();
                                hashes += 1;
                            }
                        }
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            state = if hashes == 0 {
                                LexState::Str
                            } else {
                                LexState::RawStr(hashes)
                            };
                            code.push('"');
                        } else {
                            // `r#ident` raw identifier or lone `b`/`r`.
                            code.push(c);
                            for _ in 0..hashes {
                                code.push('#');
                            }
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a backslash or a closing
                        // quote two chars ahead means a literal.
                        let mut look = chars.clone();
                        let first = look.next();
                        let second = look.next();
                        let is_char = matches!(first, Some('\\')) || matches!(second, Some('\''));
                        if is_char {
                            state = LexState::Char;
                        }
                        code.push('\'');
                    }
                    '{' => {
                        if pending_test_attr {
                            pending_test_attr = false;
                            if test_region_floor.is_none() {
                                test_region_floor = Some(depth);
                            }
                        }
                        depth += 1;
                        code.push('{');
                    }
                    '}' => {
                        depth -= 1;
                        if test_region_floor == Some(depth) {
                            test_region_floor = None;
                        }
                        code.push('}');
                    }
                    ';' => {
                        // An attribute gating a non-block item.
                        if pending_test_attr && depth == 0 {
                            pending_test_attr = false;
                        }
                        code.push(';');
                    }
                    _ => code.push(c),
                },
            }
        }

        if code.contains("#[cfg(test)]") || code.contains("#[cfg(any(test") {
            pending_test_attr = true;
        }

        out.push(ScanLine {
            code,
            comment,
            in_test: in_test_at_line_start || test_region_floor.is_some(),
        });
    }
    out
}

/// Scan one file's source text. `path` is used for reporting and for the
/// hot-path classification.
pub fn scan_source(path: &Path, source: &str) -> Vec<Finding> {
    let hot = is_hot_path(path);
    let lines = scan_lines(source);
    let mut findings = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        if line.comment.contains("xtask:allow") {
            continue;
        }
        let lineno = idx + 1;

        for pat in STRAY {
            if line.code.contains(pat) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: "stray-debug-macro",
                    pattern: (*pat).to_string(),
                });
            }
        }

        if hot && !line.in_test {
            for pat in PANICKY {
                if line.code.contains(pat) {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: lineno,
                        rule: "hot-path-panic",
                        pattern: (*pat).to_string(),
                    });
                }
            }
        }

        if !is_pager_internal(path) {
            for pat in RAW_PAGE_IO {
                if line.code.contains(pat) {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: lineno,
                        rule: "raw-page-io",
                        pattern: (*pat).to_string(),
                    });
                }
            }
        }

        if !is_plan_internal(path) {
            for pat in PLAN_OPERATORS {
                if line.code.contains(pat) {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: lineno,
                        rule: "plan-operator-construction",
                        pattern: (*pat).to_string(),
                    });
                }
            }
        }

        if has_word(&line.code, "unsafe") {
            let documented = line.comment.contains("SAFETY:")
                || lines[idx.saturating_sub(3)..idx]
                    .iter()
                    .any(|l| l.comment.contains("SAFETY:"));
            if !documented {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: "undocumented-unsafe",
                    pattern: "unsafe".to_string(),
                });
            }
        }
    }
    findings
}

/// Does `haystack` contain `word` with non-identifier characters around it?
fn has_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = at + word.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Recursively collect `.rs` files under `dir`, skipping `target/`.
pub fn rust_sources(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_source(Path::new(path), src)
    }

    #[test]
    fn catches_unwrap_in_hot_path() {
        let f = scan(
            "crates/core/src/cursor.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-path-panic");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ignores_unwrap_in_cold_module() {
        let f = scan(
            "crates/core/src/naive.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn ignores_unwrap_inside_cfg_test() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!(\"x\"); }
}
";
        let f = scan("crates/pager/src/pool.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn catches_unwrap_after_cfg_test_block_closes() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() {}
}
fn hot(x: Option<u8>) -> u8 { x.unwrap() }
";
        let f = scan("crates/btree/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn string_and_comment_contents_are_ignored() {
        let src = "\
// this comment says .unwrap() and panic!( freely
fn f() -> &'static str { \"panic!(no) .unwrap() dbg!(\" }
";
        let f = scan("crates/pager/src/pool.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_strings_are_ignored() {
        let src = "fn f() -> &'static str { r#\"x.unwrap() \"quoted\" panic!(\"# }\n";
        let f = scan("crates/pager/src/pool.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n";
        let f = scan("crates/core/src/store.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stray_macros_flagged_everywhere_even_in_tests() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { dbg!(1); }
}
fn g() { todo!() }
";
        let f = scan("crates/xml/src/reader.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "stray-debug-macro"));
    }

    #[test]
    fn raw_page_io_flagged_outside_pager() {
        let src = "fn f(s: &mut MemStorage) { s.allocate_page(); s.write_page(0, &[]); }\n";
        let f = scan("crates/core/src/update.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "raw-page-io"));
    }

    #[test]
    fn raw_page_io_allowed_inside_pager() {
        let src = "fn f(s: &mut MemStorage) { s.write_page(0, &[]); }\n";
        let f = scan("crates/pager/src/wal.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn plan_operators_flagged_outside_pipeline() {
        let src = "fn f() -> PlanStep { PlanStep::Collect { frag: 0 } }\n";
        let f = scan("crates/serve/src/service.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "plan-operator-construction");

        let src = "fn f() -> SeedChoice { SeedChoice::Scan }\n";
        let f = scan("crates/core/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn plan_operators_allowed_inside_pipeline() {
        let src = "fn f() -> SeedChoice { SeedChoice::Scan }\n";
        for path in [
            "crates/core/src/plan.rs",
            "crates/core/src/planner.rs",
            "crates/core/src/exec.rs",
        ] {
            let f = scan(path, src);
            assert!(f.is_empty(), "{path}: {f:?}");
        }
    }

    #[test]
    fn undocumented_unsafe_flagged_and_safety_comment_accepted() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let f = scan("crates/core/src/lib.rs", bad);
        assert!(f.iter().any(|x| x.rule == "undocumented-unsafe"));

        let good = "\
// SAFETY: the index was bounds-checked above.
fn f() { unsafe { core::hint::unreachable_unchecked() } }
";
        let f = scan("crates/core/src/lib.rs", good);
        assert!(!f.iter().any(|x| x.rule == "undocumented-unsafe"), "{f:?}");
    }

    #[test]
    fn unsafe_as_substring_not_flagged() {
        let src = "fn f() { let unsafe_count = 0; let _ = unsafe_count; }\n";
        let f = scan("crates/core/src/lib.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn xtask_allow_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // xtask:allow — demo\n";
        let f = scan("crates/core/src/cursor.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn char_literals_do_not_derail_lexer() {
        let src = "\
fn f() -> char { '\"' }
fn g(x: Option<u8>) -> u8 { x.unwrap() }
";
        let f = scan("crates/core/src/page.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "\
fn f<'a>(x: &'a str) -> &'a str { x }
fn g(x: Option<u8>) -> u8 { x.unwrap() }
";
        let f = scan("crates/btree/src/node.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }
}
