//! Copy-on-write page generations (MVCC snapshot reads).
//!
//! This module publishes immutable *generations* of a page set so that
//! readers never block on — and are never torn by — a concurrent writer:
//!
//! * [`EpochArc`] — a lock-free publishable `Arc<T>` cell. Readers *pin* the
//!   current value (two atomic RMWs and an `Arc` clone); a single writer
//!   *swings* the cell to a new value and reclaims the old one once every
//!   in-flight pin has drained. Pins are instantaneous (the clone), so the
//!   writer's drain wait is nanoseconds, never the lifetime of a snapshot.
//! * [`CaptureCell`] — per-pool before-image map for the transaction in
//!   flight: the first write to a page captures its committed bytes
//!   *before* the frame is mutated (publish-before-mutate), so a reader
//!   that raced the write can re-check the cell and pick the captured image.
//! * [`PageChain`] — one node per committed epoch. Commit freezes the
//!   capture map into the retiring node, links the next node, and only then
//!   swings the published generation, so the WAL commit point and the
//!   visibility point coincide. A reader pinned at epoch `E` resolves a page
//!   by walking frozen maps from its own node: the first map containing the
//!   page holds its state-`E` image (the page was untouched in between).
//! * [`GenerationTable`] / [`SnapshotGuard`] — the published generation and
//!   the reader-side pin. Reclamation is by reference count: the guard's
//!   `Arc` keeps the generation (and, through it, the frozen maps of its
//!   chain node) alive; dropping the last guard of a superseded generation
//!   frees its private images. [`GenerationStats`] exposes live/retired
//!   generation counts and the pinned-reader gauge.
//!
//! Single-writer discipline: [`EpochArc::swing`], [`CaptureCell::capture`]
//! and [`CaptureCell::reset`] must only ever be called by one thread at a
//! time (the database's writer mutex enforces this); readers may call
//! [`EpochArc::pin`] and the lookup methods freely from any thread.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::PagerResult;
use crate::pool::BufferPool;
use crate::storage::{PageId, Storage};

/// Low bits of the control word select the active slot.
const SLOT_BITS: u32 = 16;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// One publishing slot: the value plus the number of pins that have finished
/// with it ("debt repaid"). The writer compares repaid debt against the pin
/// count recorded in the control word to know when the slot has drained.
struct Slot<T> {
    value: UnsafeCell<Option<Arc<T>>>,
    debt: AtomicU64,
}

/// A lock-free publishable `Arc<T>` cell (two-slot epoch pointer).
///
/// The control word packs `(pin_count << 16) | active_slot`. `pin` bumps the
/// count and clones out of the active slot; `swing` installs the new value
/// in the inactive slot, swaps the control word (resetting the count), and
/// spins until the old slot's repaid debt equals the pins it handed out.
/// Two slots suffice because the single writer drains before returning.
pub struct EpochArc<T> {
    ctrl: AtomicU64,
    slots: [Slot<T>; 2],
}

// SAFETY: slot values are only written by the single writer while no reader
// can reach them (inactive slot pre-swap; drained slot post-swap); readers
// only clone `Arc`s out of the active slot under the pin protocol.
unsafe impl<T: Send + Sync> Send for EpochArc<T> {}
// SAFETY: see the `Send` justification above — all shared access is
// mediated by the pin/swing protocol on `ctrl` and `debt`.
unsafe impl<T: Send + Sync> Sync for EpochArc<T> {}

impl<T> EpochArc<T> {
    /// A cell initially publishing `value` (slot 0 active, no pins).
    pub fn new(value: Arc<T>) -> Self {
        EpochArc {
            ctrl: AtomicU64::new(0),
            slots: [
                Slot {
                    value: UnsafeCell::new(Some(value)),
                    debt: AtomicU64::new(0),
                },
                Slot {
                    value: UnsafeCell::new(None),
                    debt: AtomicU64::new(0),
                },
            ],
        }
    }

    /// Clone the currently published value. Lock-free: one `fetch_add`, an
    /// `Arc` clone, one `fetch_add`. Returns `None` only if the cell was
    /// drained by a concurrent [`EpochArc::take`] (shutdown).
    pub fn pin(&self) -> Option<Arc<T>> {
        let c = self.ctrl.fetch_add(1 << SLOT_BITS, Ordering::Acquire);
        let s = (c & SLOT_MASK) as usize;
        // SAFETY: the fetch_add above registered this pin in the control
        // word, so the writer's drain loop waits for the debt increment
        // below; the active slot's value is never mutated while pinnable.
        let v = unsafe { (*self.slots[s].value.get()).clone() };
        self.slots[s].debt.fetch_add(1, Ordering::Release);
        v
    }

    /// Publish `new`, returning the retired value. Single writer only.
    /// Spins (nanoseconds — pins are `Arc` clones) until every reader that
    /// pinned the old slot has finished cloning.
    pub fn swing(&self, new: Arc<T>) -> Option<Arc<T>> {
        let ns = (self.ctrl.load(Ordering::Acquire) & SLOT_MASK) ^ 1;
        // SAFETY: slot `ns` is inactive — the previous swing drained it and
        // no reader can select it until the swap below publishes it.
        unsafe {
            *self.slots[ns as usize].value.get() = Some(new);
        }
        let old = self.ctrl.swap(ns, Ordering::AcqRel);
        let pins = old >> SLOT_BITS;
        let os = (old & SLOT_MASK) as usize;
        while self.slots[os].debt.load(Ordering::Acquire) < pins {
            std::hint::spin_loop();
        }
        self.slots[os].debt.store(0, Ordering::Release);
        // SAFETY: every pin of the old slot has repaid its debt, so no
        // reader still holds a reference into it, and new pins only see the
        // slot published by the swap above.
        unsafe { (*self.slots[os].value.get()).take() }
    }
}

/// Before-image map for one transaction: the committed bytes (as of epoch
/// `stamp`) of every page the writer has touched since the last commit.
#[derive(Debug, Default)]
pub struct CowMap {
    /// Epoch whose committed state these images represent.
    pub stamp: u64,
    pages: HashMap<PageId, Arc<[u8]>>,
}

impl CowMap {
    fn with_stamp(stamp: u64) -> Self {
        CowMap {
            stamp,
            pages: HashMap::new(),
        }
    }

    /// Image of `page`, if captured.
    pub fn get(&self, page: PageId) -> Option<Arc<[u8]>> {
        self.pages.get(&page).cloned()
    }

    /// Number of captured pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no page has been captured.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// Per-pool capture cell holding the in-flight transaction's before-images.
///
/// Inactive until the first transaction begins (the initial bulk build must
/// not capture); stays active from then on. The map is *not* cleared on
/// abort: before-images are the committed (post-rollback) state, so they
/// remain valid, and clearing them would tear a reader that raced an
/// aborted write.
pub struct CaptureCell {
    active: AtomicBool,
    map: EpochArc<CowMap>,
}

impl std::fmt::Debug for CaptureCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureCell")
            .field("active", &self.is_active())
            .finish()
    }
}

impl CaptureCell {
    /// A fresh, inactive cell stamped with epoch 0.
    pub fn new() -> Self {
        CaptureCell {
            active: AtomicBool::new(false),
            map: EpochArc::new(Arc::new(CowMap::with_stamp(0))),
        }
    }

    /// Begin capturing (first transaction). Idempotent.
    pub fn activate(&self, epoch: u64) {
        if !self.active.swap(true, Ordering::AcqRel) {
            self.map.swing(Arc::new(CowMap::with_stamp(epoch)));
        }
    }

    /// Is capture in effect?
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Does `page` still need a before-image? (Cheap pre-check so the
    /// write path only copies bytes on the first write per transaction.)
    pub fn needs(&self, page: PageId) -> bool {
        if !self.is_active() {
            return false;
        }
        match self.map.pin() {
            Some(cur) => !cur.pages.contains_key(&page),
            None => false,
        }
    }

    /// Writer only: record `bytes` as the before-image of `page` unless one
    /// is already present. Publishes the new map *before* the caller mutates
    /// the frame, so a racing reader's re-check observes it.
    pub fn capture(&self, page: PageId, bytes: &[u8]) {
        let Some(cur) = self.map.pin() else { return };
        if cur.pages.contains_key(&page) {
            return;
        }
        let mut next = CowMap::with_stamp(cur.stamp);
        next.pages = cur.pages.clone();
        next.pages.insert(page, Arc::from(bytes));
        self.map.swing(Arc::new(next));
    }

    /// Reader: the captured image of `page`, provided the map still
    /// describes state the reader can use (`stamp >= epoch`; a smaller
    /// stamp means the cell is mid-reset after a commit the reader is
    /// already ahead of).
    pub fn lookup(&self, page: PageId, epoch: u64) -> Option<Arc<[u8]>> {
        let cur = self.map.pin()?;
        if cur.stamp >= epoch {
            cur.get(page)
        } else {
            None
        }
    }

    /// The current map (for freezing into a [`PageChain`] node at commit).
    pub fn current(&self) -> Option<Arc<CowMap>> {
        self.map.pin()
    }

    /// Writer only: replace the map with a fresh empty one stamped
    /// `new_stamp` (the epoch just published), returning the retired map.
    pub fn reset(&self, new_stamp: u64) -> Option<Arc<CowMap>> {
        self.map.swing(Arc::new(CowMap::with_stamp(new_stamp)))
    }
}

impl Default for CaptureCell {
    fn default() -> Self {
        CaptureCell::new()
    }
}

/// One epoch in a pool's generation chain. Created with `frozen`/`next`
/// unset; commit freezes the capture map into the retiring head and links
/// the successor. Nodes are kept alive by the generations that reference
/// them, so dropping the last snapshot of an epoch frees its images.
#[derive(Debug, Default)]
pub struct PageChain {
    /// Epoch this node belongs to.
    pub epoch: u64,
    frozen: OnceLock<Arc<CowMap>>,
    next: OnceLock<Arc<PageChain>>,
}

impl PageChain {
    /// A fresh head node for `epoch`.
    pub fn new(epoch: u64) -> Arc<Self> {
        Arc::new(PageChain {
            epoch,
            frozen: OnceLock::new(),
            next: OnceLock::new(),
        })
    }

    /// Commit step for the retiring head: freeze the capture map, link the
    /// next head. Returns the new head. A second freeze of the same node is
    /// a protocol violation; the original links win (OnceLock semantics).
    pub fn freeze(self: &Arc<Self>, images: Arc<CowMap>) -> Arc<PageChain> {
        let _ = self.frozen.set(images);
        let next = PageChain::new(self.epoch + 1);
        let _ = self.next.set(Arc::clone(&next));
        next
    }

    /// Frozen images of the transaction that retired this node, if any.
    pub fn frozen(&self) -> Option<&Arc<CowMap>> {
        self.frozen.get()
    }

    /// Successor node, once linked.
    pub fn next(&self) -> Option<&Arc<PageChain>> {
        self.next.get()
    }
}

/// A reader's view of one pool at one epoch: its chain node plus the pool's
/// live capture cell.
#[derive(Clone)]
pub struct SnapView {
    /// Epoch the reader is pinned at.
    pub epoch: u64,
    /// Chain node for that epoch.
    pub node: Arc<PageChain>,
    /// The pool's capture cell (for in-flight transaction images).
    pub cell: Arc<CaptureCell>,
}

impl SnapView {
    /// Resolve `page` through the overlay: walk frozen maps from the
    /// reader's node (first hit wins — the page was untouched between the
    /// reader's epoch and the capture), then the live capture cell.
    pub fn lookup(&self, page: PageId) -> Option<Arc<[u8]>> {
        let mut node = &self.node;
        loop {
            match node.frozen() {
                Some(map) => {
                    if let Some(img) = map.get(page) {
                        return Some(img);
                    }
                    match node.next() {
                        Some(n) => node = n,
                        // Mid-commit window: the successor is not linked
                        // yet, so the live cell still holds the same map.
                        None => return self.cell.lookup(page, self.epoch),
                    }
                }
                None => return self.cell.lookup(page, self.epoch),
            }
        }
    }
}

/// Fetch the bytes of `page` as of `view`'s epoch: overlay first, then the
/// shared base with a re-check. The re-check is sound because the writer
/// publishes a page's before-image *before* taking the frame's write lock:
/// if our base read raced a first write, the capture is visible by the time
/// we re-check; if it did not, the base bytes are the committed state.
pub fn resolve_page<S: Storage>(
    pool: &BufferPool<S>,
    view: &SnapView,
    page: PageId,
) -> PagerResult<Arc<[u8]>> {
    if let Some(img) = view.lookup(page) {
        return Ok(img);
    }
    let handle = pool.get(page)?;
    let guard = handle.read();
    if let Some(img) = view.lookup(page) {
        return Ok(img);
    }
    Ok(Arc::from(&guard[..]))
}

/// Live/retired generation counts and the pinned-reader gauge.
#[derive(Debug, Default)]
pub struct GenerationStats {
    pinned: AtomicU64,
    live: AtomicU64,
    retired: AtomicU64,
}

impl GenerationStats {
    /// Readers currently holding a [`SnapshotGuard`].
    pub fn pinned_readers(&self) -> u64 {
        self.pinned.load(Ordering::Acquire)
    }

    /// Generations currently alive (published or still pinned).
    pub fn live_generations(&self) -> u64 {
        self.live.load(Ordering::Acquire)
    }

    /// Generations fully reclaimed since open.
    pub fn retired_generations(&self) -> u64 {
        self.retired.load(Ordering::Acquire)
    }
}

/// Keeps the live-generation gauge honest: embed one ticket in each
/// generation value; its drop marks the generation reclaimed.
pub struct GenTicket {
    stats: Arc<GenerationStats>,
}

impl std::fmt::Debug for GenTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GenTicket")
    }
}

impl GenTicket {
    /// A ticket counted against `stats` (live until dropped). Use with
    /// [`GenerationTable::with_stats`] so *every* generation — including
    /// the initial one — carries its own ticket and the gauges stay exact.
    pub fn new(stats: &Arc<GenerationStats>) -> Self {
        stats.live.fetch_add(1, Ordering::AcqRel);
        GenTicket {
            stats: Arc::clone(stats),
        }
    }
}

impl Drop for GenTicket {
    fn drop(&mut self) {
        self.stats.live.fetch_sub(1, Ordering::AcqRel);
        self.stats.retired.fetch_add(1, Ordering::AcqRel);
    }
}

/// The published generation: an [`EpochArc`] plus reclamation stats.
pub struct GenerationTable<T> {
    cell: EpochArc<T>,
    stats: Arc<GenerationStats>,
}

impl<T> GenerationTable<T> {
    /// A table initially publishing `initial` (generation 0).
    pub fn new(initial: Arc<T>) -> Self {
        let stats = Arc::new(GenerationStats::default());
        stats.live.fetch_add(1, Ordering::AcqRel);
        GenerationTable {
            cell: EpochArc::new(initial),
            stats,
        }
    }

    /// A table over a caller-provided stats block whose initial generation
    /// already carries a [`GenTicket::new`] ticket (exact gauge accounting,
    /// unlike [`GenerationTable::new`]'s implicit initial count).
    pub fn with_stats(stats: Arc<GenerationStats>, initial: Arc<T>) -> Self {
        GenerationTable {
            cell: EpochArc::new(initial),
            stats,
        }
    }

    /// A ticket to embed in the *next* generation value (counts it live
    /// until dropped). The initial generation's ticket is implicit.
    pub fn ticket(&self) -> GenTicket {
        GenTicket::new(&self.stats)
    }

    /// Pin the current generation. The guard's `Arc` keeps the generation
    /// (and its chain node's images) alive; dropping it releases the pin.
    pub fn pin(&self) -> Option<SnapshotGuard<T>> {
        let value = self.cell.pin()?;
        self.stats.pinned.fetch_add(1, Ordering::AcqRel);
        Some(SnapshotGuard {
            value,
            stats: Arc::clone(&self.stats),
        })
    }

    /// Writer only: publish `next` (the visibility point — call it right
    /// after the WAL fsync). Returns the superseded generation.
    pub fn publish(&self, next: Arc<T>) -> Option<Arc<T>> {
        self.cell.swing(next)
    }

    /// Reclamation stats.
    pub fn stats(&self) -> &Arc<GenerationStats> {
        &self.stats
    }
}

impl<T> std::fmt::Debug for GenerationTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationTable")
            .field("pinned", &self.stats.pinned_readers())
            .field("live", &self.stats.live_generations())
            .finish()
    }
}

/// A pinned generation. Deref gives the generation value; dropping the
/// guard decrements the pinned-reader gauge (the `Arc` inside handles
/// actual reclamation).
pub struct SnapshotGuard<T> {
    value: Arc<T>,
    stats: Arc<GenerationStats>,
}

impl<T> SnapshotGuard<T> {
    /// The pinned generation value.
    pub fn value(&self) -> &Arc<T> {
        &self.value
    }
}

impl<T> std::ops::Deref for SnapshotGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> Drop for SnapshotGuard<T> {
    fn drop(&mut self) {
        self.stats.pinned.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn epoch_arc_pin_and_swing_round_trip() {
        let cell = EpochArc::new(Arc::new(1u32));
        assert_eq!(*cell.pin().unwrap(), 1);
        let old = cell.swing(Arc::new(2)).unwrap();
        assert_eq!(*old, 1);
        assert_eq!(*cell.pin().unwrap(), 2);
        let old = cell.swing(Arc::new(3)).unwrap();
        assert_eq!(*old, 2);
        assert_eq!(*cell.pin().unwrap(), 3);
    }

    #[test]
    fn epoch_arc_retired_value_freed_when_unpinned() {
        struct Count<'a>(&'a AtomicUsize);
        impl Drop for Count<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = AtomicUsize::new(0);
        let cell = EpochArc::new(Arc::new(Count(&drops)));
        let pinned = cell.pin().unwrap();
        let retired = cell.swing(Arc::new(Count(&drops))).unwrap();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(retired);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "pin keeps value alive");
        drop(pinned);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn epoch_arc_concurrent_pins_see_whole_values() {
        // Publish pairs (n, n) and assert no reader ever observes a torn
        // pair while the writer swings continuously.
        let cell = Arc::new(EpochArc::new(Arc::new((0u64, 0u64))));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for n in 1..=1000u64 {
                    cell.swing(Arc::new((n, n)));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..2000 {
                        let v = cell.pin().unwrap();
                        assert_eq!(v.0, v.1, "torn value observed");
                        assert!(v.0 >= last, "epoch went backwards");
                        last = v.0;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn capture_cell_inactive_until_activated() {
        let cell = CaptureCell::new();
        cell.capture(7, &[1, 2, 3]);
        // Capture before activation still records (gating is the caller's
        // job via is_active); lookup honors the stamp.
        assert!(!cell.is_active());
        cell.activate(5);
        assert!(cell.is_active());
        assert!(cell.lookup(7, 5).is_none(), "activation reset the map");
    }

    #[test]
    fn capture_cell_first_image_wins() {
        let cell = CaptureCell::new();
        cell.activate(3);
        cell.capture(9, &[1, 1]);
        cell.capture(9, &[2, 2]);
        assert_eq!(&cell.lookup(9, 3).unwrap()[..], &[1, 1]);
        // A reader ahead of the stamp must not use the image.
        assert!(cell.lookup(9, 4).is_none());
        let old = cell.reset(4).unwrap();
        assert_eq!(old.len(), 1);
        assert!(cell.lookup(9, 4).is_none());
    }

    #[test]
    fn chain_walk_finds_first_capture_at_or_after_epoch() {
        let cell = Arc::new(CaptureCell::new());
        cell.activate(0);
        let node0 = PageChain::new(0);
        // Txn 0 -> 1 modified page 5 (state-0 image [0u8; 2]).
        cell.capture(5, &[0, 0]);
        let node1 = node0.freeze(cell.current().unwrap());
        cell.reset(1);
        // Txn 1 -> 2 modified page 6.
        cell.capture(6, &[1, 1]);
        let _node2 = node1.freeze(cell.current().unwrap());
        cell.reset(2);

        let at0 = SnapView {
            epoch: 0,
            node: Arc::clone(&node0),
            cell: Arc::clone(&cell),
        };
        assert_eq!(&at0.lookup(5).unwrap()[..], &[0, 0], "state-0 image");
        assert_eq!(&at0.lookup(6).unwrap()[..], &[1, 1], "unchanged 0->1");
        let at1 = SnapView {
            epoch: 1,
            node: Arc::clone(&node1),
            cell: Arc::clone(&cell),
        };
        assert!(at1.lookup(5).is_none(), "page 5 already at state 1 in base");
        assert_eq!(&at1.lookup(6).unwrap()[..], &[1, 1]);
    }

    #[test]
    fn resolve_page_falls_back_to_base() {
        let pool = BufferPool::new(MemStorage::with_page_size(64));
        let (id, h) = pool.allocate().unwrap();
        h.write()[0] = 42;
        drop(h);
        let cell = Arc::new(CaptureCell::new());
        cell.activate(0);
        let view = SnapView {
            epoch: 0,
            node: PageChain::new(0),
            cell: Arc::clone(&cell),
        };
        let bytes = resolve_page(&pool, &view, id).unwrap();
        assert_eq!(bytes[0], 42);
        // A capture supersedes the base.
        cell.capture(id, &[7; 64]);
        let bytes = resolve_page(&pool, &view, id).unwrap();
        assert_eq!(bytes[0], 7);
    }

    #[test]
    fn generation_table_stats_track_pins_and_reclaim() {
        struct Gen {
            n: u64,
            _ticket: Option<GenTicket>,
        }
        let table = GenerationTable::new(Arc::new(Gen {
            n: 0,
            _ticket: None,
        }));
        assert_eq!(table.stats().live_generations(), 1);
        let g0 = table.pin().unwrap();
        assert_eq!(table.stats().pinned_readers(), 1);
        assert_eq!(g0.n, 0);
        let retired = table
            .publish(Arc::new(Gen {
                n: 1,
                _ticket: Some(table.ticket()),
            }))
            .unwrap();
        assert_eq!(table.stats().live_generations(), 2);
        assert_eq!(retired.n, 0);
        drop(retired);
        // g0 still holds generation 0 alive.
        assert_eq!(table.stats().retired_generations(), 0);
        assert_eq!(g0.n, 0);
        drop(g0);
        assert_eq!(table.stats().pinned_readers(), 0);
        // Generation 0 carried no ticket (the initial one is implicit in
        // `new`), so reclaim accounting moves when generation 1 retires.
        let _ = table.publish(Arc::new(Gen {
            n: 2,
            _ticket: Some(table.ticket()),
        }));
        assert_eq!(table.stats().live_generations(), 3 - 1);
    }
}
