//! I/O statistics counters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters kept by a [`crate::BufferPool`].
///
/// `logical_gets` counts every page request; `physical_reads` counts only
/// those that missed the pool and hit the storage. Proposition 1 of the paper
/// is verified by asserting `physical_reads ≤ pages_in_store` for a whole
/// query (each page read at most once).
///
/// Counters are atomic (relaxed — they are statistics, not synchronization),
/// so one stats block can be shared by every query thread of a pool.
#[derive(Debug, Default)]
pub struct IoStats {
    logical_gets: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    evictions: AtomicU64,
    entries_examined: AtomicU64,
    dir_entries_examined: AtomicU64,
}

impl IoStats {
    /// Total page requests served (hits + misses).
    pub fn logical_gets(&self) -> u64 {
        self.logical_gets.load(Ordering::Relaxed)
    }

    /// String entries examined by navigation primitives (per-entry loop
    /// iterations inside loaded pages). The pager doesn't increment this
    /// itself; the navigation layer above batches its counts in via
    /// [`IoStats::add_entries_examined`] so entry work and page I/O land in
    /// one stats block.
    pub fn entries_examined(&self) -> u64 {
        self.entries_examined.load(Ordering::Relaxed)
    }

    /// Directory probes by navigation primitives (header records consulted,
    /// or skip-index bucket probes). Incremented by the navigation layer via
    /// [`IoStats::add_dir_entries_examined`].
    pub fn dir_entries_examined(&self) -> u64 {
        self.dir_entries_examined.load(Ordering::Relaxed)
    }

    /// Batch-add to the entries-examined counter (one atomic op per call).
    pub fn add_entries_examined(&self, n: u64) {
        if n > 0 {
            self.entries_examined.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Batch-add to the directory-probes counter (one atomic op per call).
    pub fn add_dir_entries_examined(&self, n: u64) {
        if n > 0 {
            self.dir_entries_examined.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Batch-add to the logical-gets counter (one atomic op per call).
    ///
    /// Used by first-tier caches above the pool ([`crate::local_cache`])
    /// that satisfy page requests without touching the pool: their hits are
    /// still logical page requests, drained in here in batches so the hot
    /// path never bounces a shared counter per access.
    pub fn add_logical_gets(&self, n: u64) {
        if n > 0 {
            self.logical_gets.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Pages actually read from the storage.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Pages written back to the storage.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes.load(Ordering::Relaxed)
    }

    /// Frames evicted from the pool.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let gets = self.logical_gets();
        if gets == 0 {
            return 1.0;
        }
        1.0 - self.physical_reads() as f64 / gets as f64
    }

    /// Zero every counter (used between measured queries).
    pub fn reset(&self) {
        self.logical_gets.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.entries_examined.store(0, Ordering::Relaxed);
        self.dir_entries_examined.store(0, Ordering::Relaxed);
    }

    pub(crate) fn count_get(&self) {
        self.logical_gets.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gets={} reads={} writes={} evictions={} hit={:.3} entries={} dir_entries={}",
            self.logical_gets(),
            self.physical_reads(),
            self.physical_writes(),
            self.evictions(),
            self.hit_ratio(),
            self.entries_examined(),
            self.dir_entries_examined()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::default();
        s.count_get();
        s.count_get();
        s.count_read();
        s.count_write();
        s.count_eviction();
        s.add_entries_examined(10);
        s.add_entries_examined(0); // no-op, must not touch the counter
        s.add_dir_entries_examined(4);
        assert_eq!(s.logical_gets(), 2);
        assert_eq!(s.physical_reads(), 1);
        assert_eq!(s.physical_writes(), 1);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.entries_examined(), 10);
        assert_eq!(s.dir_entries_examined(), 4);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
        assert!(s.to_string().contains("entries=10"));
        s.reset();
        assert_eq!(s.logical_gets(), 0);
        assert_eq!(s.entries_examined(), 0);
        assert_eq!(s.dir_entries_examined(), 0);
        assert_eq!(s.hit_ratio(), 1.0);
    }
}
