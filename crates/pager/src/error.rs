//! Errors produced by the paged-storage layer.

use std::fmt;
use std::io;

use crate::storage::PageId;

/// Result alias for pager operations.
pub type PagerResult<T> = Result<T, PagerError>;

/// Errors produced by storages and buffer pools.
#[derive(Debug)]
pub enum PagerError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page id beyond the end of the storage was requested.
    PageOutOfRange {
        /// Requested page.
        page: PageId,
        /// Number of pages in the storage.
        count: u32,
    },
    /// The storage file's header did not match the expected magic/page size.
    Corrupt(String),
    /// The storage file's length disagrees with its persisted page count —
    /// the file was torn by a crash (or truncated by something else).
    SizeMismatch {
        /// Page count the superblock claims.
        pages: u32,
        /// Page size the superblock claims.
        page_size: usize,
        /// Actual byte length of the file.
        file_len: u64,
    },
    /// Every frame in the buffer pool is pinned: nothing can be evicted to
    /// make room for the requested page.
    PoolExhausted {
        /// Configured frame capacity of the pool.
        capacity: usize,
    },
}

impl fmt::Display for PagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagerError::Io(e) => write!(f, "I/O error: {e}"),
            PagerError::PageOutOfRange { page, count } => {
                write!(f, "page {page} out of range (storage has {count} pages)")
            }
            PagerError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            PagerError::SizeMismatch {
                pages,
                page_size,
                file_len,
            } => write!(
                f,
                "storage file is {file_len} bytes but its header declares \
                 {pages} pages of {page_size} bytes (torn by a crash?)"
            ),
            PagerError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
        }
    }
}

impl std::error::Error for PagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PagerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PagerError {
    fn from(e: io::Error) -> Self {
        PagerError::Io(e)
    }
}
