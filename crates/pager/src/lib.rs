//! # nok-pager
//!
//! The paged-I/O substrate beneath the NoK storage scheme, the B+ trees and
//! the baseline engines. It provides:
//!
//! * a [`Storage`] trait with file-backed ([`FileStorage`]) and in-memory
//!   ([`MemStorage`]) implementations,
//! * a [`BufferPool`] with LRU eviction, pin counting (via handle reference
//!   counts) and dirty-page write-back,
//! * [`IoStats`] counters distinguishing *logical* page requests from
//!   *physical* storage reads — exactly the quantity Proposition 1 of the
//!   paper bounds ("the physical level NoK pattern matching algorithm reads
//!   every page at most once").
//!
//! The pool is thread-safe: frames live in sharded `RwLock` maps, the
//! storage sits behind a `Mutex`, and stats are atomic, so one pool can be
//! shared across query threads behind an `Arc`. The capacity is a hard
//! budget — when every frame is pinned, a miss fails with
//! [`PagerError::PoolExhausted`] rather than growing the pool.

pub mod error;
pub mod failpoint;
pub mod local_cache;
pub mod mvcc;
pub mod pool;
pub mod stats;
pub mod storage;
pub mod wal;

pub use error::{PagerError, PagerResult};
pub use failpoint::{FailPlan, FailpointStorage};
pub use local_cache::{clear_thread_tier, resolve_page_cached};
pub use mvcc::{
    CaptureCell, CowMap, EpochArc, GenTicket, GenerationStats, GenerationTable, PageChain,
    SnapView, SnapshotGuard,
};
pub use pool::{BufferPool, PageHandle, PageRead, PageWrite, TxnHandle};
pub use stats::IoStats;
pub use storage::{FileStorage, MemStorage, PageId, Storage, DEFAULT_PAGE_SIZE};
pub use wal::{ReplayOutcome, Wal, WalRecord};

/// Little-endian integer read/write helpers over page byte slices.
///
/// All on-page formats in the workspace go through these so the byte order is
/// uniform.
pub mod codec {
    /// Read a `u16` at `off`.
    #[inline]
    pub fn get_u16(buf: &[u8], off: usize) -> u16 {
        u16::from_le_bytes([buf[off], buf[off + 1]])
    }

    /// Write a `u16` at `off`.
    #[inline]
    pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
        buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` at `off`.
    #[inline]
    pub fn get_u32(buf: &[u8], off: usize) -> u32 {
        u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
    }

    /// Write a `u32` at `off`.
    #[inline]
    pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u64` at `off`.
    #[inline]
    pub fn get_u64(buf: &[u8], off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Write a `u64` at `off`.
    #[inline]
    pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_all_widths() {
            let mut buf = [0u8; 16];
            put_u16(&mut buf, 0, 0xBEEF);
            put_u32(&mut buf, 2, 0xDEAD_BEEF);
            put_u64(&mut buf, 6, 0x0123_4567_89AB_CDEF);
            assert_eq!(get_u16(&buf, 0), 0xBEEF);
            assert_eq!(get_u32(&buf, 2), 0xDEAD_BEEF);
            assert_eq!(get_u64(&buf, 6), 0x0123_4567_89AB_CDEF);
        }
    }
}
