//! The buffer pool.
//!
//! Frames are reference-counted: a [`PageHandle`] keeps its frame pinned, and
//! a frame is evictable exactly when no handle to it is alive. LRU order is
//! maintained with a monotone clock stamp per frame (simple and adequate for
//! pool sizes in the thousands).
//!
//! **Concurrency model.** The pool is fully thread-safe: the frame table is
//! sharded across [`SHARD_COUNT`] `RwLock`-protected maps (hits take one
//! shard read lock and touch only atomics), the storage sits behind a
//! `Mutex`, and [`IoStats`] counters are atomic. Misses and evictions
//! serialize per shard: a miss holds its shard's write lock across the
//! check-read-install sequence, and an eviction holds the victim's shard
//! write lock across the remove-writeback sequence, so a page can never be
//! re-read from storage while its dirty frame is mid-writeback. At most one
//! shard lock is held at a time (the storage mutex nests strictly inside),
//! which rules out lock-order deadlocks.
//!
//! **Capacity.** `max_frames` is enforced at miss time: installing a frame
//! into a full pool first evicts the least-recently-used *unpinned* frame
//! (flushing it if dirty). If every frame is pinned the pool does not grow;
//! the miss fails with [`crate::PagerError::PoolExhausted`]. Concurrent
//! misses may transiently overshoot the cap by at most the number of racing
//! threads; each subsequent install shrinks the pool back below `max_frames`.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{PagerError, PagerResult};
use crate::mvcc::CaptureCell;
use crate::stats::IoStats;
use crate::storage::{PageId, Storage};

/// Number of independently locked frame-map shards. A small power of two:
/// enough to keep eight query threads from colliding on one lock, cheap
/// enough to scan exhaustively during eviction.
const SHARD_COUNT: usize = 16;

#[inline]
fn shard_of(id: PageId) -> usize {
    // Fibonacci hashing spreads sequential page ids across shards.
    (id.wrapping_mul(0x9E37_79B9) >> 16) as usize % SHARD_COUNT
}

#[derive(Debug)]
struct Frame {
    data: Arc<RwLock<Box<[u8]>>>,
    dirty: Arc<AtomicBool>,
    last_used: AtomicU64,
}

impl Frame {
    /// A frame is pinned while any [`PageHandle`] to it is alive; the map's
    /// own `Arc` is the only other holder.
    fn is_pinned(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }
}

type Shard = HashMap<PageId, Frame>;

/// A pinned page. Holding the handle keeps the page in the pool; dropping it
/// makes the frame evictable again. Obtain the bytes with [`PageHandle::read`]
/// or [`PageHandle::write`] (the latter marks the page dirty).
#[derive(Clone)]
pub struct PageHandle {
    id: PageId,
    data: Arc<RwLock<Box<[u8]>>>,
    dirty: Arc<AtomicBool>,
    /// The owning pool's capture cell: the first write to this page inside
    /// a transaction publishes its before-image for snapshot readers
    /// *before* mutating the frame. `None` only for cache-less handles.
    capture: Option<Arc<CaptureCell>>,
}

impl std::fmt::Debug for PageHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageHandle").field("id", &self.id).finish()
    }
}

/// Shared read access to a page's bytes (an RAII guard).
pub struct PageRead<'a>(RwLockReadGuard<'a, Box<[u8]>>);

impl Deref for PageRead<'_> {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Exclusive write access to a page's bytes (an RAII guard).
pub struct PageWrite<'a>(RwLockWriteGuard<'a, Box<[u8]>>);

impl Deref for PageWrite<'_> {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for PageWrite<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Recover the guard from a poisoned lock: the page bytes are plain data
/// whose invariants are re-checked on decode, so a panic in another thread
/// (only possible in tests — the query path is panic-free) must not cascade.
#[inline]
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

#[inline]
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

#[inline]
fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl PageHandle {
    /// Page id this handle refers to.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Immutable view of the page bytes. Concurrent readers do not block
    /// each other; a writer in another thread blocks until they finish.
    pub fn read(&self) -> PageRead<'_> {
        PageRead(read_lock(&self.data))
    }

    /// Mutable view of the page bytes; marks the page dirty. If the pool's
    /// capture cell is active and this is the page's first write in the
    /// transaction, its before-image is published *before* the write lock
    /// is taken, so snapshot readers re-checking the cell never observe
    /// mid-transaction bytes.
    pub fn write(&self) -> PageWrite<'_> {
        if let Some(cell) = &self.capture {
            if cell.needs(self.id) {
                cell.capture(self.id, &read_lock(&self.data));
            }
        }
        self.dirty.store(true, Ordering::Release);
        PageWrite(write_lock(&self.data))
    }
}

/// An LRU buffer pool over a [`Storage`].
///
/// All methods take `&self`; the pool is `Sync` whenever the storage is
/// `Send`, so one pool can be shared across query threads behind an `Arc`.
#[derive(Debug)]
pub struct BufferPool<S: Storage> {
    storage: Mutex<S>,
    shards: Vec<RwLock<Shard>>,
    /// Total frames across all shards (may transiently exceed `capacity`
    /// while concurrent misses race; see module docs).
    frames: AtomicUsize,
    /// Monotone LRU clock.
    clock: AtomicU64,
    capacity: usize,
    page_size: usize,
    stats: IoStats,
    /// While a [`TxnHandle`] is open, dirty frames must not be written back
    /// (no-steal): rollback discards them, and the write-ahead log has not
    /// seen them yet. Eviction skips dirty frames while this is set.
    txn_active: AtomicBool,
    /// Process-unique pool identity (monotone, never reused), so caches
    /// outside the pool — e.g. the per-worker first tier in
    /// [`crate::local_cache`] — can key entries by pool without holding an
    /// `Arc` back to it.
    instance: u64,
    /// Before-image capture for MVCC snapshot readers (see [`crate::mvcc`]).
    capture: Arc<CaptureCell>,
}

impl<S: Storage> BufferPool<S> {
    /// Default number of frames. The paper's premise is that page *headers*
    /// fit in memory but page *contents* do not; a modest pool models that.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Create a pool with the default capacity.
    pub fn new(storage: S) -> Self {
        Self::with_capacity(storage, Self::DEFAULT_CAPACITY)
    }

    /// Create a pool holding at most `capacity` frames. A capacity of 0
    /// disables caching entirely (every get is a physical read) — used by
    /// tests that want raw I/O counts.
    pub fn with_capacity(storage: S, capacity: usize) -> Self {
        // Relaxed: the counter only needs uniqueness, not ordering.
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);
        let page_size = storage.page_size();
        BufferPool {
            storage: Mutex::new(storage),
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::new()))
                .collect(),
            frames: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            capacity,
            page_size,
            stats: IoStats::default(),
            txn_active: AtomicBool::new(false),
            capture: Arc::new(CaptureCell::new()),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Process-unique identity of this pool instance (never reused, never
    /// zero). External caches key on it instead of on an address.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// This pool's before-image capture cell (inactive until a transaction
    /// layer activates it).
    pub fn capture_cell(&self) -> &Arc<CaptureCell> {
        &self.capture
    }

    /// Page size of the underlying storage.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages in the underlying storage.
    pub fn page_count(&self) -> u32 {
        mutex_lock(&self.storage).page_count()
    }

    /// Maximum number of cached frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// I/O statistics (shared counters; reset with `stats().reset()`).
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.frames.load(Ordering::Acquire)
    }

    #[inline]
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Fetch page `id`, reading it from storage on a miss.
    pub fn get(&self, id: PageId) -> PagerResult<PageHandle> {
        self.stats.count_get();
        if self.capacity == 0 {
            // Cache-less mode: always a physical read, never retained.
            let mut buf = vec![0u8; self.page_size].into_boxed_slice();
            mutex_lock(&self.storage).read_page(id, &mut buf)?;
            self.stats.count_read();
            return Ok(PageHandle {
                id,
                data: Arc::new(RwLock::new(buf)),
                dirty: Arc::new(AtomicBool::new(false)),
                capture: None,
            });
        }
        // Fast path: shard read lock, atomics only.
        {
            let shard = read_lock(&self.shards[shard_of(id)]);
            if let Some(frame) = shard.get(&id) {
                frame.last_used.store(self.tick(), Ordering::Relaxed);
                return Ok(PageHandle {
                    id,
                    data: Arc::clone(&frame.data),
                    dirty: Arc::clone(&frame.dirty),
                    capture: Some(Arc::clone(&self.capture)),
                });
            }
        }
        // Miss: make room first (never holding two shard locks at once),
        // then re-check and read under the target shard's write lock so a
        // concurrent eviction of the same page cannot interleave its
        // write-back with our read.
        self.make_room()?;
        let handle = {
            let mut shard = write_lock(&self.shards[shard_of(id)]);
            if let Some(frame) = shard.get(&id) {
                // Another thread installed it while we waited.
                frame.last_used.store(self.tick(), Ordering::Relaxed);
                PageHandle {
                    id,
                    data: Arc::clone(&frame.data),
                    dirty: Arc::clone(&frame.dirty),
                    capture: Some(Arc::clone(&self.capture)),
                }
            } else {
                let mut buf = vec![0u8; self.page_size].into_boxed_slice();
                mutex_lock(&self.storage).read_page(id, &mut buf)?;
                self.stats.count_read();
                self.install_into(&mut shard, id, buf, false)
            }
        };
        self.shrink_overshoot();
        Ok(handle)
    }

    /// Allocate a fresh zeroed page and return a pinned handle to it.
    pub fn allocate(&self) -> PagerResult<(PageId, PageHandle)> {
        // Make room before touching the storage, so a PoolExhausted failure
        // does not leak a half-allocated page.
        if self.capacity > 0 {
            self.make_room()?;
        }
        let id = mutex_lock(&self.storage).allocate_page()?;
        let buf = vec![0u8; self.page_size].into_boxed_slice();
        if self.capacity == 0 {
            // Cache-less mode: hand out the frame without retaining it. The
            // handle itself still works; the page is simply re-read next
            // time. Dirty data would be lost, so cache-less pools are
            // read-only in practice (only tests use them).
            return Ok((
                id,
                PageHandle {
                    id,
                    data: Arc::new(RwLock::new(buf)),
                    dirty: Arc::new(AtomicBool::new(true)),
                    capture: None,
                },
            ));
        }
        let handle = {
            let mut shard = write_lock(&self.shards[shard_of(id)]);
            self.install_into(&mut shard, id, buf, true)
        };
        self.shrink_overshoot();
        Ok((id, handle))
    }

    /// Insert a frame into an already write-locked shard.
    fn install_into(
        &self,
        shard: &mut Shard,
        id: PageId,
        buf: Box<[u8]>,
        dirty: bool,
    ) -> PageHandle {
        let data = Arc::new(RwLock::new(buf));
        let dirty = Arc::new(AtomicBool::new(dirty));
        shard.insert(
            id,
            Frame {
                data: Arc::clone(&data),
                dirty: Arc::clone(&dirty),
                last_used: AtomicU64::new(self.tick()),
            },
        );
        self.frames.fetch_add(1, Ordering::AcqRel);
        PageHandle {
            id,
            data,
            dirty,
            capture: Some(Arc::clone(&self.capture)),
        }
    }

    /// Evict LRU unpinned frames until there is room for one more. Pinned
    /// frames (live handles) are never evicted; when every frame is pinned
    /// the miss fails with [`PagerError::PoolExhausted`] instead of growing
    /// the pool past its budget.
    fn make_room(&self) -> PagerResult<()> {
        while self.frames.load(Ordering::Acquire) >= self.capacity {
            if !self.evict_one()? {
                return Err(PagerError::PoolExhausted {
                    capacity: self.capacity,
                });
            }
        }
        Ok(())
    }

    /// Best-effort correction after a racing overshoot: evict (without
    /// failing) until the pool is back within capacity.
    fn shrink_overshoot(&self) {
        while self.frames.load(Ordering::Acquire) > self.capacity {
            match self.evict_one() {
                Ok(true) => continue,
                // Nothing evictable or a write-back error: leave the
                // overshoot for the next miss to repair.
                Ok(false) | Err(_) => break,
            }
        }
    }

    /// Evict the least-recently-used unpinned frame, if any. Returns whether
    /// a frame was evicted.
    fn evict_one(&self) -> PagerResult<bool> {
        let no_steal = self.txn_active.load(Ordering::Acquire);
        // Scan for the global LRU victim (read locks only).
        let victim: Option<(PageId, u64)> = {
            let mut best: Option<(PageId, u64)> = None;
            for shard in &self.shards {
                let shard = read_lock(shard);
                for (&id, frame) in shard.iter() {
                    if frame.is_pinned() || (no_steal && frame.dirty.load(Ordering::Acquire)) {
                        continue;
                    }
                    let stamp = frame.last_used.load(Ordering::Relaxed);
                    if best.is_none_or(|(_, b)| stamp < b) {
                        best = Some((id, stamp));
                    }
                }
            }
            best
        };
        let Some((id, _)) = victim else {
            return Ok(false);
        };
        // Remove under the shard's write lock, re-checking the pin: a get()
        // may have cloned the frame between our scan and this lock. Holding
        // the write lock across the dirty write-back keeps any concurrent
        // miss on the same page ordered after it.
        let mut shard = write_lock(&self.shards[shard_of(id)]);
        let still_evictable = shard
            .get(&id)
            .is_some_and(|f| !f.is_pinned() && !(no_steal && f.dirty.load(Ordering::Acquire)));
        if !still_evictable {
            return Ok(true); // someone pinned or evicted it; count as progress
        }
        let Some(frame) = shard.remove(&id) else {
            return Ok(true);
        };
        self.frames.fetch_sub(1, Ordering::AcqRel);
        if frame.dirty.load(Ordering::Acquire) {
            let result = mutex_lock(&self.storage).write_page(id, &read_lock(&frame.data));
            if let Err(e) = result {
                // Reinstall rather than lose the dirty frame.
                self.frames.fetch_add(1, Ordering::AcqRel);
                shard.insert(id, frame);
                return Err(e);
            }
            self.stats.count_write();
        }
        self.stats.count_eviction();
        Ok(true)
    }

    /// Write every dirty frame back to storage and sync it.
    pub fn flush(&self) -> PagerResult<()> {
        for shard in &self.shards {
            let shard = read_lock(shard);
            for (&id, frame) in shard.iter() {
                // swap() so a racing write that re-dirties the page after
                // our write-back is not silently marked clean.
                if frame.dirty.swap(false, Ordering::AcqRel) {
                    let result = mutex_lock(&self.storage).write_page(id, &read_lock(&frame.data));
                    if let Err(e) = result {
                        frame.dirty.store(true, Ordering::Release);
                        return Err(e);
                    }
                    self.stats.count_write();
                }
            }
        }
        mutex_lock(&self.storage).sync()?;
        Ok(())
    }

    /// Drop every *unpinned* cached frame (flushing dirty ones), so following
    /// reads are physical. Used between measured queries to cold-start the
    /// cache.
    pub fn clear_cache(&self) -> PagerResult<()> {
        self.flush()?;
        for shard in &self.shards {
            let mut shard = write_lock(shard);
            let before = shard.len();
            shard.retain(|_, f| f.is_pinned());
            self.frames
                .fetch_sub(before - shard.len(), Ordering::AcqRel);
        }
        Ok(())
    }

    /// Consume the pool, flushing and returning the storage.
    pub fn into_storage(self) -> PagerResult<S> {
        self.flush()?;
        Ok(self.storage.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    /// Is any frame dirty?
    fn has_dirty(&self) -> bool {
        self.shards.iter().any(|s| {
            read_lock(s)
                .values()
                .any(|f| f.dirty.load(Ordering::Acquire))
        })
    }

    /// Snapshot every dirty frame as `(page id, bytes)`, sorted by id. The
    /// caller must ensure no concurrent writers (updates hold `&mut` on the
    /// owning database).
    pub fn dirty_images(&self) -> Vec<(PageId, Vec<u8>)> {
        let mut images = Vec::new();
        for shard in &self.shards {
            let shard = read_lock(shard);
            for (&id, frame) in shard.iter() {
                if frame.dirty.load(Ordering::Acquire) {
                    images.push((id, read_lock(&frame.data).to_vec()));
                }
            }
        }
        images.sort_by_key(|(id, _)| *id);
        images
    }

    /// Drop every dirty frame without writing it back (rollback).
    fn discard_dirty(&self) {
        for shard in &self.shards {
            let mut shard = write_lock(shard);
            let before = shard.len();
            shard.retain(|_, f| !f.dirty.load(Ordering::Acquire));
            self.frames
                .fetch_sub(before - shard.len(), Ordering::AcqRel);
        }
    }

    /// Begin a transaction: flush any pre-existing dirty frames (rollback
    /// must only discard *this* transaction's work), then switch the pool to
    /// no-steal mode.
    pub fn begin_txn(self: &Arc<Self>) -> PagerResult<TxnHandle<S>> {
        if self.has_dirty() {
            self.flush()?;
        }
        self.txn_active.store(true, Ordering::Release);
        Ok(TxnHandle {
            start_pages: self.page_count(),
            pool: Arc::clone(self),
            done: false,
        })
    }
}

/// One pool's share of a multi-pool transaction (see `nok-core`'s update
/// path): created by [`BufferPool::begin_txn`], ended by exactly one of
/// [`TxnHandle::commit`], [`TxnHandle::abort`] or [`TxnHandle::detach`].
/// Dropping an unfinished handle aborts best-effort.
///
/// While the handle lives, the pool is in no-steal mode: dirty frames stay
/// in memory, so [`TxnHandle::dirty_images`] is exactly the transaction's
/// write set and [`TxnHandle::abort`] can undo it by discarding frames and
/// truncating the storage back to its starting page count.
#[derive(Debug)]
pub struct TxnHandle<S: Storage> {
    pool: Arc<BufferPool<S>>,
    start_pages: u32,
    done: bool,
}

impl<S: Storage> TxnHandle<S> {
    /// The pool this transaction covers.
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Page count when the transaction began.
    pub fn start_pages(&self) -> u32 {
        self.start_pages
    }

    /// This transaction's write set (every dirty frame, sorted by id).
    pub fn dirty_images(&self) -> Vec<(PageId, Vec<u8>)> {
        self.pool.dirty_images()
    }

    /// Make the write set durable: leave no-steal mode, write every dirty
    /// frame back and sync the storage. Call only after the write-ahead log
    /// holds the images (or when running non-durably by choice).
    pub fn commit(&mut self) -> PagerResult<()> {
        if self.done {
            return Ok(());
        }
        self.pool.txn_active.store(false, Ordering::Release);
        self.pool.flush()?;
        self.done = true;
        Ok(())
    }

    /// Undo the write set: discard dirty frames and truncate the storage
    /// back to the starting page count.
    pub fn abort(&mut self) -> PagerResult<()> {
        if self.done {
            return Ok(());
        }
        self.done = true;
        self.pool.discard_dirty();
        self.pool.txn_active.store(false, Ordering::Release);
        mutex_lock(&self.pool.storage).truncate_pages(self.start_pages)?;
        Ok(())
    }

    /// End the transaction *without* flushing or discarding — used when the
    /// commit point already passed in the write-ahead log but applying the
    /// pages failed: the frames stay dirty for a later retry, and recovery
    /// can always redo them from the log.
    pub fn detach(&mut self) {
        self.done = true;
        self.pool.txn_active.store(false, Ordering::Release);
    }
}

impl<S: Storage> Drop for TxnHandle<S> {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn pool_with_pages(n: u32, capacity: usize) -> BufferPool<MemStorage> {
        let pool = BufferPool::with_capacity(MemStorage::with_page_size(128), capacity);
        for i in 0..n {
            let (id, h) = pool.allocate().unwrap();
            assert_eq!(id, i);
            h.write()[0] = i as u8;
            if capacity == 0 {
                // Cache-less pools never write back; seed storage directly.
                let mut buf = vec![0u8; 128];
                buf[0] = i as u8;
                mutex_lock(&pool.storage).write_page(id, &buf).unwrap();
            }
        }
        pool.flush().unwrap();
        pool.clear_cache().unwrap();
        pool.stats().reset();
        pool
    }

    #[test]
    fn get_returns_page_contents() {
        let pool = pool_with_pages(4, 8);
        for i in 0..4 {
            let h = pool.get(i).unwrap();
            assert_eq!(h.read()[0], i as u8);
        }
    }

    #[test]
    fn hits_do_not_touch_storage() {
        let pool = pool_with_pages(2, 8);
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        assert_eq!(pool.stats().logical_gets(), 3);
        assert_eq!(pool.stats().physical_reads(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = pool_with_pages(3, 2);
        pool.get(0).unwrap();
        pool.get(1).unwrap(); // pool: {0,1}
        pool.get(2).unwrap(); // evicts 0
        assert_eq!(pool.stats().evictions(), 1);
        pool.get(1).unwrap(); // still cached
        assert_eq!(pool.stats().physical_reads(), 3);
        pool.get(0).unwrap(); // must re-read
        assert_eq!(pool.stats().physical_reads(), 4);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = pool_with_pages(4, 2);
        let pinned = pool.get(0).unwrap();
        pinned.write()[1] = 99;
        for i in 1..4 {
            pool.get(i).unwrap();
        }
        // Frame 0 was pinned the whole time: reading it again must be a hit
        // and must see our modification.
        let before = pool.stats().physical_reads();
        let again = pool.get(0).unwrap();
        assert_eq!(pool.stats().physical_reads(), before);
        assert_eq!(again.read()[1], 99);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let pool = pool_with_pages(3, 1);
        {
            let h = pool.get(0).unwrap();
            h.write()[5] = 123;
        }
        pool.get(1).unwrap(); // evicts dirty page 0
        pool.get(2).unwrap();
        let h = pool.get(0).unwrap();
        assert_eq!(h.read()[5], 123);
    }

    #[test]
    fn flush_persists_into_storage() {
        let pool = BufferPool::with_capacity(MemStorage::with_page_size(128), 4);
        let (id, h) = pool.allocate().unwrap();
        h.write()[3] = 77;
        drop(h);
        let mut storage = pool.into_storage().unwrap();
        let mut buf = vec![0u8; 128];
        storage.read_page(id, &mut buf).unwrap();
        assert_eq!(buf[3], 77);
    }

    #[test]
    fn clear_cache_forces_physical_reads() {
        let pool = pool_with_pages(2, 8);
        pool.get(0).unwrap();
        pool.clear_cache().unwrap();
        pool.stats().reset();
        pool.get(0).unwrap();
        assert_eq!(pool.stats().physical_reads(), 1);
    }

    #[test]
    fn zero_capacity_pool_always_reads() {
        let pool = pool_with_pages(2, 0);
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        assert_eq!(pool.stats().physical_reads(), 2);
    }

    #[test]
    fn handle_clone_shares_frame() {
        let pool = pool_with_pages(1, 4);
        let a = pool.get(0).unwrap();
        let b = a.clone();
        a.write()[0] = 9;
        assert_eq!(b.read()[0], 9);
    }

    #[test]
    fn pool_exhausted_when_every_frame_pinned() {
        let pool = pool_with_pages(3, 2);
        let _a = pool.get(0).unwrap();
        let _b = pool.get(1).unwrap();
        match pool.get(2) {
            Err(PagerError::PoolExhausted { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
        // Dropping a pin makes the get succeed again.
        drop(_a);
        assert!(pool.get(2).is_ok());
    }

    #[test]
    fn capacity_is_enforced_under_churn() {
        let pool = pool_with_pages(64, 8);
        for round in 0..4 {
            for i in 0..64 {
                pool.get((i * 7 + round) % 64).unwrap();
                assert!(pool.cached_frames() <= 8, "pool grew past its capacity");
            }
        }
    }

    #[test]
    fn concurrent_hammer_returns_correct_bytes() {
        let pool = std::sync::Arc::new(pool_with_pages(32, 8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..400u32 {
                        let id = (i * 13 + t) % 32;
                        let h = pool.get(id).unwrap();
                        assert_eq!(h.read()[0], id as u8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Transient overshoot must have settled back within capacity.
        assert!(pool.cached_frames() <= 8 + 8);
        let s = pool.stats();
        assert_eq!(s.logical_gets(), 8 * 400);
        assert!(s.physical_reads() >= 32 as u64);
    }

    #[test]
    fn txn_abort_restores_pre_transaction_state() {
        let pool = Arc::new(BufferPool::with_capacity(
            MemStorage::with_page_size(128),
            8,
        ));
        let (p0, h) = pool.allocate().unwrap();
        h.write()[0] = 1;
        drop(h);
        pool.flush().unwrap();

        let mut txn = pool.begin_txn().unwrap();
        pool.get(p0).unwrap().write()[0] = 99;
        let (p1, h1) = pool.allocate().unwrap();
        h1.write()[0] = 42;
        drop(h1);
        let images = txn.dirty_images();
        assert_eq!(
            images.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![p0, p1]
        );
        txn.abort().unwrap();

        assert_eq!(pool.page_count(), 1);
        assert_eq!(pool.get(p0).unwrap().read()[0], 1);
    }

    #[test]
    fn txn_commit_persists_and_drop_aborts() {
        let pool = Arc::new(BufferPool::with_capacity(
            MemStorage::with_page_size(128),
            8,
        ));
        {
            let mut txn = pool.begin_txn().unwrap();
            let (_, h) = pool.allocate().unwrap();
            h.write()[0] = 7;
            drop(h);
            txn.commit().unwrap();
        }
        assert_eq!(pool.page_count(), 1);
        {
            let _txn = pool.begin_txn().unwrap();
            let (_, h) = pool.allocate().unwrap();
            h.write()[0] = 8;
            drop(h);
            // Dropped without commit: aborts.
        }
        assert_eq!(pool.page_count(), 1);
        assert_eq!(pool.get(0).unwrap().read()[0], 7);
    }

    #[test]
    fn no_steal_keeps_dirty_frames_during_txn() {
        // Capacity 2, both frames dirty inside a txn: a miss on a third page
        // must fail with PoolExhausted rather than steal (write back) an
        // uncommitted frame.
        let pool = Arc::new(BufferPool::with_capacity(
            MemStorage::with_page_size(128),
            2,
        ));
        for _ in 0..3 {
            pool.allocate().unwrap();
        }
        pool.flush().unwrap();
        pool.clear_cache().unwrap();
        let mut txn = pool.begin_txn().unwrap();
        for i in 0..2 {
            pool.get(i).unwrap().write()[0] = i as u8 + 1;
        }
        assert!(matches!(pool.get(2), Err(PagerError::PoolExhausted { .. })));
        let mut storage_view = vec![0u8; 128];
        mutex_lock(&pool.storage)
            .read_page(0, &mut storage_view)
            .unwrap();
        assert_eq!(storage_view[0], 0, "dirty frame leaked to storage mid-txn");
        assert_eq!(txn.dirty_images().len(), 2);
        txn.commit().unwrap();
        mutex_lock(&pool.storage)
            .read_page(0, &mut storage_view)
            .unwrap();
        assert_eq!(storage_view[0], 1);
        // Out of the txn, the miss succeeds again.
        assert!(pool.get(2).is_ok());
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool<MemStorage>>();
        assert_send_sync::<PageHandle>();
    }
}
