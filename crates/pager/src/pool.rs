//! The buffer pool.
//!
//! Frames are reference-counted: a [`PageHandle`] keeps its frame pinned, and
//! a frame is evictable exactly when no handle to it is alive. LRU order is
//! maintained with a monotone clock stamp per frame (simple and adequate for
//! pool sizes in the thousands).

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::rc::Rc;

use crate::error::PagerResult;
use crate::stats::IoStats;
use crate::storage::{PageId, Storage};

#[derive(Debug)]
struct Frame {
    data: Rc<RefCell<Box<[u8]>>>,
    dirty: Rc<std::cell::Cell<bool>>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    clock: u64,
}

/// A pinned page. Holding the handle keeps the page in the pool; dropping it
/// makes the frame evictable again. Obtain the bytes with [`PageHandle::read`]
/// or [`PageHandle::write`] (the latter marks the page dirty).
#[derive(Debug, Clone)]
pub struct PageHandle {
    id: PageId,
    data: Rc<RefCell<Box<[u8]>>>,
    dirty: Rc<std::cell::Cell<bool>>,
}

impl PageHandle {
    /// Page id this handle refers to.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Immutable view of the page bytes.
    pub fn read(&self) -> Ref<'_, [u8]> {
        Ref::map(self.data.borrow(), |b| &**b)
    }

    /// Mutable view of the page bytes; marks the page dirty.
    pub fn write(&self) -> RefMut<'_, [u8]> {
        self.dirty.set(true);
        RefMut::map(self.data.borrow_mut(), |b| &mut **b)
    }
}

/// An LRU buffer pool over a [`Storage`].
///
/// All methods take `&self`; interior mutability keeps cursor code (which
/// holds handles while requesting more pages) borrow-checker friendly.
#[derive(Debug)]
pub struct BufferPool<S: Storage> {
    storage: RefCell<S>,
    inner: RefCell<PoolInner>,
    capacity: usize,
    stats: IoStats,
}

impl<S: Storage> BufferPool<S> {
    /// Default number of frames. The paper's premise is that page *headers*
    /// fit in memory but page *contents* do not; a modest pool models that.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Create a pool with the default capacity.
    pub fn new(storage: S) -> Self {
        Self::with_capacity(storage, Self::DEFAULT_CAPACITY)
    }

    /// Create a pool holding at most `capacity` unpinned frames. A capacity
    /// of 0 disables caching entirely (every get is a physical read) — used
    /// by tests that want raw I/O counts.
    pub fn with_capacity(storage: S, capacity: usize) -> Self {
        BufferPool {
            storage: RefCell::new(storage),
            inner: RefCell::new(PoolInner::default()),
            capacity,
            stats: IoStats::default(),
        }
    }

    /// Page size of the underlying storage.
    pub fn page_size(&self) -> usize {
        self.storage.borrow().page_size()
    }

    /// Number of pages in the underlying storage.
    pub fn page_count(&self) -> u32 {
        self.storage.borrow().page_count()
    }

    /// I/O statistics (shared counters; reset with `stats().reset()`).
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.inner.borrow().frames.len()
    }

    /// Fetch page `id`, reading it from storage on a miss.
    pub fn get(&self, id: PageId) -> PagerResult<PageHandle> {
        self.stats.count_get();
        {
            let mut inner = self.inner.borrow_mut();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(frame) = inner.frames.get_mut(&id) {
                frame.last_used = clock;
                return Ok(PageHandle {
                    id,
                    data: Rc::clone(&frame.data),
                    dirty: Rc::clone(&frame.dirty),
                });
            }
        }
        // Miss: read from storage.
        let page_size = self.page_size();
        let mut buf = vec![0u8; page_size].into_boxed_slice();
        self.storage.borrow_mut().read_page(id, &mut buf)?;
        self.stats.count_read();
        self.install(id, buf, false)
    }

    /// Allocate a fresh zeroed page and return a pinned handle to it.
    pub fn allocate(&self) -> PagerResult<(PageId, PageHandle)> {
        let id = self.storage.borrow_mut().allocate_page()?;
        let buf = vec![0u8; self.page_size()].into_boxed_slice();
        let handle = self.install(id, buf, true)?;
        Ok((id, handle))
    }

    fn install(&self, id: PageId, buf: Box<[u8]>, dirty: bool) -> PagerResult<PageHandle> {
        let data = Rc::new(RefCell::new(buf));
        let dirty = Rc::new(std::cell::Cell::new(dirty));
        if self.capacity == 0 {
            // Cache-less mode: hand out the frame without retaining it. The
            // handle itself still works; the page is simply re-read next time.
            // Dirty data would be lost, so cache-less pools are read-only in
            // practice (only tests use them).
            return Ok(PageHandle { id, data, dirty });
        }
        self.evict_if_needed()?;
        let mut inner = self.inner.borrow_mut();
        inner.clock += 1;
        let clock = inner.clock;
        inner.frames.insert(
            id,
            Frame {
                data: Rc::clone(&data),
                dirty: Rc::clone(&dirty),
                last_used: clock,
            },
        );
        Ok(PageHandle { id, data, dirty })
    }

    /// Evict LRU unpinned frames until there is room for one more. Pinned
    /// frames (live handles) are never evicted; if everything is pinned the
    /// pool temporarily grows past `capacity` rather than failing — the
    /// matcher's correctness never depends on the pool size.
    fn evict_if_needed(&self) -> PagerResult<()> {
        loop {
            let victim = {
                let inner = self.inner.borrow();
                if inner.frames.len() < self.capacity {
                    return Ok(());
                }
                inner
                    .frames
                    .iter()
                    .filter(|(_, f)| Rc::strong_count(&f.data) == 1)
                    .min_by_key(|(_, f)| f.last_used)
                    .map(|(&id, _)| id)
            };
            let Some(id) = victim else {
                return Ok(()); // everything pinned: grow
            };
            let Some(frame) = self.inner.borrow_mut().frames.remove(&id) else {
                // The chosen victim vanished between the two borrows (cannot
                // happen single-threaded); treat it as "nothing evictable"
                // and let the pool grow rather than panic.
                return Ok(());
            };
            if frame.dirty.get() {
                self.storage
                    .borrow_mut()
                    .write_page(id, &frame.data.borrow())?;
                self.stats.count_write();
            }
            self.stats.count_eviction();
        }
    }

    /// Write every dirty frame back to storage and sync it.
    pub fn flush(&self) -> PagerResult<()> {
        let inner = self.inner.borrow();
        let mut storage = self.storage.borrow_mut();
        for (&id, frame) in &inner.frames {
            if frame.dirty.get() {
                storage.write_page(id, &frame.data.borrow())?;
                frame.dirty.set(false);
                self.stats.count_write();
            }
        }
        storage.sync()?;
        Ok(())
    }

    /// Drop every *unpinned* cached frame (flushing dirty ones), so following
    /// reads are physical. Used between measured queries to cold-start the
    /// cache.
    pub fn clear_cache(&self) -> PagerResult<()> {
        self.flush()?;
        let mut inner = self.inner.borrow_mut();
        inner.frames.retain(|_, f| Rc::strong_count(&f.data) > 1);
        Ok(())
    }

    /// Consume the pool, flushing and returning the storage.
    pub fn into_storage(self) -> PagerResult<S> {
        self.flush()?;
        Ok(self.storage.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn pool_with_pages(n: u32, capacity: usize) -> BufferPool<MemStorage> {
        let pool = BufferPool::with_capacity(MemStorage::with_page_size(128), capacity);
        for i in 0..n {
            let (id, h) = pool.allocate().unwrap();
            assert_eq!(id, i);
            h.write()[0] = i as u8;
        }
        pool.flush().unwrap();
        pool.clear_cache().unwrap();
        pool.stats().reset();
        pool
    }

    #[test]
    fn get_returns_page_contents() {
        let pool = pool_with_pages(4, 8);
        for i in 0..4 {
            let h = pool.get(i).unwrap();
            assert_eq!(h.read()[0], i as u8);
        }
    }

    #[test]
    fn hits_do_not_touch_storage() {
        let pool = pool_with_pages(2, 8);
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        assert_eq!(pool.stats().logical_gets(), 3);
        assert_eq!(pool.stats().physical_reads(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = pool_with_pages(3, 2);
        pool.get(0).unwrap();
        pool.get(1).unwrap(); // pool: {0,1}
        pool.get(2).unwrap(); // evicts 0
        assert_eq!(pool.stats().evictions(), 1);
        pool.get(1).unwrap(); // still cached
        assert_eq!(pool.stats().physical_reads(), 3);
        pool.get(0).unwrap(); // must re-read
        assert_eq!(pool.stats().physical_reads(), 4);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let pool = pool_with_pages(4, 2);
        let pinned = pool.get(0).unwrap();
        pinned.write()[1] = 99;
        for i in 1..4 {
            pool.get(i).unwrap();
        }
        // Frame 0 was pinned the whole time: reading it again must be a hit
        // and must see our modification.
        let before = pool.stats().physical_reads();
        let again = pool.get(0).unwrap();
        assert_eq!(pool.stats().physical_reads(), before);
        assert_eq!(again.read()[1], 99);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let pool = pool_with_pages(3, 1);
        {
            let h = pool.get(0).unwrap();
            h.write()[5] = 123;
        }
        pool.get(1).unwrap(); // evicts dirty page 0
        pool.get(2).unwrap();
        let h = pool.get(0).unwrap();
        assert_eq!(h.read()[5], 123);
    }

    #[test]
    fn flush_persists_into_storage() {
        let pool = BufferPool::with_capacity(MemStorage::with_page_size(128), 4);
        let (id, h) = pool.allocate().unwrap();
        h.write()[3] = 77;
        drop(h);
        let mut storage = pool.into_storage().unwrap();
        let mut buf = vec![0u8; 128];
        storage.read_page(id, &mut buf).unwrap();
        assert_eq!(buf[3], 77);
    }

    #[test]
    fn clear_cache_forces_physical_reads() {
        let pool = pool_with_pages(2, 8);
        pool.get(0).unwrap();
        pool.clear_cache().unwrap();
        pool.stats().reset();
        pool.get(0).unwrap();
        assert_eq!(pool.stats().physical_reads(), 1);
    }

    #[test]
    fn zero_capacity_pool_always_reads() {
        let pool = pool_with_pages(2, 0);
        pool.get(0).unwrap();
        pool.get(0).unwrap();
        assert_eq!(pool.stats().physical_reads(), 2);
    }

    #[test]
    fn handle_clone_shares_frame() {
        let pool = pool_with_pages(1, 4);
        let a = pool.get(0).unwrap();
        let b = a.clone();
        a.write()[0] = 9;
        assert_eq!(b.read()[0], 9);
    }
}
