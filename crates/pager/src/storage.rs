//! Page storage backends.
//!
//! A [`Storage`] is a flat array of fixed-size pages addressed by [`PageId`].
//! [`MemStorage`] backs tests and benchmarks that want to exclude disk noise;
//! [`FileStorage`] persists to a single file with a small superblock header
//! so stores survive process restarts.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{PagerError, PagerResult};

/// Identifier of a page within one storage. Page 0 is the first data page
/// (the file header lives before it and is not addressable).
pub type PageId = u32;

/// Default page size used throughout the system — the value the paper's
/// capacity computation assumes ("assume that each page is 4KB").
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Abstract array-of-pages backend.
pub trait Storage {
    /// Size in bytes of every page.
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn page_count(&self) -> u32;

    /// Read page `id` into `buf` (`buf.len() == page_size()`).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()>;

    /// Write `buf` to page `id` (`buf.len() == page_size()`).
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()>;

    /// Append a zeroed page and return its id. File-backed storages defer
    /// the actual file growth to [`Storage::sync`] so a crashed transaction
    /// leaves no orphan pages behind.
    fn allocate_page(&mut self) -> PagerResult<PageId>;

    /// Flush to durable media (no-op for memory). For [`FileStorage`] this
    /// is the moment allocations materialize and the page count persists.
    fn sync(&mut self) -> PagerResult<()>;

    /// Drop every page with id `>= count` — the rollback inverse of
    /// [`Storage::allocate_page`]. `count` must not exceed the current
    /// page count.
    fn truncate_pages(&mut self, count: u32) -> PagerResult<()>;
}

/// In-memory page array.
#[derive(Debug, Default)]
pub struct MemStorage {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl MemStorage {
    /// Create an empty in-memory storage with the default page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Create an empty in-memory storage with a custom page size (benchmarks
    /// sweep this to regenerate the paper's capacity table).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to hold any header");
        MemStorage {
            page_size,
            pages: Vec::new(),
        }
    }
}

impl Storage for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()> {
        let page = self
            .pages
            .get(id as usize)
            .ok_or(PagerError::PageOutOfRange {
                page: id,
                count: self.pages.len() as u32,
            })?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()> {
        let count = self.pages.len() as u32;
        let page = self
            .pages
            .get_mut(id as usize)
            .ok_or(PagerError::PageOutOfRange { page: id, count })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&mut self) -> PagerResult<PageId> {
        let id = self.pages.len() as u32;
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(id)
    }

    fn sync(&mut self) -> PagerResult<()> {
        Ok(())
    }

    fn truncate_pages(&mut self, count: u32) -> PagerResult<()> {
        if count as usize > self.pages.len() {
            return Err(PagerError::Corrupt(format!(
                "truncate_pages({count}) beyond the {} pages present",
                self.pages.len()
            )));
        }
        self.pages.truncate(count as usize);
        Ok(())
    }
}

const FILE_MAGIC: &[u8; 8] = b"NOKPAGE1";
const HEADER_LEN: u64 = 16; // magic (8) + page_size (4) + page_count (4)

/// A storage persisted in a single file: 16-byte superblock followed by the
/// page array.
///
/// Allocation is deferred: [`Storage::allocate_page`] only bumps the
/// in-memory count, and the file grows when pages are written (or at
/// [`Storage::sync`], which extends the file to the full allocated length
/// before persisting the page count). An allocated-but-never-written page
/// reads as zeros. The invariant a synced file satisfies — and
/// [`FileStorage::open`] enforces — is
/// `file_len == HEADER_LEN + page_count * page_size`.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    page_size: usize,
    page_count: u32,
    /// Current byte length of the file (pages beyond it are allocated but
    /// not yet materialized; they read as zeros).
    file_len: u64,
}

impl FileStorage {
    /// Create a new (truncated) storage file with the default page size.
    pub fn create<P: AsRef<Path>>(path: P) -> PagerResult<Self> {
        Self::create_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// Create a new (truncated) storage file with a custom page size.
    pub fn create_with_page_size<P: AsRef<Path>>(path: P, page_size: usize) -> PagerResult<Self> {
        assert!(page_size >= 64, "page size too small to hold any header");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(FILE_MAGIC);
        header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        header[12..16].copy_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)?;
        Ok(FileStorage {
            file,
            page_size,
            page_count: 0,
            file_len: HEADER_LEN,
        })
    }

    /// Open an existing storage file, validating the superblock **and** that
    /// the file length matches the persisted page count. A short or
    /// over-long file fails here with [`PagerError::SizeMismatch`] rather
    /// than deep inside the first query that reads past the tear.
    pub fn open<P: AsRef<Path>>(path: P) -> PagerResult<Self> {
        let storage = Self::open_for_repair(path)?;
        let expected = HEADER_LEN + storage.page_count as u64 * storage.page_size as u64;
        if storage.file_len != expected {
            return Err(PagerError::SizeMismatch {
                pages: storage.page_count,
                page_size: storage.page_size,
                file_len: storage.file_len,
            });
        }
        Ok(storage)
    }

    /// Open without the length check — only for WAL replay, which is about
    /// to repair exactly the mismatch [`FileStorage::open`] rejects.
    pub fn open_for_repair<P: AsRef<Path>>(path: P) -> PagerResult<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[..8] != FILE_MAGIC {
            return Err(PagerError::Corrupt("bad magic in storage file".into()));
        }
        let page_size = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
        let page_count = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        if page_size < 64 {
            return Err(PagerError::Corrupt(format!(
                "implausible page size {page_size}"
            )));
        }
        let file_len = file.metadata()?.len();
        Ok(FileStorage {
            file,
            page_size,
            page_count,
            file_len,
        })
    }

    fn offset_of(&self, id: PageId) -> u64 {
        HEADER_LEN + id as u64 * self.page_size as u64
    }

    fn persist_page_count(&mut self) -> PagerResult<()> {
        self.file.seek(SeekFrom::Start(12))?;
        self.file.write_all(&self.page_count.to_le_bytes())?;
        Ok(())
    }

    /// Force the page count during WAL replay (may grow past pages that were
    /// never materialized — they read as zeros until their images land).
    pub(crate) fn set_page_count_for_replay(&mut self, count: u32) -> PagerResult<()> {
        self.page_count = count;
        let want = self.offset_of(count);
        if self.file_len > want {
            // The crash happened after pages past the committed count were
            // materialized (an interrupted later transaction): drop them.
            self.file.set_len(want)?;
            self.file_len = want;
        }
        Ok(())
    }
}

impl Storage for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u32 {
        self.page_count
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()> {
        if id >= self.page_count {
            return Err(PagerError::PageOutOfRange {
                page: id,
                count: self.page_count,
            });
        }
        let off = self.offset_of(id);
        if off >= self.file_len {
            // Allocated but never materialized: defined to be zeros.
            buf.fill(0);
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(off))?;
        let avail = (self.file_len - off).min(buf.len() as u64) as usize;
        self.file.read_exact(&mut buf[..avail])?;
        buf[avail..].fill(0);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()> {
        if id >= self.page_count {
            return Err(PagerError::PageOutOfRange {
                page: id,
                count: self.page_count,
            });
        }
        let off = self.offset_of(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(buf)?;
        self.file_len = self.file_len.max(off + buf.len() as u64);
        Ok(())
    }

    fn allocate_page(&mut self) -> PagerResult<PageId> {
        // Deferred: the file grows when the page is written or at sync().
        // A transaction that never commits therefore leaves no trace.
        let id = self.page_count;
        self.page_count += 1;
        Ok(id)
    }

    fn sync(&mut self) -> PagerResult<()> {
        // Ordering matters: (1) materialize the full allocated extent and
        // make the page bytes durable, (2) only then persist the page count
        // that declares them reachable, (3) make the header durable. A crash
        // inside this window leaves a length/count mismatch that open()
        // rejects loudly and WAL replay repairs.
        let want = self.offset_of(self.page_count);
        if self.file_len < want {
            self.file.set_len(want)?;
            self.file_len = want;
        }
        self.file.sync_data()?;
        self.persist_page_count()?;
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate_pages(&mut self, count: u32) -> PagerResult<()> {
        if count > self.page_count {
            return Err(PagerError::Corrupt(format!(
                "truncate_pages({count}) beyond the {} pages present",
                self.page_count
            )));
        }
        self.page_count = count;
        let want = self.offset_of(count);
        if self.file_len > want {
            self.file.set_len(want)?;
            self.file_len = want;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trip() {
        let mut s = MemStorage::with_page_size(128);
        let p0 = s.allocate_page().unwrap();
        let p1 = s.allocate_page().unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut buf = vec![7u8; 128];
        s.write_page(p1, &buf).unwrap();
        buf.fill(0);
        s.read_page(p1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        s.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_storage_out_of_range() {
        let mut s = MemStorage::new();
        let mut buf = vec![0u8; s.page_size()];
        assert!(matches!(
            s.read_page(3, &mut buf),
            Err(PagerError::PageOutOfRange { page: 3, .. })
        ));
    }

    #[test]
    fn file_storage_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("nok-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pg");
        {
            let mut s = FileStorage::create_with_page_size(&path, 256).unwrap();
            let p = s.allocate_page().unwrap();
            let buf = vec![42u8; 256];
            s.write_page(p, &buf).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            assert_eq!(s.page_size(), 256);
            assert_eq!(s.page_count(), 1);
            let mut buf = vec![0u8; 256];
            s.read_page(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 42));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_open_rejects_length_mismatch() {
        let dir = std::env::temp_dir().join(format!("nok-pager-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.pg");
        {
            let mut s = FileStorage::create_with_page_size(&path, 128).unwrap();
            for _ in 0..4 {
                s.allocate_page().unwrap();
            }
            s.sync().unwrap();
        }
        // Tear the file: drop half of the last page.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 64).unwrap();
        drop(f);
        match FileStorage::open(&path) {
            Err(PagerError::SizeMismatch {
                pages, file_len, ..
            }) => {
                assert_eq!(pages, 4);
                assert_eq!(file_len, len - 64);
            }
            other => panic!("expected SizeMismatch, got {other:?}"),
        }
        // Repair mode still opens it (that's what WAL replay uses).
        assert!(FileStorage::open_for_repair(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deferred_allocation_materializes_at_sync() {
        let dir = std::env::temp_dir().join(format!("nok-pager-test4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("defer.pg");
        let mut s = FileStorage::create_with_page_size(&path, 128).unwrap();
        s.allocate_page().unwrap();
        s.allocate_page().unwrap();
        // Nothing written yet: the file is still just the header, but the
        // allocated pages read as zeros.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN);
        let mut buf = vec![9u8; 128];
        s.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        s.sync().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN + 256);
        assert!(FileStorage::open(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_pages_rolls_back_allocations() {
        let mut m = MemStorage::with_page_size(64);
        m.allocate_page().unwrap();
        m.allocate_page().unwrap();
        m.truncate_pages(1).unwrap();
        assert_eq!(m.page_count(), 1);
        assert!(m.truncate_pages(5).is_err());

        let dir = std::env::temp_dir().join(format!("nok-pager-test5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.pg");
        let mut s = FileStorage::create_with_page_size(&path, 128).unwrap();
        let p0 = s.allocate_page().unwrap();
        s.write_page(p0, &vec![1u8; 128]).unwrap();
        s.sync().unwrap();
        let p1 = s.allocate_page().unwrap();
        s.write_page(p1, &vec![2u8; 128]).unwrap();
        s.truncate_pages(1).unwrap();
        s.sync().unwrap();
        let mut s = FileStorage::open(&path).unwrap();
        assert_eq!(s.page_count(), 1);
        let mut buf = vec![0u8; 128];
        s.read_page(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("nok-pager-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pg");
        std::fs::write(&path, b"this is not a page file header!!").unwrap();
        assert!(matches!(
            FileStorage::open(&path),
            Err(PagerError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
