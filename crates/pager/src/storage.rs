//! Page storage backends.
//!
//! A [`Storage`] is a flat array of fixed-size pages addressed by [`PageId`].
//! [`MemStorage`] backs tests and benchmarks that want to exclude disk noise;
//! [`FileStorage`] persists to a single file with a small superblock header
//! so stores survive process restarts.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{PagerError, PagerResult};

/// Identifier of a page within one storage. Page 0 is the first data page
/// (the file header lives before it and is not addressable).
pub type PageId = u32;

/// Default page size used throughout the system — the value the paper's
/// capacity computation assumes ("assume that each page is 4KB").
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Abstract array-of-pages backend.
pub trait Storage {
    /// Size in bytes of every page.
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn page_count(&self) -> u32;

    /// Read page `id` into `buf` (`buf.len() == page_size()`).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()>;

    /// Write `buf` to page `id` (`buf.len() == page_size()`).
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()>;

    /// Append a zeroed page and return its id.
    fn allocate_page(&mut self) -> PagerResult<PageId>;

    /// Flush to durable media (no-op for memory).
    fn sync(&mut self) -> PagerResult<()>;
}

/// In-memory page array.
#[derive(Debug, Default)]
pub struct MemStorage {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl MemStorage {
    /// Create an empty in-memory storage with the default page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Create an empty in-memory storage with a custom page size (benchmarks
    /// sweep this to regenerate the paper's capacity table).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to hold any header");
        MemStorage {
            page_size,
            pages: Vec::new(),
        }
    }
}

impl Storage for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()> {
        let page = self
            .pages
            .get(id as usize)
            .ok_or(PagerError::PageOutOfRange {
                page: id,
                count: self.pages.len() as u32,
            })?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()> {
        let count = self.pages.len() as u32;
        let page = self
            .pages
            .get_mut(id as usize)
            .ok_or(PagerError::PageOutOfRange { page: id, count })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&mut self) -> PagerResult<PageId> {
        let id = self.pages.len() as u32;
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(id)
    }

    fn sync(&mut self) -> PagerResult<()> {
        Ok(())
    }
}

const FILE_MAGIC: &[u8; 8] = b"NOKPAGE1";
const HEADER_LEN: u64 = 16; // magic (8) + page_size (4) + page_count (4)

/// A storage persisted in a single file: 16-byte superblock followed by the
/// page array.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
    page_size: usize,
    page_count: u32,
}

impl FileStorage {
    /// Create a new (truncated) storage file with the default page size.
    pub fn create<P: AsRef<Path>>(path: P) -> PagerResult<Self> {
        Self::create_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// Create a new (truncated) storage file with a custom page size.
    pub fn create_with_page_size<P: AsRef<Path>>(path: P, page_size: usize) -> PagerResult<Self> {
        assert!(page_size >= 64, "page size too small to hold any header");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(FILE_MAGIC);
        header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        header[12..16].copy_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)?;
        Ok(FileStorage {
            file,
            page_size,
            page_count: 0,
        })
    }

    /// Open an existing storage file, validating the superblock.
    pub fn open<P: AsRef<Path>>(path: P) -> PagerResult<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[..8] != FILE_MAGIC {
            return Err(PagerError::Corrupt("bad magic in storage file".into()));
        }
        let page_size = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
        let page_count = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        if page_size < 64 {
            return Err(PagerError::Corrupt(format!(
                "implausible page size {page_size}"
            )));
        }
        Ok(FileStorage {
            file,
            page_size,
            page_count,
        })
    }

    fn offset_of(&self, id: PageId) -> u64 {
        HEADER_LEN + id as u64 * self.page_size as u64
    }

    fn persist_page_count(&mut self) -> PagerResult<()> {
        self.file.seek(SeekFrom::Start(12))?;
        self.file.write_all(&self.page_count.to_le_bytes())?;
        Ok(())
    }
}

impl Storage for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u32 {
        self.page_count
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()> {
        if id >= self.page_count {
            return Err(PagerError::PageOutOfRange {
                page: id,
                count: self.page_count,
            });
        }
        let off = self.offset_of(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()> {
        if id >= self.page_count {
            return Err(PagerError::PageOutOfRange {
                page: id,
                count: self.page_count,
            });
        }
        let off = self.offset_of(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn allocate_page(&mut self) -> PagerResult<PageId> {
        let id = self.page_count;
        let zeros = vec![0u8; self.page_size];
        let off = self.offset_of(id);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&zeros)?;
        self.page_count += 1;
        self.persist_page_count()?;
        Ok(id)
    }

    fn sync(&mut self) -> PagerResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trip() {
        let mut s = MemStorage::with_page_size(128);
        let p0 = s.allocate_page().unwrap();
        let p1 = s.allocate_page().unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut buf = vec![7u8; 128];
        s.write_page(p1, &buf).unwrap();
        buf.fill(0);
        s.read_page(p1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        s.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_storage_out_of_range() {
        let mut s = MemStorage::new();
        let mut buf = vec![0u8; s.page_size()];
        assert!(matches!(
            s.read_page(3, &mut buf),
            Err(PagerError::PageOutOfRange { page: 3, .. })
        ));
    }

    #[test]
    fn file_storage_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("nok-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.pg");
        {
            let mut s = FileStorage::create_with_page_size(&path, 256).unwrap();
            let p = s.allocate_page().unwrap();
            let buf = vec![42u8; 256];
            s.write_page(p, &buf).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStorage::open(&path).unwrap();
            assert_eq!(s.page_size(), 256);
            assert_eq!(s.page_count(), 1);
            let mut buf = vec![0u8; 256];
            s.read_page(0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 42));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("nok-pager-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pg");
        std::fs::write(&path, b"this is not a page file header!!").unwrap();
        assert!(matches!(
            FileStorage::open(&path),
            Err(PagerError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
