//! Per-worker first-tier page cache for snapshot readers.
//!
//! The sharded [`BufferPool`](crate::BufferPool) is the *second* tier: every
//! hit there still takes a shard read lock, bumps the shared LRU clock and
//! the shared atomic stats, and — on the snapshot-read path — copies the
//! whole page out of the frame (see [`crate::mvcc::resolve_page`]). Under a
//! read-mostly serving workload those shared cache lines are exactly where
//! cores collide.
//!
//! This module adds a private first tier in front of it: a **thread-local**,
//! direct-mapped table of resolved page images. A hit touches no lock, no
//! shared atomic and no shared clock, and returns a clone of an existing
//! `Arc<[u8]>` — no page copy. Workers are long-lived threads, so the tier
//! amortizes across every query a worker serves.
//!
//! ## Why caching resolved images is sound
//!
//! Entries are keyed by `(pool instance, page id, epoch)` and only populated
//! through [`resolve_page_cached`], i.e. only for **snapshot-view** reads.
//! At a fixed epoch the resolved content of a page is immutable: the writer
//! publishes a before-image *before* first mutating a frame (capture
//! protocol, DESIGN.md §14), so whatever `resolve_page` returns for
//! `(pool, page, epoch)` it returns for the lifetime of that epoch. A commit
//! moves readers to a new epoch, which is a new key — stale entries are
//! never served, they age out by displacement. Pool instance ids are
//! process-unique and never reused, so a dropped database cannot alias a
//! new one.
//!
//! Live-mode reads (`pool.get` without a view) never touch this tier: their
//! frames are mutable in place.
//!
//! ## Stats
//!
//! First-tier hits are still logical page requests. Each thread counts them
//! locally per pool and drains the batch into the pool's shared
//! [`IoStats`](crate::IoStats) via `add_logical_gets` once per
//! [`DRAIN_EVERY`] hits (and opportunistically on every second-tier miss),
//! so the global hit ratio stays meaningful without a shared atomic RMW per
//! access. Up to `DRAIN_EVERY - 1` hits per (thread, pool) may be pending
//! at any instant; that slack is invisible at serving scale.

use std::cell::RefCell;
use std::sync::Arc;

use crate::error::PagerResult;
use crate::mvcc::{resolve_page, SnapView};
use crate::pool::BufferPool;
use crate::storage::{PageId, Storage};

/// Slots in the per-thread direct-mapped table (power of two). At a 4 KiB
/// page size the tier holds at most 1 MiB of (mostly shared) images per
/// thread.
const SLOTS: usize = 256;

/// Local hit counts are drained into the pool's shared stats once this many
/// accumulate for one pool.
const DRAIN_EVERY: u64 = 64;

struct Slot {
    pool: u64,
    page: PageId,
    epoch: u64,
    bytes: Arc<[u8]>,
}

#[derive(Default)]
struct LocalTier {
    slots: Vec<Option<Slot>>,
    /// Pending first-tier hit counts, per pool instance (a thread touches a
    /// handful of pools, so a linear scan beats a map).
    pending: Vec<(u64, u64)>,
}

impl LocalTier {
    #[inline]
    fn index(pool: u64, page: PageId) -> usize {
        // Fibonacci hashing over the combined key; epoch is deliberately
        // not hashed so a new epoch's entry displaces the stale one for the
        // same page instead of leaking a slot.
        let key = (u64::from(page) << 20) ^ pool;
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize & (SLOTS - 1)
    }

    fn lookup(&self, pool: u64, page: PageId, epoch: u64) -> Option<Arc<[u8]>> {
        match self.slots.get(Self::index(pool, page)) {
            Some(Some(s)) if s.pool == pool && s.page == page && s.epoch == epoch => {
                Some(Arc::clone(&s.bytes))
            }
            _ => None,
        }
    }

    fn insert(&mut self, pool: u64, page: PageId, epoch: u64, bytes: Arc<[u8]>) {
        if self.slots.is_empty() {
            self.slots.resize_with(SLOTS, || None);
        }
        let idx = Self::index(pool, page);
        if let Some(slot) = self.slots.get_mut(idx) {
            *slot = Some(Slot {
                pool,
                page,
                epoch,
                bytes,
            });
        }
    }

    /// Count one local hit; returns a batch to drain when the threshold for
    /// this pool is reached.
    fn count_hit(&mut self, pool: u64) -> u64 {
        for entry in &mut self.pending {
            if entry.0 == pool {
                entry.1 += 1;
                if entry.1 >= DRAIN_EVERY {
                    let batch = entry.1;
                    entry.1 = 0;
                    return batch;
                }
                return 0;
            }
        }
        self.pending.push((pool, 1));
        0
    }

    /// Take whatever is pending for `pool` (drained on second-tier misses,
    /// where we pay a shared-stats access anyway).
    fn take_pending(&mut self, pool: u64) -> u64 {
        for entry in &mut self.pending {
            if entry.0 == pool {
                return std::mem::take(&mut entry.1);
            }
        }
        0
    }
}

thread_local! {
    static TIER: RefCell<LocalTier> = RefCell::new(LocalTier::default());
}

/// [`resolve_page`](crate::mvcc::resolve_page) fronted by the calling
/// thread's private first tier. Semantically identical — same bytes, same
/// errors — but repeated snapshot reads of a hot page cost one thread-local
/// probe instead of a shard lock plus a page copy.
pub fn resolve_page_cached<S: Storage>(
    pool: &BufferPool<S>,
    view: &SnapView,
    page: PageId,
) -> PagerResult<Arc<[u8]>> {
    let pool_id = pool.instance_id();
    let hit = TIER.with(|t| {
        let mut t = t.borrow_mut();
        match t.lookup(pool_id, page, view.epoch) {
            Some(bytes) => {
                let batch = t.count_hit(pool_id);
                Some((bytes, batch))
            }
            None => None,
        }
    });
    if let Some((bytes, batch)) = hit {
        pool.stats().add_logical_gets(batch);
        return Ok(bytes);
    }
    let bytes = resolve_page(pool, view, page)?;
    TIER.with(|t| {
        let mut t = t.borrow_mut();
        t.insert(pool_id, page, view.epoch, Arc::clone(&bytes));
        let pending = t.take_pending(pool_id);
        pool.stats().add_logical_gets(pending);
    });
    Ok(bytes)
}

/// Drop every entry the calling thread holds and return counts that were
/// still pending, keyed by pool instance. Tests use this for isolation;
/// servers never need it (entries age out by displacement and epoch
/// mismatch).
pub fn clear_thread_tier() -> Vec<(u64, u64)> {
    TIER.with(|t| {
        let mut t = t.borrow_mut();
        t.slots.clear();
        let pending = std::mem::take(&mut t.pending);
        pending.into_iter().filter(|(_, n)| *n > 0).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::{CaptureCell, PageChain};
    use crate::storage::MemStorage;

    fn view_at(epoch: u64, cell: &Arc<CaptureCell>) -> SnapView {
        SnapView {
            epoch,
            node: PageChain::new(epoch),
            cell: Arc::clone(cell),
        }
    }

    #[test]
    fn hit_returns_same_bytes_without_pool_access() {
        let _ = clear_thread_tier();
        let pool = BufferPool::new(MemStorage::with_page_size(64));
        let (id, h) = pool.allocate().unwrap();
        h.write()[0] = 9;
        drop(h);
        let cell = Arc::new(CaptureCell::new());
        cell.activate(0);
        let view = view_at(0, &cell);

        let a = resolve_page_cached(&pool, &view, id).unwrap();
        let gets_after_miss = pool.stats().logical_gets();
        let b = resolve_page_cached(&pool, &view, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must reuse the cached image");
        assert_eq!(
            pool.stats().logical_gets(),
            gets_after_miss,
            "a first-tier hit must not touch shared stats before the batch \
             threshold"
        );
    }

    #[test]
    fn epoch_change_misses_and_observes_new_content() {
        let _ = clear_thread_tier();
        let pool = BufferPool::new(MemStorage::with_page_size(64));
        let (id, h) = pool.allocate().unwrap();
        h.write()[0] = 1;
        drop(h);
        let cell = Arc::new(CaptureCell::new());
        cell.activate(0);
        let v0 = view_at(0, &cell);
        assert_eq!(resolve_page_cached(&pool, &v0, id).unwrap()[0], 1);

        // Writer mutates the page for epoch 1: capture the before-image
        // first (the protocol), then change the frame.
        cell.capture(id, &[1; 64]);
        pool.get(id).unwrap().write()[0] = 2;
        // The epoch-0 reader keeps seeing 1 (from its cached image)…
        assert_eq!(resolve_page_cached(&pool, &v0, id).unwrap()[0], 1);
        // …and an epoch-1 reader must miss the tier and see 2.
        let cell1 = Arc::new(CaptureCell::new());
        cell1.activate(1);
        let v1 = view_at(1, &cell1);
        assert_eq!(resolve_page_cached(&pool, &v1, id).unwrap()[0], 2);
    }

    #[test]
    fn distinct_pools_never_alias() {
        let _ = clear_thread_tier();
        let mk = |byte: u8| {
            let pool = BufferPool::new(MemStorage::with_page_size(64));
            let (id, h) = pool.allocate().unwrap();
            h.write()[0] = byte;
            drop(h);
            (pool, id)
        };
        let (p1, id1) = mk(10);
        let (p2, id2) = mk(20);
        assert_eq!(id1, id2, "same page id in both pools");
        assert_ne!(p1.instance_id(), p2.instance_id());
        let cell = Arc::new(CaptureCell::new());
        cell.activate(0);
        let view = view_at(0, &cell);
        assert_eq!(resolve_page_cached(&p1, &view, id1).unwrap()[0], 10);
        assert_eq!(resolve_page_cached(&p2, &view, id2).unwrap()[0], 20);
        assert_eq!(resolve_page_cached(&p1, &view, id1).unwrap()[0], 10);
    }

    #[test]
    fn hit_batches_drain_into_shared_stats() {
        let _ = clear_thread_tier();
        let pool = BufferPool::new(MemStorage::with_page_size(64));
        let (id, h) = pool.allocate().unwrap();
        h.write()[0] = 3;
        drop(h);
        let cell = Arc::new(CaptureCell::new());
        cell.activate(0);
        let view = view_at(0, &cell);
        let _ = resolve_page_cached(&pool, &view, id).unwrap();
        let base = pool.stats().logical_gets();
        for _ in 0..DRAIN_EVERY {
            let _ = resolve_page_cached(&pool, &view, id).unwrap();
        }
        assert_eq!(
            pool.stats().logical_gets(),
            base + DRAIN_EVERY,
            "one batch of hits must land in shared stats"
        );
        let leftovers = clear_thread_tier();
        assert!(
            leftovers.iter().all(|(p, _)| *p != 0),
            "pending drains are keyed by pool instance: {leftovers:?}"
        );
    }
}
