//! Write-ahead log for crash-safe multi-page commits.
//!
//! The WAL is a physical **redo** log: a transaction is the set of page
//! images it dirtied (plus a handful of non-paged side effects — data-file
//! length, tombstones, tag-dictionary blob), terminated by a commit marker.
//! The commit protocol is FORCE-with-checkpoint:
//!
//! 1. the caller appends every record of the transaction plus a
//!    [`WalRecord::Commit`] marker in **one** write, then fsyncs — that
//!    fsync is the commit point;
//! 2. the pages are then flushed to their home storages and synced;
//! 3. the log is checkpointed (truncated back to its magic, re-seeded with
//!    the current baseline) — the images are now redundant.
//!
//! A crash before step 1 completes leaves a torn tail that
//! [`Wal::committed_txns`] discards; a crash during step 2 or 3 is repaired
//! by replaying the committed images (replay is idempotent). Because every
//! commit checkpoints, the log never holds more than about two transactions.
//!
//! ## On-disk format
//!
//! ```text
//! magic "NOKWAL01"
//! record* where record = [len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! `payload[0]` is the record type; see [`WalRecord`]. The CRC is the plain
//! IEEE CRC-32 so torn or bit-rotten tails are detected without trusting
//! `len` alone.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::error::{PagerError, PagerResult};
use crate::failpoint::FailPlan;
use crate::storage::{FileStorage, PageId, Storage};

/// Magic bytes at the start of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"NOKWAL01";

const REC_PAGE_IMAGE: u8 = 1;
const REC_PAGE_COUNT: u8 = 2;
const REC_DATA_LEN: u8 = 3;
const REC_DATA_DEAD: u8 = 4;
const REC_DICT_BLOB: u8 = 5;
const REC_COMMIT: u8 = 6;

/// One logical record in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Full after-image of one page of component `comp`.
    PageImage {
        /// Component index (the caller's storage-file numbering).
        comp: u8,
        /// Page within that component.
        page: PageId,
        /// The full page bytes.
        data: Vec<u8>,
    },
    /// Post-transaction page count of component `comp`.
    PageCount {
        /// Component index.
        comp: u8,
        /// Number of pages after the transaction.
        count: u32,
    },
    /// Post-transaction byte length of the append-only data file.
    DataLen(u64),
    /// A data-file record at this offset was tombstoned by the transaction.
    DataDead(u64),
    /// Full serialized tag dictionary after the transaction.
    DictBlob(Vec<u8>),
    /// Terminates a transaction; everything since the previous commit
    /// becomes durable together.
    Commit,
}

impl WalRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        match self {
            WalRecord::PageImage { comp, page, data } => {
                payload.push(REC_PAGE_IMAGE);
                payload.push(*comp);
                payload.extend_from_slice(&page.to_le_bytes());
                payload.extend_from_slice(data);
            }
            WalRecord::PageCount { comp, count } => {
                payload.push(REC_PAGE_COUNT);
                payload.push(*comp);
                payload.extend_from_slice(&count.to_le_bytes());
            }
            WalRecord::DataLen(n) => {
                payload.push(REC_DATA_LEN);
                payload.extend_from_slice(&n.to_le_bytes());
            }
            WalRecord::DataDead(off) => {
                payload.push(REC_DATA_DEAD);
                payload.extend_from_slice(&off.to_le_bytes());
            }
            WalRecord::DictBlob(b) => {
                payload.push(REC_DICT_BLOB);
                payload.extend_from_slice(b);
            }
            WalRecord::Commit => payload.push(REC_COMMIT),
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    fn decode(payload: &[u8]) -> PagerResult<WalRecord> {
        let corrupt = |what: &str| PagerError::Corrupt(format!("WAL: {what}"));
        let Some((&ty, rest)) = payload.split_first() else {
            return Err(corrupt("empty record payload"));
        };
        match ty {
            REC_PAGE_IMAGE => {
                if rest.len() < 5 {
                    return Err(corrupt("short page-image record"));
                }
                Ok(WalRecord::PageImage {
                    comp: rest[0],
                    page: u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]),
                    data: rest[5..].to_vec(),
                })
            }
            REC_PAGE_COUNT => {
                if rest.len() != 5 {
                    return Err(corrupt("malformed page-count record"));
                }
                Ok(WalRecord::PageCount {
                    comp: rest[0],
                    count: u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]),
                })
            }
            REC_DATA_LEN => {
                let b: [u8; 8] = rest
                    .try_into()
                    .map_err(|_| corrupt("malformed data-len record"))?;
                Ok(WalRecord::DataLen(u64::from_le_bytes(b)))
            }
            REC_DATA_DEAD => {
                let b: [u8; 8] = rest
                    .try_into()
                    .map_err(|_| corrupt("malformed data-dead record"))?;
                Ok(WalRecord::DataDead(u64::from_le_bytes(b)))
            }
            REC_DICT_BLOB => Ok(WalRecord::DictBlob(rest.to_vec())),
            REC_COMMIT => Ok(WalRecord::Commit),
            other => Err(corrupt(&format!("unknown record type {other}"))),
        }
    }
}

/// The write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    failpoint: Option<Arc<FailPlan>>,
}

impl Wal {
    /// Open an existing log, or create an empty one (magic only).
    pub fn open_or_create<P: AsRef<Path>>(path: P) -> PagerResult<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
        } else {
            let mut magic = [0u8; 8];
            file.seek(SeekFrom::Start(0))?;
            // A file shorter than the magic is a crash during creation:
            // nothing was ever logged, so re-seed it.
            if len < 8 || {
                file.read_exact(&mut magic)?;
                &magic != WAL_MAGIC
            } {
                if len >= 8 {
                    return Err(PagerError::Corrupt("bad magic in WAL file".into()));
                }
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(WAL_MAGIC)?;
                file.sync_data()?;
            }
        }
        Ok(Wal {
            file,
            failpoint: None,
        })
    }

    /// Route this log's mutating I/O through a fault-injection plan.
    pub fn set_failpoint(&mut self, plan: Arc<FailPlan>) {
        self.failpoint = Some(plan);
    }

    fn check_failpoint(&self) -> PagerResult<()> {
        match &self.failpoint {
            Some(plan) => plan.check(),
            None => Ok(()),
        }
    }

    /// Append one transaction (a trailing [`WalRecord::Commit`] is added if
    /// the caller did not include one) as a single write, then fsync.
    /// Returning `Ok` means the transaction is durable — the commit point.
    pub fn append_txn(&mut self, records: &[WalRecord]) -> PagerResult<()> {
        self.check_failpoint()?;
        let mut buf = Vec::new();
        for r in records {
            r.encode_into(&mut buf);
        }
        if records.last() != Some(&WalRecord::Commit) {
            WalRecord::Commit.encode_into(&mut buf);
        }
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Read every committed transaction, in order. A torn or CRC-corrupt
    /// tail ends the scan; records after the last commit marker (an
    /// uncommitted transaction) are discarded.
    pub fn committed_txns(&mut self) -> PagerResult<Vec<Vec<WalRecord>>> {
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut bytes)?;
        if bytes.len() < 8 || &bytes[..8] != WAL_MAGIC {
            return Err(PagerError::Corrupt("bad magic in WAL file".into()));
        }
        let mut txns = Vec::new();
        let mut current = Vec::new();
        let mut pos = 8usize;
        while bytes.len() - pos >= 8 {
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            let start = pos + 8;
            let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
                break; // torn tail: record extends past EOF
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // torn or corrupt tail
            }
            let Ok(rec) = WalRecord::decode(payload) else {
                break;
            };
            pos = end;
            if rec == WalRecord::Commit {
                txns.push(std::mem::take(&mut current));
            } else {
                current.push(rec);
            }
        }
        Ok(txns)
    }

    /// Truncate the log back to its magic and seed it with a fresh baseline
    /// transaction (typically just the current data-file length). After a
    /// checkpoint the previously logged images are gone — callers must only
    /// checkpoint once those pages are durable in their home files.
    pub fn checkpoint(&mut self, baseline: &[WalRecord]) -> PagerResult<()> {
        self.check_failpoint()?;
        self.file.set_len(8)?;
        self.append_txn(baseline)
    }
}

/// What [`replay`] applied, plus the non-paged side effects the caller must
/// apply itself (the pager does not know about data files or dictionaries).
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Number of page images written back.
    pub pages_applied: u64,
    /// Number of transactions replayed.
    pub txns: u64,
    /// Final logged data-file length, if any transaction recorded one.
    pub data_len: Option<u64>,
    /// Every tombstoned data-file offset, in log order.
    pub data_dead: Vec<u64>,
    /// Final logged dictionary blob, if any transaction recorded one.
    pub dict: Option<Vec<u8>>,
}

/// Apply committed transactions to their component storages: page counts
/// first (so images past the old end are in range), then the images, then a
/// sync per touched component. Idempotent — replaying an already-applied
/// transaction writes the same bytes again.
pub fn replay(
    txns: &[Vec<WalRecord>],
    storages: &mut [&mut FileStorage],
) -> PagerResult<ReplayOutcome> {
    let mut out = ReplayOutcome::default();
    let mut touched = vec![false; storages.len()];
    let comp_of = |comp: u8, n: usize| -> PagerResult<usize> {
        let i = comp as usize;
        if i >= n {
            return Err(PagerError::Corrupt(format!(
                "WAL names component {comp} but only {n} storages were supplied"
            )));
        }
        Ok(i)
    };
    for txn in txns {
        out.txns += 1;
        for rec in txn {
            match rec {
                WalRecord::PageCount { comp, count } => {
                    let i = comp_of(*comp, storages.len())?;
                    storages[i].set_page_count_for_replay(*count)?;
                    touched[i] = true;
                }
                WalRecord::PageImage { comp, page, data } => {
                    let i = comp_of(*comp, storages.len())?;
                    if data.len() != storages[i].page_size() {
                        return Err(PagerError::Corrupt(format!(
                            "WAL page image of {} bytes for component {comp} \
                             with page size {}",
                            data.len(),
                            storages[i].page_size()
                        )));
                    }
                    storages[i].write_page(*page, data)?;
                    touched[i] = true;
                    out.pages_applied += 1;
                }
                WalRecord::DataLen(n) => out.data_len = Some(*n),
                WalRecord::DataDead(off) => out.data_dead.push(*off),
                WalRecord::DictBlob(b) => out.dict = Some(b.clone()),
                WalRecord::Commit => {}
            }
        }
    }
    for (i, storage) in storages.iter_mut().enumerate() {
        if touched[i] {
            storage.sync()?;
        }
    }
    Ok(out)
}

/// Plain IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nok-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_read_back() {
        let path = temp_path("roundtrip");
        let recs = vec![
            WalRecord::PageCount { comp: 0, count: 3 },
            WalRecord::PageImage {
                comp: 0,
                page: 2,
                data: vec![7u8; 64],
            },
            WalRecord::DataLen(99),
            WalRecord::DataDead(12),
            WalRecord::DictBlob(b"dict".to_vec()),
        ];
        {
            let mut wal = Wal::open_or_create(&path).unwrap();
            wal.append_txn(&recs).unwrap();
        }
        let mut wal = Wal::open_or_create(&path).unwrap();
        let txns = wal.committed_txns().unwrap();
        assert_eq!(txns, vec![recs]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open_or_create(&path).unwrap();
            wal.append_txn(&[WalRecord::DataLen(1)]).unwrap();
            wal.append_txn(&[WalRecord::PageImage {
                comp: 1,
                page: 0,
                data: vec![3u8; 32],
            }])
            .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_txn_end = {
            let mut wal = Wal::open_or_create(&path).unwrap();
            assert_eq!(wal.committed_txns().unwrap().len(), 2);
            // Walk the frames to find where the first commit marker ends.
            let mut pos = 8usize;
            let mut end = 0usize;
            let mut commits = 0;
            while pos + 8 <= full.len() && commits < 1 {
                let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
                if full[pos - len] == REC_COMMIT {
                    commits += 1;
                    end = pos;
                }
            }
            end
        };
        // Truncating anywhere inside the second transaction must leave
        // exactly the first transaction committed.
        for cut in first_txn_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut wal = Wal::open_or_create(&path).unwrap();
            let txns = wal.committed_txns().unwrap();
            assert_eq!(txns.len(), 1, "cut at {cut}");
            assert_eq!(txns[0], vec![WalRecord::DataLen(1)]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_ends_scan() {
        let path = temp_path("crc");
        {
            let mut wal = Wal::open_or_create(&path).unwrap();
            wal.append_txn(&[WalRecord::DataLen(1)]).unwrap();
            wal.append_txn(&[WalRecord::DataLen(2)]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the second transaction's first record.
        let len0 = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let commit_len =
            u32::from_le_bytes(bytes[16 + len0..20 + len0].try_into().unwrap()) as usize;
        let second = 8 + 8 + len0 + 8 + commit_len + 8;
        bytes[second + 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open_or_create(&path).unwrap();
        let txns = wal.committed_txns().unwrap();
        assert_eq!(txns, vec![vec![WalRecord::DataLen(1)]]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_drops_history() {
        let path = temp_path("ckpt");
        let mut wal = Wal::open_or_create(&path).unwrap();
        wal.append_txn(&[WalRecord::PageImage {
            comp: 0,
            page: 0,
            data: vec![1u8; 16],
        }])
        .unwrap();
        wal.checkpoint(&[WalRecord::DataLen(42)]).unwrap();
        let txns = wal.committed_txns().unwrap();
        assert_eq!(txns, vec![vec![WalRecord::DataLen(42)]]);
        std::fs::remove_file(&path).ok();
    }
}
