//! Fault injection for crash-consistency testing.
//!
//! A [`FailPlan`] counts mutating I/O operations and "crashes" on the k-th
//! one: the operation fails, and — because a real crash stops the process,
//! while the test harness keeps executing — **every subsequent mutating
//! operation fails too**. Code under test therefore cannot repair anything
//! after the injected crash; whatever reached the files before the trip is
//! exactly what recovery gets to work with.
//!
//! [`FailpointStorage`] wraps any [`Storage`] and routes its mutating
//! operations through a shared plan; [`crate::wal::Wal`] and the data file
//! take the same plan via `set_failpoint`, so one counter spans every
//! durability-relevant write in a store.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{PagerError, PagerResult};
use crate::storage::{PageId, Storage};

/// A shared fault-injection plan: trip on the `fail_at`-th mutating I/O
/// (1-based), or never when `fail_at == 0` (counting mode).
#[derive(Debug)]
pub struct FailPlan {
    fail_at: u64,
    ios: AtomicU64,
    tripped: AtomicBool,
}

impl FailPlan {
    /// Count mutating I/Os without ever failing — used for the first pass
    /// of a sweep to learn how many injection points a workload has.
    pub fn counting() -> Arc<FailPlan> {
        Self::at(0)
    }

    /// Fail the `k`-th mutating I/O and every one after it (`k >= 1`).
    pub fn at(k: u64) -> Arc<FailPlan> {
        Arc::new(FailPlan {
            fail_at: k,
            ios: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        })
    }

    /// Mutating I/Os observed before the trip.
    pub fn count(&self) -> u64 {
        self.ios.load(Ordering::Acquire)
    }

    /// Has the simulated crash happened?
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Gate one mutating I/O.
    pub fn check(&self) -> PagerResult<()> {
        if self.tripped.load(Ordering::Acquire) {
            return Err(Self::crash_error());
        }
        let n = self.ios.fetch_add(1, Ordering::AcqRel) + 1;
        if self.fail_at != 0 && n >= self.fail_at {
            self.tripped.store(true, Ordering::Release);
            return Err(Self::crash_error());
        }
        Ok(())
    }

    fn crash_error() -> PagerError {
        PagerError::Io(std::io::Error::other("failpoint: injected crash"))
    }
}

/// A [`Storage`] whose mutating operations are gated by a [`FailPlan`].
/// Reads are never failed: after the simulated crash the harness still needs
/// to observe the torn files, just like a post-restart process would.
#[derive(Debug)]
pub struct FailpointStorage<S: Storage> {
    inner: S,
    plan: Arc<FailPlan>,
}

impl<S: Storage> FailpointStorage<S> {
    /// Wrap a storage with a shared plan.
    pub fn new(inner: S, plan: Arc<FailPlan>) -> Self {
        FailpointStorage { inner, plan }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<FailPlan> {
        &self.plan
    }
}

impl<S: Storage> Storage for FailpointStorage<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> PagerResult<()> {
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> PagerResult<()> {
        self.plan.check()?;
        self.inner.write_page(id, buf)
    }

    fn allocate_page(&mut self) -> PagerResult<PageId> {
        self.plan.check()?;
        self.inner.allocate_page()
    }

    fn sync(&mut self) -> PagerResult<()> {
        self.plan.check()?;
        self.inner.sync()
    }

    fn truncate_pages(&mut self, count: u32) -> PagerResult<()> {
        self.plan.check()?;
        self.inner.truncate_pages(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn counting_mode_never_trips() {
        let plan = FailPlan::counting();
        let mut s = FailpointStorage::new(MemStorage::with_page_size(64), Arc::clone(&plan));
        for _ in 0..10 {
            s.allocate_page().unwrap();
        }
        s.sync().unwrap();
        assert_eq!(plan.count(), 11);
        assert!(!plan.is_tripped());
    }

    #[test]
    fn trips_on_kth_io_and_stays_down() {
        let plan = FailPlan::at(3);
        let mut s = FailpointStorage::new(MemStorage::with_page_size(64), Arc::clone(&plan));
        s.allocate_page().unwrap();
        s.allocate_page().unwrap();
        assert!(s.allocate_page().is_err());
        assert!(plan.is_tripped());
        // Everything mutating now fails; reads still work.
        assert!(s.sync().is_err());
        assert!(s.write_page(0, &[0u8; 64]).is_err());
        let mut buf = [0u8; 64];
        s.read_page(0, &mut buf).unwrap();
    }
}
