//! Property tests for the buffer pool: under arbitrary interleavings of
//! allocations, reads, writes, pins and cache clears, page contents must
//! match a flat reference model, for any pool capacity.

use proptest::prelude::*;

use nok_pager::{BufferPool, MemStorage, PageHandle, PagerError};

/// Fetch a page, treating [`PagerError::PoolExhausted`] as a legal outcome
/// when (and only when) pinned handles are outstanding — with every frame
/// pinned the pool refuses to grow past its budget by design.
fn try_get(pool: &BufferPool<MemStorage>, id: u32, pins_held: bool) -> Option<PageHandle> {
    match pool.get(id) {
        Ok(h) => Some(h),
        Err(PagerError::PoolExhausted { .. }) => {
            assert!(pins_held, "PoolExhausted with no pinned handles");
            None
        }
        Err(e) => panic!("get({id}): {e}"),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Allocate,
    /// Write `byte` at offset 0..page_size of page `idx % allocated`.
    Write {
        idx: usize,
        offset: usize,
        byte: u8,
    },
    Read {
        idx: usize,
        offset: usize,
    },
    /// Pin page `idx` (hold a handle across later ops).
    Pin {
        idx: usize,
    },
    UnpinAll,
    ClearCache,
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Allocate),
        4 => (any::<usize>(), 0usize..128, any::<u8>())
            .prop_map(|(idx, offset, byte)| Op::Write { idx, offset, byte }),
        4 => (any::<usize>(), 0usize..128).prop_map(|(idx, offset)| Op::Read { idx, offset }),
        1 => any::<usize>().prop_map(|idx| Op::Pin { idx }),
        1 => Just(Op::UnpinAll),
        1 => Just(Op::ClearCache),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pool_matches_flat_model(
        ops in prop::collection::vec(arb_op(), 1..200),
        capacity in 1usize..8,
    ) {
        let page_size = 128usize;
        let pool = BufferPool::with_capacity(MemStorage::with_page_size(page_size), capacity);
        let mut model: Vec<Vec<u8>> = Vec::new();
        let mut pinned: Vec<PageHandle> = Vec::new();

        for op in &ops {
            match op {
                Op::Allocate => {
                    match pool.allocate() {
                        Ok((id, _h)) => {
                            prop_assert_eq!(id as usize, model.len());
                            model.push(vec![0u8; page_size]);
                        }
                        Err(PagerError::PoolExhausted { .. }) => {
                            prop_assert!(!pinned.is_empty());
                        }
                        Err(e) => panic!("allocate: {e}"),
                    }
                }
                Op::Write { idx, offset, byte } => {
                    if model.is_empty() { continue; }
                    let id = idx % model.len();
                    if let Some(h) = try_get(&pool, id as u32, !pinned.is_empty()) {
                        h.write()[*offset] = *byte;
                        model[id][*offset] = *byte;
                    }
                }
                Op::Read { idx, offset } => {
                    if model.is_empty() { continue; }
                    let id = idx % model.len();
                    if let Some(h) = try_get(&pool, id as u32, !pinned.is_empty()) {
                        prop_assert_eq!(h.read()[*offset], model[id][*offset]);
                    }
                }
                Op::Pin { idx } => {
                    if model.is_empty() { continue; }
                    let id = idx % model.len();
                    if let Some(h) = try_get(&pool, id as u32, !pinned.is_empty()) {
                        pinned.push(h);
                    }
                }
                Op::UnpinAll => pinned.clear(),
                Op::ClearCache => pool.clear_cache().expect("clear"),
                Op::Flush => pool.flush().expect("flush"),
            }
        }

        // Final: every page readable with exactly the model's contents,
        // both through the pool and from raw storage after a flush.
        drop(pinned);
        pool.flush().expect("final flush");
        for (id, expected) in model.iter().enumerate() {
            let h = pool.get(id as u32).expect("get");
            prop_assert_eq!(&*h.read(), expected.as_slice());
        }
        let mut storage = pool.into_storage().expect("into_storage");
        use nok_pager::Storage;
        let mut buf = vec![0u8; page_size];
        for (id, expected) in model.iter().enumerate() {
            storage.read_page(id as u32, &mut buf).expect("raw read");
            prop_assert_eq!(&buf, expected);
        }
    }

    /// Pinned handles must keep observing their frame even under heavy
    /// eviction pressure from a tiny pool.
    #[test]
    fn pinned_frames_are_stable(npages in 4u32..20) {
        let pool = BufferPool::with_capacity(MemStorage::with_page_size(64), 2);
        for _ in 0..npages {
            pool.allocate().expect("allocate");
        }
        pool.flush().expect("flush");
        let pinned = pool.get(0).expect("pin");
        pinned.write()[7] = 99;
        for i in 1..npages {
            pool.get(i).expect("churn");
        }
        prop_assert_eq!(pinned.read()[7], 99);
        // And the write survives into storage.
        drop(pinned);
        pool.flush().expect("flush2");
        let h = pool.get(0).expect("reget");
        prop_assert_eq!(h.read()[7], 99);
    }
}
