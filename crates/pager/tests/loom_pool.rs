//! Loom model of buffer-pool pin/evict racing a reader.
//!
//! Mirrors the `BufferPool` shard protocol (crates/pager/src/pool.rs):
//! frames live behind a shard lock, a handle pins a frame by cloning its
//! `Arc`, and `evict_one` may only evict a frame that is unpinned *when
//! re-checked under the shard's write lock*, writing dirty data back to
//! storage while still holding that lock. The properties modeled:
//!
//! 1. a pinned frame is never evicted out from under its holder,
//! 2. a dirty frame's data is never lost — whatever a writer stored is in
//!    the frame or in storage afterwards, never dropped on the floor.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p nok-pager --test loom_pool`
#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Mutex, RwLock};
use loom::thread;

struct Frame {
    data: RwLock<u64>,
    dirty: AtomicBool,
}

struct Pool {
    /// One shard holding at most one frame — enough to exercise the races.
    shard: Mutex<Option<Arc<Frame>>>,
    storage: Mutex<u64>,
}

impl Pool {
    fn new(initial: u64) -> Self {
        Pool {
            shard: Mutex::new(Some(Arc::new(Frame {
                data: RwLock::new(initial),
                dirty: AtomicBool::new(false),
            }))),
            storage: Mutex::new(initial),
        }
    }

    /// Mirrors `BufferPool::get`'s fast path: pin by cloning under the
    /// shard lock, miss by reading storage.
    fn pin(&self) -> Option<Arc<Frame>> {
        self.shard.lock().unwrap().as_ref().map(Arc::clone)
    }

    /// Mirrors `evict_one`: re-check the pin under the shard's write lock,
    /// write dirty data back while still holding it. Returns whether the
    /// frame was evicted.
    fn evict(&self) -> bool {
        let mut shard = self.shard.lock().unwrap();
        let evictable = shard
            .as_ref()
            .is_some_and(|frame| Arc::strong_count(frame) == 1);
        if !evictable {
            return false; // someone pinned it between the scan and the lock
        }
        let frame = shard.take().expect("checked above");
        if frame.dirty.load(Ordering::Acquire) {
            *self.storage.lock().unwrap() = *frame.data.read().unwrap();
        }
        true
    }

    /// The value a fresh reader would observe: cached frame, else storage.
    fn read_through(&self) -> u64 {
        match self.pin() {
            Some(frame) => *frame.data.read().unwrap(),
            None => *self.storage.lock().unwrap(),
        }
    }
}

/// A writer (pin → mutate → mark dirty) racing the evictor: the write must
/// never be lost, whether it lands before or after the eviction decision.
#[test]
fn evict_racing_writer_never_loses_the_write() {
    loom::model(|| {
        let pool = Arc::new(Pool::new(7));

        let writer = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || match pool.pin() {
                Some(frame) => {
                    *frame.data.write().unwrap() = 8;
                    frame.dirty.store(true, Ordering::Release);
                    true
                }
                None => false, // evicted first; a real writer would re-get
            })
        };
        let evictor = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.evict())
        };

        let wrote = writer.join().unwrap();
        let evicted = evictor.join().unwrap();

        let observed = pool.read_through();
        if wrote {
            assert_eq!(observed, 8, "write lost (evicted={evicted})");
        } else {
            assert_eq!(observed, 7);
        }
    });
}

/// While a reader holds a pin, eviction must refuse: the pin re-check under
/// the shard lock is what makes the scan-then-evict window safe.
#[test]
fn pinned_frame_is_never_evicted() {
    loom::model(|| {
        let pool = Arc::new(Pool::new(3));

        // Pin on the main thread and hold it across the evictor's run.
        let pinned = pool.pin().expect("frame present");

        let evictor = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.evict())
        };
        let reader = {
            let pinned = Arc::clone(&pinned);
            thread::spawn(move || *pinned.data.read().unwrap())
        };

        let evicted = evictor.join().unwrap();
        let seen = reader.join().unwrap();

        assert!(!evicted, "evicted a pinned frame");
        assert_eq!(seen, 3);
        assert!(
            pool.pin().is_some(),
            "frame must still be cached while pinned"
        );
    });
}
