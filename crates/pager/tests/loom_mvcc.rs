//! Loom model of MVCC snapshot publish / pin / retire.
//!
//! Mirrors the `EpochArc` two-slot epoch pointer (crates/pager/src/mvcc.rs):
//! the control word packs `(pin_count << 16) | active_slot`; `pin` bumps the
//! count, clones out of the active slot, and repays one unit of debt;
//! `swing` installs the next generation in the inactive slot, swaps the
//! control word, and drains — waits until the old slot's repaid debt equals
//! the pins it handed out — before taking the retired value back. The shim
//! has no `UnsafeCell`, so the slot value lives behind a `Mutex` standing in
//! for the unsynchronized read; the pin/swing/drain choreography on `ctrl`
//! and `debt` is modeled verbatim. Properties:
//!
//! 1. a pinned reader never observes a torn (half-built) or reclaimed
//!    generation, even while the writer publishes more of them,
//! 2. a writer that dies after building generation N+1 but *before* the
//!    epoch swing leaves generation N published and intact,
//! 3. a deliberately buggy variant that frees the retired slot without
//!    draining the debt is caught by the model.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p nok-pager --test loom_mvcc`
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

const SLOT_BITS: u32 = 16;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Stand-in for `DbGeneration`: `payload` is derived from `epoch`
/// (`epoch * 10 + 7`), so a half-built generation — installed with
/// `payload == 0` before the second build step — is detectable.
struct Gen {
    epoch: u64,
    payload: u64,
}

impl Gen {
    fn complete(epoch: u64) -> Gen {
        Gen {
            epoch,
            payload: epoch * 10 + 7,
        }
    }

    fn is_torn(&self) -> bool {
        self.payload != self.epoch * 10 + 7
    }
}

struct Slot {
    /// Mutex-mirror of the `UnsafeCell<Option<Arc<T>>>` slot value.
    value: Mutex<Option<Arc<Gen>>>,
    debt: AtomicU64,
}

struct Cell {
    ctrl: AtomicU64,
    slots: [Slot; 2],
}

impl Cell {
    fn new(initial: Gen) -> Cell {
        Cell {
            ctrl: AtomicU64::new(0),
            slots: [
                Slot {
                    value: Mutex::new(Some(Arc::new(initial))),
                    debt: AtomicU64::new(0),
                },
                Slot {
                    value: Mutex::new(None),
                    debt: AtomicU64::new(0),
                },
            ],
        }
    }

    /// Mirrors `EpochArc::pin`: register in the control word, clone out of
    /// the selected slot, repay one unit of debt.
    fn pin(&self) -> Option<Arc<Gen>> {
        let c = self.ctrl.fetch_add(1 << SLOT_BITS, Ordering::Acquire);
        let s = (c & SLOT_MASK) as usize;
        let v = self.slots[s].value.lock().expect("slot").clone();
        self.slots[s].debt.fetch_add(1, Ordering::Release);
        v
    }

    /// Mirrors `EpochArc::swing`, with the generation *build* made visible
    /// as two steps into the inactive slot (a half-built value first): the
    /// protocol's claim is that no reader can select that slot until the
    /// control-word swap publishes it.
    fn swing(&self, epoch: u64) -> Option<Arc<Gen>> {
        let ns = ((self.ctrl.load(Ordering::Acquire) & SLOT_MASK) ^ 1) as usize;
        *self.slots[ns].value.lock().expect("slot") = Some(Arc::new(Gen { epoch, payload: 0 }));
        thread::yield_now();
        *self.slots[ns].value.lock().expect("slot") = Some(Arc::new(Gen::complete(epoch)));
        let old = self.ctrl.swap(ns as u64, Ordering::AcqRel);
        let pins = old >> SLOT_BITS;
        let os = (old & SLOT_MASK) as usize;
        while self.slots[os].debt.load(Ordering::Acquire) < pins {
            thread::yield_now();
        }
        self.slots[os].debt.store(0, Ordering::Release);
        self.slots[os].value.lock().expect("slot").take()
    }

    /// A writer that panics after building generation `epoch` but before
    /// the control-word swap: the build steps run, the publish does not.
    fn swing_abandoned_before_publish(&self, epoch: u64) {
        let ns = ((self.ctrl.load(Ordering::Acquire) & SLOT_MASK) ^ 1) as usize;
        *self.slots[ns].value.lock().expect("slot") = Some(Arc::new(Gen { epoch, payload: 0 }));
        thread::yield_now();
        *self.slots[ns].value.lock().expect("slot") = Some(Arc::new(Gen::complete(epoch)));
        // ... crash: no ctrl.swap, no drain, no take.
    }

    /// Deliberately buggy swing: takes the retired value back *without*
    /// draining the debt, so a reader that already registered its pin can
    /// find the slot empty — the model's stand-in for a use-after-free.
    fn swing_buggy_early_free(&self, epoch: u64) -> Option<Arc<Gen>> {
        let ns = ((self.ctrl.load(Ordering::Acquire) & SLOT_MASK) ^ 1) as usize;
        *self.slots[ns].value.lock().expect("slot") = Some(Arc::new(Gen::complete(epoch)));
        let old = self.ctrl.swap(ns as u64, Ordering::AcqRel);
        let os = (old & SLOT_MASK) as usize;
        // BUG: no `while debt < pins` drain before reclaiming the slot.
        let freed = self.slots[os].value.lock().expect("slot").take();
        self.slots[os].debt.store(0, Ordering::Release);
        freed
    }
}

/// Readers pinning while the writer publishes two more generations: every
/// pin must return a complete generation (never the half-built value in the
/// inactive slot, never an emptied slot), epochs seen by one reader must be
/// non-decreasing, and a guard held across later publishes must still read
/// consistently — the retired generation outlives the swing for as long as
/// anyone pins it.
#[test]
fn pinned_readers_never_observe_torn_or_reclaimed_generations() {
    loom::model(|| {
        let cell = Arc::new(Cell::new(Gen::complete(0)));

        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let retired = cell.swing(1).expect("generation 0 present");
                assert_eq!(retired.epoch, 0);
                assert!(!retired.is_torn(), "retired generation torn");
                cell.swing(2).expect("generation 1 present")
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let first = cell.pin().expect("published generation");
                    assert!(!first.is_torn(), "pinned a torn generation");
                    let second = cell.pin().expect("published generation");
                    assert!(!second.is_torn(), "pinned a torn generation");
                    assert!(
                        second.epoch >= first.epoch,
                        "epoch went backwards: {} then {}",
                        first.epoch,
                        second.epoch
                    );
                    // The first guard is still alive here: whatever the
                    // writer retired meanwhile, its contents must be intact.
                    assert!(!first.is_torn(), "held guard saw reclaimed data");
                    first.epoch
                })
            })
            .collect();

        let last_retired = writer.join().expect("writer");
        assert_eq!(last_retired.epoch, 1);
        for r in readers {
            let e = r.join().expect("reader");
            assert!(e <= 2);
        }
        // Quiescent: the published generation is the final one.
        let now = cell.pin().expect("published generation");
        assert_eq!(now.epoch, 2);
        assert!(!now.is_torn());
    });
}

/// The writer dies after building generation 1 but before the epoch swing:
/// generation 0 stays published and complete — the commit point and the
/// visibility point coincide at the swap, so an unswapped build is invisible.
#[test]
fn writer_panic_before_epoch_swing_leaves_old_generation_intact() {
    loom::model(|| {
        let cell = Arc::new(Cell::new(Gen::complete(0)));

        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.swing_abandoned_before_publish(1))
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let g = cell.pin().expect("published generation");
                assert_eq!(g.epoch, 0, "unpublished generation became visible");
                assert!(!g.is_torn(), "published generation torn by dead writer");
            })
        };

        writer.join().expect("writer");
        reader.join().expect("reader");
        let after = cell.pin().expect("published generation");
        assert_eq!(after.epoch, 0);
        assert!(!after.is_torn());
    });
}

/// The early-free bug — reclaiming the retired slot without draining the
/// debt — must be observable: under some schedule a reader that registered
/// its pin before the swap finds the slot already emptied. This is the
/// model's proof that the drain loop in `swing` is load-bearing.
#[test]
fn early_free_without_debt_drain_is_caught_by_the_model() {
    use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
    static CAUGHT: AtomicBool = AtomicBool::new(false);

    loom::model(|| {
        let cell = Arc::new(Cell::new(Gen::complete(0)));

        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.pin().is_none())
        };
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.swing_buggy_early_free(1))
        };

        if reader.join().expect("reader") {
            // A registered pin found its slot reclaimed: with the real
            // `UnsafeCell` slot this is a use-after-free.
            CAUGHT.store(true, StdOrdering::SeqCst);
        }
        let _ = writer.join().expect("writer");
    });

    assert!(
        CAUGHT.load(StdOrdering::SeqCst),
        "no schedule caught the early free; the model lost its teeth"
    );
}
