//! Streaming ≡ stored: for every streamable workload query on every
//! dataset, the streaming matcher must emit exactly the stored engine's
//! result set (the paper's §4.2 claim that the storage format *is* the SAX
//! stream, made checkable).

use nok_core::{CoreError, StreamMatcher, XmlDb};
use nok_datagen::{generate, workload, DatasetKind};

fn check(kind: DatasetKind) {
    let ds = generate(kind, 0.01);
    let db = XmlDb::build_in_memory(&ds.xml).expect("build");
    let mut streamable = 0;
    for (i, spec) in workload(kind) {
        let Some(spec) = spec else { continue };
        for path in [&spec.path, &spec.descendant_variant] {
            let hits = match StreamMatcher::run_str(path, &ds.xml) {
                Ok(h) => h,
                Err(CoreError::StreamUnsupported(_)) => continue,
                Err(e) => panic!("stream error on {path}: {e}"),
            };
            streamable += 1;
            let mut stream_deweys: Vec<String> = hits.iter().map(|h| h.dewey.to_string()).collect();
            stream_deweys.sort();
            let mut stored: Vec<String> = db
                .query(path)
                .expect("stored query")
                .iter()
                .map(|m| m.dewey.to_string())
                .collect();
            stored.sort();
            assert_eq!(
                stream_deweys,
                stored,
                "stream != stored on {} Q{i}: {path}",
                kind.name()
            );
        }
    }
    assert!(
        streamable > 8,
        "{}: expected most workload queries to stream, got {streamable}",
        kind.name()
    );
}

#[test]
fn author_streaming_equivalence() {
    check(DatasetKind::Author);
}

#[test]
fn catalog_streaming_equivalence() {
    check(DatasetKind::Catalog);
}

#[test]
fn treebank_streaming_equivalence() {
    check(DatasetKind::Treebank);
}

#[test]
fn dblp_streaming_equivalence() {
    check(DatasetKind::Dblp);
}

/// Incremental feeding must agree with whole-document runs.
#[test]
fn incremental_matches_batch() {
    let ds = generate(DatasetKind::Address, 0.01);
    let query = r#"//address[keyword="needle-mod"]/city"#;
    let batch = StreamMatcher::run_str(query, &ds.xml).expect("batch");
    let mut m = StreamMatcher::new(query).expect("compile");
    let mut incremental = Vec::new();
    for ev in nok_xml::Reader::content_only(&ds.xml) {
        incremental.extend(m.on_event(&ev.expect("event")).expect("on_event"));
    }
    assert_eq!(incremental.len(), batch.len());
    assert_eq!(
        incremental
            .iter()
            .map(|h| h.dewey.to_string())
            .collect::<Vec<_>>(),
        batch
            .iter()
            .map(|h| h.dewey.to_string())
            .collect::<Vec<_>>()
    );
}
