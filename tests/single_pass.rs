//! Verification of **Proposition 1** (paper §5): one physical NoK matching
//! run reads every structural page at most once, and the header-directory
//! optimization keeps `FOLLOWING-SIBLING` from touching pages it can skip.
//!
//! The buffer pool's physical-read counter is the measured quantity: with a
//! cold cache and a pool large enough to avoid re-reads, `physical_reads ≤
//! structural pages` must hold for a full single-start match.

use std::sync::Arc;

use nok_core::cursor;
use nok_core::nok::{NokMatcher, TreeAccess};
use nok_core::pattern_tree::PatternTree;
use nok_core::physical::PhysAccess;
use nok_core::store::{BuildOptions, StructStore};
use nok_core::{TagDict, XmlDb};
use nok_datagen::{generate, DatasetKind};
use nok_pager::{BufferPool, MemStorage};
use nok_xml::Reader;

/// Build just the structural store with a small page size so documents span
/// many pages.
fn small_page_store(xml: &str, page_size: usize) -> (StructStore<MemStorage>, TagDict) {
    let pool = Arc::new(BufferPool::with_capacity(
        MemStorage::with_page_size(page_size),
        1 << 20, // effectively unbounded: every page read at most once
    ));
    let mut dict = TagDict::new();
    let store = StructStore::build(
        pool,
        Reader::content_only(xml),
        &mut dict,
        BuildOptions::default(),
        &mut (),
    )
    .expect("build");
    (store, dict)
}

#[test]
fn proposition1_single_start_reads_each_page_once() {
    let ds = generate(DatasetKind::Catalog, 0.01);
    // Build the full database (for the matcher machinery) with small pages.
    let db = XmlDb::build_in_memory_with(&ds.xml, BuildOptions::default(), 256).expect("build");
    let pages = db.store().page_count() as u64;
    assert!(pages > 50, "document must span many pages ({pages})");

    // One NoK matching run from the root over the whole document: the
    // pattern visits every record ([title] exists on each item).
    let tree = PatternTree::parse("/catalog/item[title][publisher]").expect("pattern");
    let part = tree.partition();
    let matcher = NokMatcher::new(&part, 0);
    let access = PhysAccess::new(db.store(), db.dict(), db.bt_id(), db.data_cell());

    db.store().invalidate_decoded(None);
    db.store().pool().clear_cache().expect("clear");
    db.store().pool().stats().reset();
    let mut hook = nok_core::nok::accept_all();
    let out = matcher
        .match_at(&access, &access.doc_node(), &mut hook)
        .expect("match");
    assert!(out.is_some(), "pattern matches the document");

    let reads = db.store().pool().stats().physical_reads();
    assert!(
        reads <= pages,
        "Proposition 1 violated: {reads} physical reads > {pages} pages"
    );
    // And it genuinely touched the document, not a cached copy.
    assert!(reads > 0, "the run must perform real page reads");
}

#[test]
fn header_directory_skips_pages_for_sibling_jumps() {
    // A first child with a huge subtree followed by one sibling: finding
    // the sibling must not read the subtree's pages.
    let mut xml = String::from("<r><bulk>");
    for i in 0..5000 {
        xml.push_str(&format!("<x><y>{i}</y></x>"));
    }
    xml.push_str("</bulk><target/></r>");
    let (store, dict) = small_page_store(&xml, 256);
    assert!(store.page_count() > 100);

    let root = store.root().unwrap();
    let bulk = cursor::first_child(&store, root).unwrap().unwrap();
    store.invalidate_decoded(None);
    store.pool().clear_cache().unwrap();
    store.pool().stats().reset();
    let target = cursor::following_sibling(&store, bulk).unwrap().unwrap();
    assert_eq!(
        store.tag_at(target).unwrap(),
        dict.lookup("target").unwrap()
    );
    let reads = store.pool().stats().physical_reads();
    assert!(
        reads <= 3,
        "sibling search should skip the bulk subtree via headers, read {reads} of {}",
        store.page_count()
    );
}

#[test]
fn full_scan_touches_each_page_once() {
    // The naive starting-point strategy (document scan) is also single-pass.
    let ds = generate(DatasetKind::Author, 0.01);
    let db = XmlDb::build_in_memory_with(&ds.xml, BuildOptions::default(), 512).expect("build");
    let pages = db.store().page_count() as u64;
    db.store().invalidate_decoded(None);
    db.store().pool().clear_cache().unwrap();
    db.store().pool().stats().reset();
    let mut count = 0u64;
    for item in nok_core::cursor::DocScan::new(db.store()) {
        item.expect("scan");
        count += 1;
    }
    assert_eq!(count, db.node_count());
    let reads = db.store().pool().stats().physical_reads();
    assert!(reads <= pages, "{reads} reads for {pages} pages");
}
