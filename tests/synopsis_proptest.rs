//! Property-based testing of the synopsis block codec.
//!
//! * **Round-trip**: any synopsis assembled through the mutation API
//!   encodes to a canonical block that decodes back to the same counters,
//!   path counts, and stored node count — and re-encodes byte-identically.
//! * **Adversarial input**: `from_bytes` over truncations, single-byte
//!   corruptions, and arbitrary byte soup never panics; it answers
//!   `Some(..)` only for blocks that re-encode consistently.

use proptest::prelude::*;

use nok_core::{Synopsis, TagCode};

/// A random synopsis built exclusively through the public mutation API,
/// exactly as build/update do, paired with a random stored node count.
fn arb_synopsis() -> BoxedStrategy<(u64, Synopsis)> {
    let paths = proptest::collection::vec(
        (
            proptest::collection::vec(0u16..12, 1..6), // root path, as tag codes
            1u64..500,                                 // node count on that path
        ),
        0..24,
    );
    let tags = proptest::collection::vec((0u16..12, 1u64..500), 0..12);
    let values = proptest::collection::vec((any::<u64>(), 1u64..500), 0..12);
    (paths, tags, values, any::<u64>())
        .prop_map(|(paths, tags, values, node_count)| {
            let mut s = Synopsis::new();
            for (path, n) in paths {
                let tags: Vec<TagCode> = path.into_iter().map(TagCode).collect();
                s.add_path_count(&tags, n);
            }
            for (t, n) in tags {
                s.add_tag_count(TagCode(t), n);
            }
            for (h, n) in values {
                s.add_value_count(h, n);
            }
            (node_count, s)
        })
        .boxed()
}

proptest! {
    #[test]
    fn round_trips_through_the_block_codec(case in arb_synopsis()) {
        let (node_count, s) = case;
        let bytes = s.to_bytes(node_count);
        let (decoded_count, decoded) =
            Synopsis::from_bytes(&bytes).expect("canonical block must decode");
        prop_assert_eq!(decoded_count, node_count);
        // Tag and value counters survive exactly.
        for (t, c) in s.tag_counts() {
            prop_assert_eq!(decoded.tag_count(t), c);
        }
        prop_assert_eq!(decoded.distinct_value_count(), s.distinct_value_count());
        // Path counts survive exactly, in both directions.
        prop_assert_eq!(decoded.distinct_paths(), s.distinct_paths());
        let mut original = Vec::new();
        s.paths().for_each_path(|tags, c| original.push((tags.to_vec(), c)));
        let mut round_tripped = Vec::new();
        decoded
            .paths()
            .for_each_path(|tags, c| round_tripped.push((tags.to_vec(), c)));
        prop_assert_eq!(original, round_tripped);
        // The encoding is canonical: decode-then-encode is byte-identical.
        prop_assert_eq!(decoded.to_bytes(decoded_count), bytes);
    }

    #[test]
    fn truncations_never_panic(case in arb_synopsis(), cut in any::<u64>()) {
        let (node_count, s) = case;
        let bytes = s.to_bytes(node_count);
        // Every strict prefix is rejected (without panicking); the header
        // alone is >= 18 bytes, so the block is never empty.
        let cut = (cut as usize) % bytes.len();
        prop_assert!(Synopsis::from_bytes(&bytes[..cut]).is_none());
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        prop_assert!(Synopsis::from_bytes(&extended).is_none());
    }

    #[test]
    fn corruptions_never_panic(case in arb_synopsis(), pos in any::<u64>(), xor in 1u8..=255) {
        let (node_count, s) = case;
        let mut bytes = s.to_bytes(node_count);
        let i = (pos as usize) % bytes.len();
        bytes[i] ^= xor;
        // Must not panic; if it still decodes (the flipped byte landed in
        // a count), the result must re-encode without panicking either.
        if let Some((nc, decoded)) = Synopsis::from_bytes(&bytes) {
            let _ = decoded.to_bytes(nc);
        }
    }

    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Synopsis::from_bytes(&bytes);
    }
}
