//! Update torture tests: long random sequences of inserts and deletes on a
//! real dataset must leave the store exactly equivalent to a database built
//! fresh from the resulting document — structure, indexes, and values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nok_core::naive::NaiveEvaluator;
use nok_core::{Dewey, XmlDb};
use nok_datagen::{generate, DatasetKind};
use nok_xml::Document;

/// Compare the updated database against a fresh oracle built from the
/// expected document.
fn assert_matches_oracle(db: &XmlDb<nok_pager::MemStorage>, expected_xml: &str, queries: &[&str]) {
    let doc = Document::parse(expected_xml).expect("parse expected");
    let oracle = NaiveEvaluator::new(&doc);
    for q in queries {
        let got: Vec<String> = db
            .query(q)
            .expect("query")
            .iter()
            .map(|m| m.dewey.to_string())
            .collect();
        let want: Vec<String> = oracle
            .eval_str(q)
            .expect("oracle")
            .iter()
            .map(|n| oracle.dewey(n).to_string())
            .collect();
        assert_eq!(got, want, "divergence on {q}");
    }
}

#[test]
fn random_insert_delete_churn_stays_consistent() {
    let mut rng = StdRng::seed_from_u64(99);
    // A simple mirror document we mutate in lockstep with the database.
    let mut items: Vec<(String, String)> = (0..30)
        .map(|i| (format!("n{i}"), format!("v{i}")))
        .collect();
    let render = |items: &[(String, String)]| {
        let mut s = String::from("<list>");
        for (n, v) in items {
            s.push_str(&format!("<item><name>{n}</name><val>{v}</val></item>"));
        }
        s.push_str("</list>");
        s
    };
    let mut db = XmlDb::build_in_memory(&render(&items)).expect("build");

    for round in 0..60 {
        if items.is_empty() || rng.gen_bool(0.6) {
            // Insert at the end (the supported insert position).
            let n = format!("new{round}");
            let v = format!("val{round}");
            db.insert_last_child(
                &Dewey::root(),
                &format!("<item><name>{n}</name><val>{v}</val></item>"),
            )
            .expect("insert");
            items.push((n, v));
        } else {
            // Delete a random item; siblings re-label.
            let idx = rng.gen_range(0..items.len());
            db.delete_subtree(&Dewey::from_components(vec![0, idx as u32]))
                .expect("delete");
            items.remove(idx);
        }
        if round % 10 == 9 {
            let expected = render(&items);
            assert_matches_oracle(
                &db,
                &expected,
                &[
                    "/list/item",
                    "/list/item/name",
                    "//val",
                    "/list/item[name]/val",
                ],
            );
        }
    }
    // Final deep check including value lookups.
    let expected = render(&items);
    assert_matches_oracle(&db, &expected, &["/list/item", "//name", "//val"]);
    let hits = db.query("/list/item/name").expect("query");
    let got: Vec<String> = hits
        .iter()
        .map(|m| db.value_of(m).unwrap().unwrap())
        .collect();
    let want: Vec<String> = items.iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(got, want, "values drifted after churn");
}

#[test]
fn updates_on_generated_dataset() {
    let ds = generate(DatasetKind::Author, 0.01);
    let mut db = XmlDb::build_in_memory(&ds.xml).expect("build");
    let before = db.query("/authors/author").expect("query").len();

    // Add five authors carrying a brand-new tag and a needle value.
    for i in 0..5 {
        db.insert_last_child(
            &Dewey::root(),
            &format!(
                "<author id=\"x{i}\"><name>Added Person</name><badge>gold</badge>\
                 <keyword>needle-high</keyword><note>needle-high</note></author>"
            ),
        )
        .expect("insert");
    }
    assert_eq!(
        db.query("/authors/author").expect("query").len(),
        before + 5
    );
    // New tag is queryable (dictionary grew).
    assert_eq!(db.query("//badge").expect("query").len(), 5);
    // Value index picked up the new needles: 3 original + 5 new.
    assert_eq!(
        db.query(r#"/authors/author[keyword="needle-high"]"#)
            .expect("query")
            .len(),
        8
    );

    // Delete the first two originals: every index must follow the shift.
    db.delete_subtree(&Dewey::from_components(vec![0, 0]))
        .expect("delete");
    db.delete_subtree(&Dewey::from_components(vec![0, 0]))
        .expect("delete");
    assert_eq!(
        db.query("/authors/author").expect("query").len(),
        before + 3
    );
    // Dewey of the first author is 0.0 again.
    let first = &db.query("/authors/author").expect("query")[0];
    assert_eq!(first.dewey, Dewey::from_components(vec![0, 0]));
}

#[test]
fn page_splits_during_update_keep_proposition1() {
    // Small pages force splits; after heavy inserts, a full match must
    // still read each page at most once.
    let mut db = nok_core::XmlDb::build_in_memory_with(
        "<r><seed/></r>",
        nok_core::BuildOptions::default(),
        128,
    )
    .expect("build");
    for i in 0..200 {
        db.insert_last_child(&Dewey::root(), &format!("<rec><f>{i}</f></rec>"))
            .expect("insert");
    }
    let pages = db.store().page_count() as u64;
    assert!(pages > 5, "splits must have produced pages ({pages})");
    db.store().invalidate_decoded(None);
    db.store().pool().clear_cache().expect("clear");
    db.store().pool().stats().reset();
    let hits = db.query("/r/rec[f]").expect("query");
    assert_eq!(hits.len(), 200);
    let reads = db.store().pool().stats().physical_reads();
    assert!(
        reads <= pages,
        "{reads} physical reads exceed {pages} pages after splits"
    );
}
