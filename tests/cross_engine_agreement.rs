//! The workspace's central correctness invariant: on every dataset and
//! every workload query (plus the `//` variants), all four engines — NoK,
//! DI, NavDOM, TwigStack — return exactly the result set of the naive
//! oracle.

use nok_bench::EngineSet;
use nok_core::naive::NaiveEvaluator;
use nok_datagen::{generate, workload, DatasetKind};
use nok_xml::Document;

fn check_dataset(kind: DatasetKind) {
    let ds = generate(kind, 0.01); // floor: 800 records
    let set = EngineSet::build(&ds.xml).expect("engines build");
    let doc = Document::parse(&ds.xml).expect("parse");
    let oracle = NaiveEvaluator::new(&doc);
    for (i, spec) in workload(kind) {
        let Some(spec) = spec else { continue };
        for path in [&spec.path, &spec.descendant_variant] {
            let expected: Vec<String> = oracle
                .eval_str(path)
                .expect("oracle eval")
                .iter()
                .map(|n| oracle.dewey(n).to_string())
                .collect();
            for engine in set.all() {
                let Ok(got) = engine.eval(path) else {
                    continue; // engine does not implement this query (NI)
                };
                let got: Vec<String> = got.iter().map(|d| d.to_string()).collect();
                assert_eq!(
                    got,
                    expected,
                    "{} disagrees with oracle on {} Q{i}: {path}",
                    engine.name(),
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn author_all_engines_match_oracle() {
    check_dataset(DatasetKind::Author);
}

#[test]
fn address_all_engines_match_oracle() {
    check_dataset(DatasetKind::Address);
}

#[test]
fn catalog_all_engines_match_oracle() {
    check_dataset(DatasetKind::Catalog);
}

#[test]
fn treebank_all_engines_match_oracle() {
    check_dataset(DatasetKind::Treebank);
}

#[test]
fn dblp_all_engines_match_oracle() {
    check_dataset(DatasetKind::Dblp);
}

/// Ad-hoc queries beyond the Table 2 grid, exercising deep recursion and
/// repeated tags on the treebank-like data.
#[test]
fn treebank_adhoc_structural_queries() {
    let ds = generate(DatasetKind::Treebank, 0.01);
    let set = EngineSet::build(&ds.xml).expect("engines build");
    let doc = Document::parse(&ds.xml).expect("parse");
    let oracle = NaiveEvaluator::new(&doc);
    for q in [
        "/treebank/s/np",
        "//np//vp",
        "//s[np][vp]",
        "//cat0",
        "//cat1//cat2",
        "/treebank/s[pp]/np",
    ] {
        let expected: Vec<String> = oracle
            .eval_str(q)
            .unwrap()
            .iter()
            .map(|n| oracle.dewey(n).to_string())
            .collect();
        for engine in set.all() {
            let Ok(got) = engine.eval(q) else { continue };
            let got: Vec<String> = got.iter().map(|d| d.to_string()).collect();
            assert_eq!(got, expected, "{} on {q}", engine.name());
        }
    }
}
