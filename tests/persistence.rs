//! On-disk persistence: create a database directory, drop everything,
//! reopen, and get identical answers — including after updates.

use nok_core::{Dewey, XmlDb};
use nok_datagen::{generate, workload, DatasetKind};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nok-persist-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn reopen_answers_workload_identically() {
    let ds = generate(DatasetKind::Author, 0.01);
    let dir = temp_dir("author");
    let fresh_answers: Vec<(String, Vec<String>)> = {
        let db = XmlDb::create_on_disk(&dir, &ds.xml).expect("create");
        workload(ds.kind)
            .into_iter()
            .filter_map(|(_, spec)| spec)
            .map(|spec| {
                let hits = db.query(&spec.path).expect("query");
                (
                    spec.path.clone(),
                    hits.iter().map(|m| m.dewey.to_string()).collect(),
                )
            })
            .collect()
    };
    // Everything dropped; reopen from the files alone.
    let db = XmlDb::open_dir(&dir).expect("open");
    for (path, expected) in fresh_answers {
        let hits = db.query(&path).expect("query after reopen");
        let got: Vec<String> = hits.iter().map(|m| m.dewey.to_string()).collect();
        assert_eq!(got, expected, "answers changed after reopen for {path}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn updates_persist_across_reopen() {
    let dir = temp_dir("upd");
    {
        let mut db = XmlDb::create_on_disk(
            &dir,
            r#"<inventory><item sku="a1"><name>bolt</name></item></inventory>"#,
        )
        .expect("create");
        db.insert_last_child(
            &Dewey::root(),
            r#"<item sku="b2"><name>nut</name><qty>7</qty></item>"#,
        )
        .expect("insert");
        db.flush().expect("flush");
    }
    let db = XmlDb::open_dir(&dir).expect("open");
    let hits = db.query("//item/name").expect("query");
    let names: Vec<String> = hits
        .iter()
        .map(|m| db.value_of(m).unwrap().unwrap())
        .collect();
    assert_eq!(names, vec!["bolt", "nut"]);
    let qty = db.query(r#"//item[@sku="b2"]/qty"#).expect("query");
    assert_eq!(db.value_of(&qty[0]).unwrap().unwrap(), "7");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn values_and_stats_survive_reopen() {
    let ds = generate(DatasetKind::Catalog, 0.01);
    let dir = temp_dir("cat");
    let (nodes, tags) = {
        let db = XmlDb::create_on_disk(&dir, &ds.xml).expect("create");
        let st = db.stats(ds.xml.len() as u64).expect("stats");
        (st.nodes, st.tags)
    };
    let db = XmlDb::open_dir(&dir).expect("open");
    let st = db.stats(ds.xml.len() as u64).expect("stats");
    assert_eq!(st.nodes, nodes);
    assert_eq!(st.tags, tags);
    // A value-indexed query must still route through B+v after reopen.
    let hits = db
        .query(r#"/catalog/item[keyword="needle-high"]"#)
        .expect("query");
    assert_eq!(hits.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}
