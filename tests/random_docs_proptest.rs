//! Property-based testing: random documents × random path expressions.
//!
//! * The NoK engine must agree with the naive oracle on every generated
//!   (document, query) pair — this is the strongest correctness property in
//!   the suite, covering axis combinations, predicates and values that the
//!   hand-written tests cannot enumerate.
//! * All baselines must agree too (on the queries they support).
//! * Documents must round-trip through the XML writer.
//! * Random update sequences must keep the store equivalent to a rebuild.

use proptest::prelude::*;

use nok_bench::EngineSet;
use nok_core::naive::NaiveEvaluator;
use nok_core::XmlDb;
use nok_xml::Document;

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALUES: [&str; 4] = ["x", "y", "zz", "42"];

/// A random element tree rendered directly to XML.
fn arb_subtree(depth: u32) -> BoxedStrategy<String> {
    let leaf = (
        0usize..TAGS.len(),
        proptest::option::of(0usize..VALUES.len()),
    )
        .prop_map(|(t, v)| match v {
            Some(v) => format!("<{0}>{1}</{0}>", TAGS[t], VALUES[v]),
            None => format!("<{}/>", TAGS[t]),
        });
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = prop::collection::vec(arb_subtree(depth - 1), 0..4);
    (
        0usize..TAGS.len(),
        inner,
        proptest::option::of(0usize..VALUES.len()),
    )
        .prop_map(|(t, kids, attr)| {
            let attr = match attr {
                Some(v) => format!(" k=\"{}\"", VALUES[v]),
                None => String::new(),
            };
            format!("<{0}{1}>{2}</{0}>", TAGS[t], attr, kids.concat())
        })
        .boxed()
}

fn arb_doc() -> impl Strategy<Value = String> {
    arb_subtree(3).prop_map(|inner| format!("<r>{inner}</r>"))
}

/// A random path expression over the same alphabet.
fn arb_query() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,        // '//' vs '/'
        0usize..TAGS.len() + 1, // tag or '*'
        proptest::option::of((
            0usize..TAGS.len(),
            proptest::option::of(0usize..VALUES.len()),
        )),
    )
        .prop_map(|(desc, t, pred)| {
            let axis = if desc { "//" } else { "/" };
            let name = if t == TAGS.len() { "*" } else { TAGS[t] };
            let pred = match pred {
                None => String::new(),
                Some((pt, None)) => format!("[{}]", TAGS[pt]),
                Some((pt, Some(pv))) => format!("[{}=\"{}\"]", TAGS[pt], VALUES[pv]),
            };
            format!("{axis}{name}{pred}")
        });
    prop::collection::vec(step, 1..4).prop_map(|steps| {
        let mut q = String::from("/r");
        for s in steps {
            q.push_str(&s);
        }
        q
    })
}

fn oracle_answer(xml: &str, query: &str) -> Vec<String> {
    let doc = Document::parse(xml).expect("parse");
    let oracle = NaiveEvaluator::new(&doc);
    oracle
        .eval_str(query)
        .expect("oracle eval")
        .iter()
        .map(|n| oracle.dewey(n).to_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nok_engine_agrees_with_oracle(xml in arb_doc(), query in arb_query()) {
        let expected = oracle_answer(&xml, &query);
        let db = XmlDb::build_in_memory(&xml).expect("build");
        let got: Vec<String> = db
            .query(&query)
            .expect("query")
            .iter()
            .map(|m| m.dewey.to_string())
            .collect();
        prop_assert_eq!(got, expected, "doc: {}", xml);
    }

    #[test]
    fn all_baselines_agree_with_oracle(xml in arb_doc(), query in arb_query()) {
        let expected = oracle_answer(&xml, &query);
        let set = EngineSet::build(&xml).expect("build");
        for engine in set.all() {
            if let Ok(res) = engine.eval(&query) {
                let got: Vec<String> = res.iter().map(|d| d.to_string()).collect();
                prop_assert_eq!(&got, &expected, "{} on {} over {}", engine.name(), query, xml);
            }
        }
    }

    #[test]
    fn documents_round_trip_through_writer(xml in arb_doc()) {
        let doc = Document::parse(&xml).expect("parse");
        let rendered = nok_xml::write_document(&doc);
        let doc2 = Document::parse(&rendered).expect("reparse");
        prop_assert_eq!(doc.len(), doc2.len());
        let evs1 = doc.to_events();
        let evs2 = doc2.to_events();
        prop_assert_eq!(evs1, evs2);
    }

    #[test]
    fn random_tail_inserts_keep_engine_consistent(
        xml in arb_doc(),
        extra in prop::collection::vec(arb_subtree(1), 1..4),
        query in arb_query(),
    ) {
        // Insert fragments as last children of the root, then compare the
        // engine against an oracle over the equivalent document.
        let mut db = XmlDb::build_in_memory(&xml).expect("build");
        let mut expected_xml = xml[..xml.len() - "</r>".len()].to_string();
        for frag in &extra {
            db.insert_last_child(&nok_core::Dewey::root(), frag).expect("insert");
            expected_xml.push_str(frag);
        }
        expected_xml.push_str("</r>");
        let expected = oracle_answer(&expected_xml, &query);
        let got: Vec<String> = db
            .query(&query)
            .expect("query")
            .iter()
            .map(|m| m.dewey.to_string())
            .collect();
        prop_assert_eq!(got, expected, "doc after inserts: {}", expected_xml);
    }
}
