//! Differential update fuzzing: seeded random insert/delete interleavings
//! over every generated dataset, cross-checked against the Naive oracle
//! and the storage-format analyzer after **every** step.
//!
//! The dataset XML is split into its top-level record subtrees and
//! re-serialized canonically (comments and PIs dropped, entities
//! re-escaped); the same canonical strings feed both the database build
//! and the string mirror, so the mirror document is byte-identical to
//! what the database was told. Each step either inserts a record from the
//! unused pool at the end of the root or deletes a random record, then:
//!
//! 1. `verify_db(VerifyOptions::strict())` must report zero violations
//!    (strict includes value-orphan and tag-order checks, which hold
//!    after updates thanks to tombstones and composite B+t keys), and
//! 2. a set of dataset-derived path queries must answer identically to
//!    [`NaiveEvaluator`] on the mirror document.
//!
//! The sweep runs all five datasets at structural page sizes 256, 1024,
//! and 4096 — small pages force splits and chain rewiring mid-workload.

use nok_core::naive::NaiveEvaluator;
use nok_core::{BuildOptions, Dewey, XmlDb};
use nok_datagen::{generate, DatasetKind};
use nok_pager::MemStorage;
use nok_verify::{verify_db, VerifyOptions};
use nok_xml::reader::parse_events;
use nok_xml::{Document, Event};

/// Structural page sizes the sweep exercises.
const PAGE_SIZES: &[usize] = &[256, 1024, 4096];
/// Records initially in the database; the rest of the pool feeds inserts.
const BASE_RECORDS: usize = 40;
/// Total records kept from each dataset (base + insert pool).
const KEEP_RECORDS: usize = 120;
/// Random update steps per (dataset, page size) combination.
const STEPS: usize = 12;

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*)
// ---------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Canonical record splitting
// ---------------------------------------------------------------------

fn esc_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn write_event(ev: &Event, out: &mut String) {
    match ev {
        Event::Start { name, attrs } => {
            out.push('<');
            out.push_str(name);
            for a in attrs {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                esc_into(&a.value, out);
                out.push('"');
            }
            out.push('>');
        }
        Event::End { name } => {
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        Event::Text(t) => esc_into(t, out),
        // Comments and PIs carry no queryable structure; dropping them on
        // both sides keeps the mirror and the database identical.
        Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
    }
}

/// A dataset decomposed into a canonical root wrapper plus its top-level
/// record subtrees, re-serialized so the mirror can be reassembled
/// byte-identically.
struct Split {
    root_open: String,
    root_close: String,
    /// Attribute nodes occupy the leading child indexes under the root,
    /// so record `j` lives at dewey `[0, root_attrs + j]`.
    root_attrs: u32,
    records: Vec<String>,
}

impl Split {
    fn render(&self, records: &[String]) -> String {
        let mut s = String::with_capacity(
            self.root_open.len()
                + self.root_close.len()
                + records.iter().map(String::len).sum::<usize>(),
        );
        s.push_str(&self.root_open);
        for r in records {
            s.push_str(r);
        }
        s.push_str(&self.root_close);
        s
    }
}

fn split_dataset(xml: &str, keep: usize) -> Split {
    let events = parse_events(xml).expect("parse dataset");
    let mut it = events.iter();
    let (root_open, root_name, root_attrs) = loop {
        match it.next().expect("dataset has a root element") {
            Event::Start { name, attrs } => {
                let mut s = String::new();
                write_event(
                    &Event::Start {
                        name: name.clone(),
                        attrs: attrs.clone(),
                    },
                    &mut s,
                );
                break (s, name.clone(), attrs.len() as u32);
            }
            _ => continue,
        }
    };

    let mut records = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ev in it {
        match ev {
            Event::Start { .. } => {
                depth += 1;
                write_event(ev, &mut cur);
            }
            Event::End { name } => {
                if depth == 0 {
                    assert_eq!(name, &root_name, "unbalanced dataset document");
                    break;
                }
                depth -= 1;
                write_event(ev, &mut cur);
                if depth == 0 {
                    records.push(std::mem::take(&mut cur));
                    if records.len() >= keep {
                        break;
                    }
                }
            }
            Event::Text(t) => {
                if depth == 0 {
                    // Inter-record whitespace; mixed content at the root
                    // would desynchronize the mirror's dewey numbering.
                    assert!(t.trim().is_empty(), "dataset has mixed content at the root");
                } else {
                    write_event(ev, &mut cur);
                }
            }
            Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
        }
    }
    assert!(
        records.len() > BASE_RECORDS,
        "dataset too small to fuzz ({} records)",
        records.len()
    );
    Split {
        root_open,
        root_close: format!("</{root_name}>"),
        root_attrs,
        records,
    }
}

/// Dataset-derived queries: the record path, a descendant sweep of the
/// record tag, and a descendant sweep of the record's first child tag.
fn derive_queries(split: &Split) -> Vec<String> {
    let root_name = split.root_open[1..]
        .split([' ', '>'])
        .next()
        .expect("root tag name")
        .to_string();
    let rec_events = parse_events(&split.records[0]).expect("parse record");
    let rec_tag = match &rec_events[0] {
        Event::Start { name, .. } => name.clone(),
        other => panic!("record does not start with an element: {other:?}"),
    };
    let mut queries = vec![format!("/{root_name}/{rec_tag}"), format!("//{rec_tag}")];
    if let Some(Event::Start { name, .. }) = rec_events
        .iter()
        .skip(1)
        .find(|e| matches!(e, Event::Start { .. }))
    {
        queries.push(format!("//{name}"));
        queries.push(format!("/{root_name}/{rec_tag}/{name}"));
    }
    queries
}

fn assert_matches_oracle(
    db: &XmlDb<MemStorage>,
    expected_xml: &str,
    queries: &[String],
    ctx: &str,
) {
    let doc = Document::parse(expected_xml).expect("parse mirror");
    let oracle = NaiveEvaluator::new(&doc);
    for q in queries {
        let got: Vec<String> = db
            .query(q)
            .unwrap_or_else(|e| panic!("{ctx}: query {q}: {e}"))
            .iter()
            .map(|m| m.dewey.to_string())
            .collect();
        let want: Vec<String> = oracle
            .eval_str(q)
            .unwrap_or_else(|e| panic!("{ctx}: oracle {q}: {e}"))
            .iter()
            .map(|n| oracle.dewey(n).to_string())
            .collect();
        assert_eq!(got, want, "{ctx}: divergence on {q}");
    }
}

fn fuzz_one(kind: DatasetKind, page_size: usize, seed: u64) {
    let ds = generate(kind, 0.02);
    let split = split_dataset(&ds.xml, KEEP_RECORDS);
    let queries = derive_queries(&split);

    let mut mirror: Vec<String> = split.records[..BASE_RECORDS].to_vec();
    let pool: Vec<String> = split.records[BASE_RECORDS..].to_vec();
    let mut db =
        XmlDb::build_in_memory_with(&split.render(&mirror), BuildOptions::default(), page_size)
            .expect("build");

    let mut rng = XorShift::new(seed);
    for step in 0..STEPS {
        let ctx = format!("{} ps={page_size} step={step}", ds.kind.name());
        if mirror.is_empty() || rng.next() % 10 < 6 {
            let rec = &pool[rng.below(pool.len())];
            db.insert_last_child(&Dewey::root(), rec)
                .unwrap_or_else(|e| panic!("{ctx}: insert: {e}"));
            mirror.push(rec.clone());
        } else {
            let j = rng.below(mirror.len());
            db.delete_subtree(&Dewey::from_components(vec![
                0,
                split.root_attrs + j as u32,
            ]))
            .unwrap_or_else(|e| panic!("{ctx}: delete [0,{j}]: {e}"));
            mirror.remove(j);
        }

        let report = verify_db(&db, VerifyOptions::strict());
        assert!(
            report.is_clean(),
            "{ctx}: strict verify failed: {}",
            report.to_json()
        );
        assert_matches_oracle(&db, &split.render(&mirror), &queries, &ctx);
    }
}

#[test]
fn differential_update_fuzz_all_datasets() {
    for (di, kind) in DatasetKind::ALL.iter().enumerate() {
        for (pi, &ps) in PAGE_SIZES.iter().enumerate() {
            let seed = 0x9E37_79B9_7F4A_7C15u64 ^ ((di as u64) << 32) ^ (pi as u64);
            fuzz_one(*kind, ps, seed);
        }
    }
}
