//! Planner/executor differential battery: on every dataset, every
//! workload query (plus the `//` variants), and both structure backends,
//! the path-aware cost-ordered plan, the tag-only plan, the legacy
//! fixed-order plan, and a forced full-scan plan must all return exactly
//! the result set of the naive oracle — the planner may change evaluation
//! *order* and *seeding* (including proving queries empty from the
//! synopsis path summary), never *answers*. A final snapshot test pins the
//! explain output's operator sequence on a deep/wide synthetic document.

use nok_core::naive::NaiveEvaluator;
use nok_core::{
    BackendKind, BuildOptions, PlanConfig, QueryOptions, QueryScratch, StartStrategy, StrategyUsed,
    XmlDb,
};
use nok_datagen::{generate, workload, DatasetKind};
use nok_xml::Document;

fn execute(
    db: &XmlDb<nok_pager::MemStorage>,
    path: &str,
    opts: QueryOptions,
    cfg: PlanConfig,
    scratch: &mut QueryScratch,
) -> Vec<String> {
    let planned = db.plan_query_with(path, opts, cfg).expect("plan");
    let mut out = Vec::new();
    db.execute_plan(&planned, scratch, &mut out)
        .expect("execute");
    out.iter().map(|m| m.dewey.to_string()).collect()
}

fn check_dataset(kind: DatasetKind, backend: BackendKind) {
    let ds = generate(kind, 0.01); // floor: 800 records
    let db = XmlDb::build_in_memory_with(
        &ds.xml,
        BuildOptions::with_backend(backend),
        nok_pager::DEFAULT_PAGE_SIZE,
    )
    .expect("build");
    let doc = Document::parse(&ds.xml).expect("parse");
    let oracle = NaiveEvaluator::new(&doc);
    // One scratch across every query: pooled buffers must never leak state
    // between plans of different shapes.
    let mut scratch = QueryScratch::new();
    for (i, spec) in workload(kind) {
        let Some(spec) = spec else { continue };
        for path in [&spec.path, &spec.descendant_variant] {
            let expected: Vec<String> = oracle
                .eval_str(path)
                .expect("oracle eval")
                .iter()
                .map(|n| oracle.dewey(n).to_string())
                .collect();
            let arms: [(&str, QueryOptions, PlanConfig); 4] = [
                (
                    "path-aware cost-ordered",
                    QueryOptions::default(),
                    PlanConfig::default(),
                ),
                (
                    "tag-only",
                    QueryOptions::default(),
                    PlanConfig {
                        path_aware: false,
                        ..PlanConfig::default()
                    },
                ),
                (
                    "fixed-order",
                    QueryOptions::default(),
                    PlanConfig {
                        cost_ordered: false,
                        ..PlanConfig::default()
                    },
                ),
                (
                    "forced-scan",
                    QueryOptions {
                        strategy: StartStrategy::Scan,
                    },
                    PlanConfig::default(),
                ),
            ];
            for (arm, opts, cfg) in arms {
                let got = execute(&db, path, opts, cfg, &mut scratch);
                assert_eq!(
                    got,
                    expected,
                    "{arm} plan disagrees with oracle on {} ({backend:?}) Q{i}: {path}",
                    kind.name()
                );
            }
        }
    }
}

fn check_both_backends(kind: DatasetKind) {
    check_dataset(kind, BackendKind::Classic);
    check_dataset(kind, BackendKind::Succinct);
}

#[test]
fn author_plans_match_oracle() {
    check_both_backends(DatasetKind::Author);
}

#[test]
fn address_plans_match_oracle() {
    check_both_backends(DatasetKind::Address);
}

#[test]
fn catalog_plans_match_oracle() {
    check_both_backends(DatasetKind::Catalog);
}

#[test]
fn treebank_plans_match_oracle() {
    check_both_backends(DatasetKind::Treebank);
}

#[test]
fn dblp_plans_match_oracle() {
    check_both_backends(DatasetKind::Dblp);
}

/// A deep/wide synthetic document (many sections, each a deep chain plus a
/// wide run of leaves) where the explain output is predictable enough to
/// snapshot: operator sequence, seed kinds, and the est/actual agreement
/// for exact-count seeds.
#[test]
fn deepwide_explain_snapshot() {
    let mut xml = String::from("<corpus>");
    for i in 0..30 {
        xml.push_str("<section>");
        xml.push_str("<head><title>deep</title></head>");
        for _ in 0..40 {
            xml.push_str("<leaf/>");
        }
        if i == 7 {
            xml.push_str("<rare>needle</rare>");
        }
        xml.push_str("</section>");
    }
    xml.push_str("</corpus>");
    let db = XmlDb::build_in_memory(&xml).expect("build");

    // Multi-fragment query with a value constraint: the planner must seed
    // the rare fragment from the value index and the explain rows must
    // walk eval* -> filter* -> collect.
    let (hits, explain) = db
        .explain(r#"//section[rare="needle"]//leaf"#, QueryOptions::default())
        .expect("explain");
    assert_eq!(hits.len(), 40, "only section 7's leaves survive");

    let ops: Vec<&str> = explain.rows.iter().map(|r| r.op.as_str()).collect();
    let evals = ops.iter().filter(|o| **o == "eval").count();
    let filters = ops.iter().filter(|o| **o == "filter").count();
    assert!(evals >= 2, "multi-fragment query: {explain}");
    assert!(filters >= 1, "cut edge implies a semijoin row: {explain}");
    assert_eq!(*ops.last().unwrap(), "collect", "{explain}");
    // Operator order: all evals strictly before all filters, collect last.
    let last_eval = ops.iter().rposition(|o| *o == "eval").unwrap();
    let first_filter = ops.iter().position(|o| *o == "filter").unwrap();
    assert!(last_eval < first_filter, "{explain}");

    // The value-seeded fragment estimates exactly the one needle posting,
    // and the executor confirms it.
    let value_row = explain
        .rows
        .iter()
        .find(|r| r.detail.contains("value-index"))
        .unwrap_or_else(|| panic!("value constraint must seed from the value index: {explain}"));
    assert_eq!(value_row.est, Some(1), "{explain}");
    assert_eq!(value_row.actual, Some(1), "{explain}");
    // Path-aware planning annotates seeds with their true root-chain
    // support from the synopsis path summary.
    assert!(
        explain.rows.iter().any(|r| r.detail.contains("path-est=")),
        "{explain}"
    );
    let collect = explain.rows.last().unwrap();
    assert_eq!(collect.actual, Some(40), "{explain}");

    // An impossible sibling constraint early-exits: some fragment reports
    // the skipped strategy and the rendered table still ends in collect.
    let (hits, explain) = db
        .explain("//section[.//nosuch]//leaf", QueryOptions::default())
        .expect("explain");
    assert!(hits.is_empty());
    assert!(
        explain
            .rows
            .iter()
            .any(|r| r.detail.contains("strategy=skipped")),
        "{explain}"
    );
    let rendered = explain.to_string();
    assert!(rendered.contains("collect"), "{rendered}");

    // Strategy bookkeeping for the skipped path is typed, not stringly.
    let (_, stats) = db
        .query_with("//section[.//nosuch]//leaf", QueryOptions::default())
        .expect("query");
    assert!(stats.strategies.contains(&StrategyUsed::Skipped));
}
