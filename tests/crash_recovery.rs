//! Fault-injection harness for crash-safe updates.
//!
//! The pager's [`FailPlan`] counts every mutating I/O (page writes, file
//! syncs, truncations, WAL appends, data-file appends) a scripted update
//! workload performs, then the sweep re-runs the workload once per k with
//! the plan set to trip at the k-th operation. A tripped plan fails that
//! operation *and every mutating operation after it* — the process is
//! effectively dead from that instant. The harness then reopens the
//! directory (which runs crash recovery) and demands two things:
//!
//! 1. `verify_db(strict)` reports zero violations (including the
//!    `synopsis-path-count-mismatch` recount of the path summary),
//! 2. the query results equal the Naive oracle evaluated on the last
//!    committed document state, and
//! 3. the synopsis path counts match that state exactly — the planner
//!    never sees a stale summary after recovery.
//!
//! The only ambiguity is a crash *after* a transaction's commit record is
//! fsynced but before its pages are applied: the transaction is durable,
//! so recovery replays it. The harness therefore accepts either the state
//! before or after the in-flight operation — but whichever it is, every
//! query must agree on it.
//!
//! By default the sweep probes up to [`DEFAULT_SWEEP`] evenly spaced k
//! values (always including the first and last); set `NOK_FAILPOINT_FULL=1`
//! to sweep every k.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use nok_core::naive::NaiveEvaluator;
use nok_core::{Dewey, XmlDb};
use nok_pager::{FailPlan, FailpointStorage, FileStorage};
use nok_verify::{verify_db, VerifyOptions};
use nok_xml::Document;

/// Sweep size when `NOK_FAILPOINT_FULL` is unset.
const DEFAULT_SWEEP: u64 = 60;

/// Queries the recovered database must answer identically to the oracle.
const QUERIES: &[&str] = &["/list/item", "//name", "//val", "/list/item[name]/val"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nok-crash-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Copy a flat database directory (fresh destination every time).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).expect("create work dir");
    for entry in std::fs::read_dir(src).expect("read src dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

// ---------------------------------------------------------------------
// The scripted workload and its string mirror
// ---------------------------------------------------------------------

type Mirror = Vec<(String, String)>;

fn initial_items() -> Mirror {
    (0..10)
        .map(|i| (format!("n{i}"), format!("v{i}")))
        .collect()
}

fn render(items: &Mirror) -> String {
    let mut s = String::from("<list>");
    for (n, v) in items {
        s.push_str(&format!("<item><name>{n}</name><val>{v}</val></item>"));
    }
    s.push_str("</list>");
    s
}

const OPS: usize = 12;

/// Apply op `i` to the mirror.
fn mirror_op(items: &mut Mirror, i: usize) {
    if i % 3 == 2 && !items.is_empty() {
        items.remove(0);
    } else {
        items.push((format!("n{}", 100 + i), format!("v{}", 100 + i)));
    }
}

/// Apply op `i` to the database. Must mutate exactly like [`mirror_op`].
fn db_op<S: nok_pager::Storage>(
    db: &mut XmlDb<S>,
    i: usize,
    len: usize,
) -> nok_core::CoreResult<()> {
    if i % 3 == 2 && len > 0 {
        db.delete_subtree(&Dewey::from_components(vec![0, 0]))?;
    } else {
        let (n, v) = (format!("n{}", 100 + i), format!("v{}", 100 + i));
        db.insert_last_child(
            &Dewey::root(),
            &format!("<item><name>{n}</name><val>{v}</val></item>"),
        )?;
    }
    Ok(())
}

/// Dewey strings per query from the database under test.
fn db_answers<S: nok_pager::Storage>(db: &XmlDb<S>) -> Vec<Vec<String>> {
    QUERIES
        .iter()
        .map(|q| {
            db.query(q)
                .expect("query on recovered db")
                .iter()
                .map(|m| m.dewey.to_string())
                .collect()
        })
        .collect()
}

/// Dewey strings per query from the Naive oracle on a mirror document.
fn oracle_answers(items: &Mirror) -> Vec<Vec<String>> {
    let xml = render(items);
    let doc = Document::parse(&xml).expect("parse mirror");
    let oracle = NaiveEvaluator::new(&doc);
    QUERIES
        .iter()
        .map(|q| {
            oracle
                .eval_str(q)
                .expect("oracle eval")
                .iter()
                .map(|n| oracle.dewey(n).to_string())
                .collect()
        })
        .collect()
}

fn open_with_failpoint(dir: &Path, plan: &Arc<FailPlan>) -> XmlDb<FailpointStorage<FileStorage>> {
    let p = Arc::clone(plan);
    let mut db = XmlDb::<FailpointStorage<FileStorage>>::open_dir_with(dir, 256, move |s| {
        FailpointStorage::new(s, Arc::clone(&p))
    })
    .expect("open with failpoint");
    db.set_failpoint(Arc::clone(plan));
    db
}

/// Create the pristine database every sweep iteration copies from.
fn make_pristine(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let db = XmlDb::create_on_disk(&dir, &render(&initial_items())).expect("create pristine");
    drop(db);
    dir
}

// ---------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------

#[test]
fn every_injected_crash_recovers_clean_and_consistent() {
    let pristine = make_pristine("pristine");

    // Counting pass: how many mutating I/Os does the full workload issue?
    let work = temp_dir("count");
    copy_dir(&pristine, &work);
    let plan = FailPlan::counting();
    {
        let mut db = open_with_failpoint(&work, &plan);
        let mut items = initial_items();
        for i in 0..OPS {
            db_op(&mut db, i, items.len()).expect("workload op without failpoint");
            mirror_op(&mut items, i);
        }
    }
    let total = plan.count();
    assert!(total > 0, "workload must issue mutating I/O");

    // Pick the ks to probe.
    let full = std::env::var("NOK_FAILPOINT_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let ks: Vec<u64> = if full || total <= DEFAULT_SWEEP {
        (1..=total).collect()
    } else {
        // Evenly spaced, always including 1 and `total`.
        (0..DEFAULT_SWEEP)
            .map(|i| 1 + i * (total - 1) / (DEFAULT_SWEEP - 1))
            .collect()
    };

    let work = temp_dir("sweep");
    for &k in &ks {
        copy_dir(&pristine, &work);
        let plan = FailPlan::at(k);

        // Run the workload until the injected crash kills it.
        let mut committed = initial_items();
        let mut in_flight: Option<Mirror> = None;
        {
            let mut db = open_with_failpoint(&work, &plan);
            for i in 0..OPS {
                let mut next = committed.clone();
                mirror_op(&mut next, i);
                match db_op(&mut db, i, committed.len()) {
                    Ok(()) => committed = next,
                    Err(_) => {
                        // Crashed mid-operation. If the commit record made
                        // it to the log, recovery will replay this op.
                        in_flight = Some(next);
                        break;
                    }
                }
            }
        }
        assert!(
            plan.is_tripped() || in_flight.is_none(),
            "k={k}: workload failed without the failpoint tripping"
        );

        // Simulated restart: recovery runs inside open_dir.
        let db = XmlDb::open_dir(&work)
            .unwrap_or_else(|e| panic!("k={k}: reopen after crash failed: {e}"));
        assert!(
            db.recovery_report().is_some(),
            "k={k}: reopen skipped recovery"
        );
        let report = verify_db(&db, VerifyOptions::strict());
        assert!(
            report.is_clean(),
            "k={k}: recovered db fails strict verify: {}",
            report.to_json()
        );

        let got = db_answers(&db);
        let want_pre = oracle_answers(&committed);
        let matched: &Mirror = if got == want_pre {
            &committed
        } else if let Some(post) = &in_flight {
            let want_post = oracle_answers(post);
            assert_eq!(
                got, want_post,
                "k={k}: recovered answers match neither the last committed \
                 state nor the in-flight transaction's state"
            );
            post
        } else {
            panic!("k={k}: answers diverge from the committed state with no op in flight");
        };

        // The text values must agree with the matched state too, not just
        // the structure.
        let hits = db.query("/list/item/name").expect("name query");
        let got_names: Vec<String> = hits
            .iter()
            .map(|m| db.value_of(m).expect("value_of").unwrap_or_default())
            .collect();
        let want_names: Vec<String> = matched.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(
            got_names, want_names,
            "k={k}: values drifted after recovery"
        );

        // The synopsis path summary must never be stale after recovery.
        // Strict verify above already recounted the full path multiset
        // (`synopsis-path-count-mismatch`); this pins the contract
        // explicitly against the matched state: the recovered planner
        // sees the true per-path element counts, whichever side of the
        // in-flight transaction recovery landed on.
        let code = |t: &str| {
            db.dict()
                .lookup(t)
                .unwrap_or_else(|| panic!("k={k}: tag `{t}` missing from the dictionary"))
        };
        let (list, item) = (code("list"), code("item"));
        let n = matched.len() as u64;
        assert_eq!(
            db.synopsis().paths().exact_count(&[list]),
            1,
            "k={k}: /list"
        );
        for (tail, want) in [
            (vec![list, item], n),
            (vec![list, item, code("name")], n),
            (vec![list, item, code("val")], n),
        ] {
            assert_eq!(
                db.synopsis().paths().exact_count(&tail),
                want,
                "k={k}: synopsis stale after recovery on path {tail:?}"
            );
        }
    }

    std::fs::remove_dir_all(&pristine).ok();
    std::fs::remove_dir_all(&work).ok();
    std::fs::remove_dir_all(temp_dir("count")).ok();
}

// ---------------------------------------------------------------------
// Torn and corrupted log tails
// ---------------------------------------------------------------------

#[test]
fn torn_or_garbage_wal_tails_recover_to_committed_state() {
    // Run the whole workload cleanly: every transaction committed and
    // checkpointed, so the component files alone carry the final state.
    let base = temp_dir("torn-base");
    {
        let mut db = XmlDb::create_on_disk(&base, &render(&initial_items())).expect("create");
        let mut items = initial_items();
        for i in 0..OPS {
            db_op(&mut db, i, items.len()).expect("op");
            mirror_op(&mut items, i);
        }
    }
    let mut final_items = initial_items();
    for i in 0..OPS {
        mirror_op(&mut final_items, i);
    }
    let want = oracle_answers(&final_items);

    let wal_path = base.join("wal.log");
    let wal_len = std::fs::metadata(&wal_path).expect("wal metadata").len();
    assert!(
        wal_len > 8,
        "wal must hold at least its header and baseline"
    );

    let work = temp_dir("torn-work");
    // Truncate the log to every stride-spaced prefix, including cutting
    // into the magic header (a crash during log creation).
    let stride = (wal_len / 24).max(1);
    let mut cuts: Vec<u64> = (0..wal_len).step_by(stride as usize).collect();
    cuts.push(wal_len);
    for cut in cuts {
        copy_dir(&base, &work);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(work.join("wal.log"))
            .expect("open wal");
        f.set_len(cut).expect("truncate wal");
        drop(f);

        let db = XmlDb::open_dir(&work).unwrap_or_else(|e| panic!("cut={cut}: reopen failed: {e}"));
        let report = verify_db(&db, VerifyOptions::strict());
        assert!(
            report.is_clean(),
            "cut={cut}: strict verify after torn tail: {}",
            report.to_json()
        );
        assert_eq!(db_answers(&db), want, "cut={cut}: answers drifted");
    }

    // A garbage tail (valid-looking length prefix, bogus checksum) must be
    // ignored as an uncommitted torn write.
    copy_dir(&base, &work);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(work.join("wal.log"))
            .expect("open wal");
        f.write_all(&16u32.to_le_bytes()).expect("len prefix");
        f.write_all(&[0xABu8; 20]).expect("garbage");
    }
    let db = XmlDb::open_dir(&work).expect("reopen with garbage tail");
    let report = verify_db(&db, VerifyOptions::strict());
    assert!(
        report.is_clean(),
        "garbage tail: strict verify: {}",
        report.to_json()
    );
    assert_eq!(db_answers(&db), want, "garbage tail: answers drifted");

    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&work).ok();
}
