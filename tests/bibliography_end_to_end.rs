//! End-to-end test on the paper's running example (Figure 1): build the
//! full storage from the bibliography document and evaluate the paper's
//! query with every strategy, plus a battery of related queries.

use nok_core::{Dewey, QueryOptions, StartStrategy, XmlDb};

const BIB: &str = r#"<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix Environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor>
      <last>Gerbarg</last><first>Darcy</first>
      <affiliation>CITI</affiliation>
    </editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>"#;

#[test]
fn the_papers_example_query() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    // "find all books written by Stevens whose price is less than 100"
    let hits = db
        .query(r#"//book[author/last="Stevens"][price<100]"#)
        .unwrap();
    assert_eq!(hits.len(), 2);
    // Both are books; their Dewey ids are the first two children of bib.
    let deweys: Vec<String> = hits.iter().map(|m| m.dewey.to_string()).collect();
    assert_eq!(deweys, vec!["0.0", "0.1"]);
    for m in &hits {
        assert_eq!(db.tag_name_of(m).unwrap(), "book");
    }
}

#[test]
fn all_strategies_agree_on_many_queries() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let queries = [
        r#"//book[author/last="Stevens"][price<100]"#,
        "/bib/book/title",
        "//last",
        "//book[editor]/price",
        "/bib/book[@year>1993]",
        r#"//book[publisher="Addison-Wesley"]"#,
        "//author/first",
        "/bib//affiliation",
    ];
    for q in queries {
        let mut answers: Vec<Vec<String>> = Vec::new();
        for strategy in [
            StartStrategy::Auto,
            StartStrategy::Scan,
            StartStrategy::TagIndex,
            StartStrategy::ValueIndex,
        ] {
            let (hits, _) = db.query_with(q, QueryOptions { strategy }).unwrap();
            answers.push(hits.iter().map(|m| m.dewey.to_string()).collect());
        }
        for a in &answers[1..] {
            assert_eq!(*a, answers[0], "strategies disagree on {q}");
        }
    }
}

#[test]
fn values_round_trip_through_the_data_file() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let prices = db.query("//price").unwrap();
    let vals: Vec<String> = prices
        .iter()
        .map(|m| db.value_of(m).unwrap().unwrap())
        .collect();
    assert_eq!(vals, vec!["65.95", "65.95", "39.95", "129.95"]);
    // Shared values point at one record (dedup), still both readable.
    assert_eq!(vals[0], vals[1]);
}

#[test]
fn statistics_of_the_example() {
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let st = db.stats(BIB.len() as u64).unwrap();
    // 4 books with attrs: bib(1) + 4*(book + @year) + title×4 + author×5 +
    // last/first pairs ×5 + editor(1) + affiliation(1) + publisher×4 + price×4
    assert_eq!(st.nodes, db.node_count());
    assert_eq!(st.max_depth, 4); // bib/book/author/last
    assert!(st.tags >= 10);
    assert_eq!(st.tree_bytes, st.nodes * 3);
}

#[test]
fn example2_walkthrough_from_the_paper() {
    // Example 2 matches b[c/g="Stevens"][j<100] starting at the first b.
    // With real tag names that is the example query restricted to one book.
    let db = XmlDb::build_in_memory(BIB).unwrap();
    let first_book = db
        .query(r#"/bib/book[author/last="Stevens"][price<100]"#)
        .unwrap();
    assert_eq!(first_book[0].dewey, Dewey::from_components(vec![0, 0]));
}
