//! The paper's running example (Figure 1): the bibliography document and
//! the query `//book[author/last="Stevens"][price<100]`, evaluated with
//! every strategy and every engine in the workspace.
//!
//! ```text
//! cargo run -p nok-bench --example bibliography
//! ```

use nok_baselines::di::DiEngine;
use nok_baselines::navdom::NavDomEngine;
use nok_baselines::twigstack::TwigStackEngine;
use nok_baselines::Engine;
use nok_core::{QueryOptions, StartStrategy, XmlDb};

/// Figure 1(a) of the paper, verbatim (with its typos fixed).
const BIB: &str = r#"<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix Environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor>
      <last>Gerbarg</last><first>Darcy</first>
      <affiliation>CITI</affiliation>
    </editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>"#;

/// The paper's Example 1 query.
const QUERY: &str = r#"//book[author/last="Stevens"][price<100]"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("query: {QUERY}\n");

    // --- The NoK system, with each starting-point strategy of §3.
    let db = XmlDb::build_in_memory(BIB)?;
    for strategy in [
        StartStrategy::Auto,
        StartStrategy::Scan,
        StartStrategy::TagIndex,
        StartStrategy::ValueIndex,
    ] {
        let (hits, stats) = db.query_with(QUERY, QueryOptions { strategy })?;
        println!(
            "NoK [{strategy:?}]: {} matches, strategies used per fragment: {:?}",
            hits.len(),
            stats.strategies
        );
        for m in &hits {
            println!(
                "   book at dewey {}, year = {:?}",
                m.dewey,
                // @year is child 0 of each book.
                db.value_of(&nok_core::QueryMatch {
                    addr: m.addr,
                    dewey: m.dewey.child(0),
                })?
            );
        }
    }

    // --- Every engine must agree (the cross-engine invariant the test
    // suite enforces on all datasets).
    println!("\nall engines:");
    let di = DiEngine::new(BIB)?;
    let nav = NavDomEngine::new(BIB)?;
    let twig = TwigStackEngine::new(BIB)?;
    for engine in [&di as &dyn Engine, &nav, &twig] {
        let hits = engine.eval(QUERY)?;
        println!(
            "  {:<10} -> {:?}",
            engine.name(),
            hits.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }
    Ok(())
}
