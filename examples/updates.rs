//! Updates against the paged string representation (§4.2): append a
//! subtree as a last child (page-local) and delete a subtree (following
//! siblings' Dewey ids are re-labeled incrementally — the cost the paper
//! acknowledges for its Dewey-keyed indexes).
//!
//! ```text
//! cargo run -p nok-bench --example updates
//! ```

use nok_core::{Dewey, XmlDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = XmlDb::build_in_memory(
        r#"<bib>
            <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
            <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
        </bib>"#,
    )?;
    let show = |db: &XmlDb<nok_pager::MemStorage>, label: &str| {
        let hits = db.query("/bib/book/title").expect("query");
        println!("{label}:");
        for m in &hits {
            println!(
                "  [{}] {}",
                m.dewey,
                db.value_of(m).expect("value").unwrap_or_default()
            );
        }
        println!(
            "  ({} nodes, {} structural pages)\n",
            db.node_count(),
            db.store().page_count()
        );
    };
    show(&db, "initial");

    // Insert a new book as the last child of <bib> (dewey 0).
    let new_book = db.insert_last_child(
        &Dewey::root(),
        r#"<book year="2004"><title>A Succinct Physical Storage Scheme</title><price>0.00</price></book>"#,
    )?;
    println!("inserted subtree rooted at dewey {new_book}");
    show(&db, "after insert");

    // Delete the first book; following siblings shift down (0.1 -> 0.0 ...).
    let removed = db.delete_subtree(&Dewey::from_components(vec![0, 0]))?;
    println!("deleted first book ({removed} nodes removed)");
    show(&db, "after delete");

    // All indexes remain consistent: value queries still work.
    let cheap = db.query("//book[price<10]/title")?;
    println!("books under $10: {}", cheap.len());
    for m in &cheap {
        println!("  {}", db.value_of(m)?.unwrap_or_default());
    }
    Ok(())
}
