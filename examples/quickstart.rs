//! Quickstart: build an in-memory NoK store from an XML string and run
//! path queries against it.
//!
//! ```text
//! cargo run -p nok-bench --example quickstart
//! ```

use nok_core::XmlDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = r#"
    <library>
      <shelf floor="1">
        <book><title>A Relational Model of Data</title><year>1970</year></book>
        <book><title>The Art of Computer Programming</title><year>1968</year></book>
      </shelf>
      <shelf floor="2">
        <book><title>Transaction Processing</title><year>1992</year></book>
      </shelf>
    </library>"#;

    // Build the complete storage: the succinct structural string, the
    // detached value file, and the three B+ tree indexes.
    let db = XmlDb::build_in_memory(xml)?;
    println!("loaded {} nodes", db.node_count());

    // A simple path.
    let hits = db.query("/library/shelf/book/title")?;
    println!("\nall titles:");
    for m in &hits {
        println!("  [{}] {}", m.dewey, db.value_of(m)?.unwrap_or_default());
    }

    // Predicates: structural + value constraints (the paper's NoK pattern).
    let hits = db.query("//book[year<1990]/title")?;
    println!("\npre-1990 titles:");
    for m in &hits {
        println!("  [{}] {}", m.dewey, db.value_of(m)?.unwrap_or_default());
    }

    // Attributes become child nodes tagged `@name`.
    let hits = db.query(r#"/library/shelf[@floor="2"]/book/title"#)?;
    println!("\nfloor-2 titles:");
    for m in &hits {
        println!("  [{}] {}", m.dewey, db.value_of(m)?.unwrap_or_default());
    }

    Ok(())
}
