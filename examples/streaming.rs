//! Streaming NoK matching (§4.2/§5 of the paper): the physical string
//! representation *is* the SAX stream, so the same matcher processes
//! streaming XML with memory bounded by the candidate subtree — not the
//! document.
//!
//! ```text
//! cargo run -p nok-bench --example streaming
//! ```

use nok_core::StreamMatcher;
use nok_xml::Reader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend this arrives as an unbounded feed of events.
    let feed = r#"<feed>
      <entry lang="en"><title>storage engines</title><score>9</score></entry>
      <entry lang="de"><title>b-trees</title><score>3</score></entry>
      <entry lang="en"><title>twig joins</title><score>7</score></entry>
      <entry lang="en"><title>dewey ids</title><score>2</score></entry>
    </feed>"#;

    let query = r#"//entry[@lang="en"][score>5]/title"#;
    println!("streaming query: {query}\n");

    let mut matcher = StreamMatcher::new(query)?;
    let mut event_no = 0u32;
    for ev in Reader::content_only(feed) {
        let ev = ev?;
        event_no += 1;
        // Hits are emitted the moment a candidate subtree closes — no
        // buffering of the whole document.
        for hit in matcher.on_event(&ev)? {
            println!(
                "event #{event_no}: matched <{}> at dewey {}",
                hit.tag, hit.dewey
            );
        }
    }

    // Patterns that need structural joins between separate subtrees cannot
    // run in one streaming pass; the API says so explicitly.
    match StreamMatcher::new("//a//b") {
        Err(e) => println!("\n//a//b rejected as expected: {e}"),
        Ok(_) => unreachable!("joins are not streamable"),
    }
    Ok(())
}
